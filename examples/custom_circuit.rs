//! Bring your own circuit: write MiniHDL, synthesize it, verify the
//! gate level against the behavioral model, and run the paper's
//! validation-reuse flow on it.
//!
//! ```text
//! cargo run --release --example custom_circuit
//! ```

use musa::circuits::Circuit;
use musa::core::{run_sampling_experiment, ExperimentConfig};
use musa::hdl::{Bits, Simulator};
use musa::netlist::good_outputs;
use musa::prng::{Prng, SplitMix64};
use musa::synth::{flatten_sequence, unflatten_outputs};
use musa::testgen::SamplingStrategy;

/// A 4-bit Gray-code counter with parity output.
const GRAY: &str = "
entity gray is
  port(clk : in bit; rst : in bit; en : in bit;
       code : out bits(4); parity : out bit);

  signal count : bits(4);

  seq(clk) begin
    if rst = 1 then
      count <= 0;
    elsif en = 1 then
      count <= count + 1;
    end if;
  end;

  comb begin
    code <= count xor (count srl 1);
    parity <= xorr(count xor (count srl 1));
  end;
end gray;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build: parse + check + synthesize in one step.
    let circuit = Circuit::from_source(GRAY, "gray")?;
    println!(
        "gray: {} gates, {} flops, depth {}",
        circuit.netlist.gate_count(),
        circuit.netlist.dff_count(),
        circuit.netlist.depth()
    );

    // 2. Verify: behavioral and gate-level simulations must agree.
    let info = circuit.info();
    let mut rng = SplitMix64::new(7);
    let sequence: Vec<Vec<Bits>> = (0..100)
        .map(|_| {
            info.data_inputs
                .iter()
                .map(|&p| {
                    let w = info.symbol(p).width;
                    Bits::new(w, rng.bits(w))
                })
                .collect()
        })
        .collect();
    let mut behav = Simulator::new(&circuit.checked, "gray")?;
    let expected = behav.run(&sequence);
    let patterns = flatten_sequence(info, &sequence);
    let gate_outs = good_outputs(&circuit.netlist, &patterns);
    for (t, bits) in gate_outs.iter().enumerate() {
        assert_eq!(
            unflatten_outputs(info, bits),
            expected[t],
            "gate level diverges at cycle {t}"
        );
    }
    println!("cross-simulation: 100 cycles, behavioral == gates");

    // 3. Reuse: the paper's sampling experiment on the custom circuit.
    let config = ExperimentConfig::fast(0x06A1);
    let outcome = run_sampling_experiment(&circuit, SamplingStrategy::random(0.25), &config)?;
    println!(
        "validation reuse: {} of {} mutants sampled -> {} vectors, MS = {:.2}%, NLFCE = {:+.0}",
        outcome.sampled,
        outcome.population,
        outcome.data_len,
        outcome.mutation_score_pct,
        outcome.nlfce
    );
    Ok(())
}
