//! Mutation analysis of a hand-written design against a hand-written
//! test suite — the *validation* half of the paper's flow.
//!
//! ```text
//! cargo run --release --example mutation_analysis
//! ```
//!
//! Writes a small MiniHDL traffic-light controller, generates all ten
//! operators' mutants, runs a directed test suite, and reports the
//! mutation score with the list of surviving mutants (the holes in the
//! suite).

use musa::hdl::{parse, Bits, CheckedDesign};
use musa::mutation::{
    classify_mutants, count_by_operator, execute_mutants, generate_mutants, EquivalencePolicy,
    GenerateOptions, MutationScore,
};

const TRAFFIC: &str = "
entity traffic is
  port(clk : in bit; rst : in bit; car : in bit;
       green : out bit; yellow : out bit; red : out bit);

  constant GREEN_TIME : bits(3) := 5;

  signal state : bits(2);
  signal timer : bits(3);

  seq(clk) begin
    if rst = 1 then
      state <= 0;
      timer <= 0;
    else
      case state is
        when 0 =>                -- red: wait for a car
          if car = 1 then
            state <= 1;
          end if;
        when 1 =>                -- green: run the timer
          if timer = GREEN_TIME then
            state <= 2;
            timer <= 0;
          else
            timer <= timer + 1;
          end if;
        when 2 =>                -- yellow: one cycle
          state <= 0;
        when others =>
          state <= 0;
      end case;
    end if;
  end;

  comb begin
    green <= state = 1;
    yellow <= state = 2;
    red <= state = 0;
  end;
end traffic;
";

fn bit(v: u64) -> Bits {
    Bits::new(1, v)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = CheckedDesign::new(parse(TRAFFIC)?)?;
    let mutants = generate_mutants(&checked, "traffic", &GenerateOptions::default());
    println!("Generated {} mutants:", mutants.len());
    for (op, count) in count_by_operator(&mutants) {
        println!("  {:<4} {count}", op.acronym());
    }

    // A directed test: reset, let a car through a full green-yellow-red
    // cycle, then idle.
    let mut suite = vec![vec![bit(1), bit(0)]]; // reset pulse
    suite.push(vec![bit(0), bit(1)]); // car arrives
    for _ in 0..8 {
        suite.push(vec![bit(0), bit(0)]); // cycle through green/yellow
    }
    suite.push(vec![bit(0), bit(1)]); // second car
    for _ in 0..3 {
        suite.push(vec![bit(0), bit(0)]);
    }

    let kills = execute_mutants(&checked, "traffic", &mutants, &suite)?;
    let classes = classify_mutants(
        &checked,
        "traffic",
        &mutants,
        &EquivalencePolicy::default(),
    )?;
    let score = MutationScore::from_results(&kills, &classes);
    println!("\nDirected suite of {} vectors: {score}", suite.len());

    println!("\nSurviving non-equivalent mutants (validation holes):");
    let mut shown = 0;
    for (i, mutant) in mutants.iter().enumerate() {
        if kills.first_kill[i].is_none() && !classes[i].is_equivalent() {
            println!("  {}", mutant.description);
            shown += 1;
            if shown == 10 {
                println!("  ... (more omitted)");
                break;
            }
        }
    }
    if shown == 0 {
        println!("  none — the suite is mutation-adequate");
    }
    Ok(())
}
