//! Gate-level fault grading and deterministic top-up — the *test* half
//! of the paper's flow.
//!
//! ```text
//! cargo run --release --example fault_grading
//! ```
//!
//! Parses the classic c17 `.bench` netlist, grades an LFSR test set
//! against the collapsed stuck-at fault list, prints the coverage curve,
//! and finishes the stragglers with PODEM.

use musa::metrics::CoverageCurve;
use musa::netlist::{collapsed_faults, fault_simulate, parse_bench, C17};
use musa::testgen::{atpg_all, lfsr_patterns, PodemResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nl = parse_bench(C17, "c17")?;
    println!(
        "c17: {} gates, depth {}, {} inputs",
        nl.gate_count(),
        nl.depth(),
        nl.inputs().len()
    );

    let faults = collapsed_faults(&nl);
    println!("Collapsed stuck-at faults: {}", faults.len());

    // Grade 8 LFSR patterns.
    let patterns = lfsr_patterns(nl.inputs().len(), 8, 0xBEEF);
    let graded = fault_simulate(&nl, &faults, &patterns);
    let curve = CoverageCurve::new(graded.coverage_curve());
    println!("\nLFSR coverage curve:");
    for (len, cov) in curve.sample(8) {
        println!("  {:>2} vectors -> {:>5.1}%", len, 100.0 * cov);
    }

    // Deterministic top-up for whatever survived.
    let undetected = graded.undetected();
    println!("\nUndetected after LFSR: {}", undetected.len());
    let (results, stats) = atpg_all(&nl, &undetected, 10_000);
    for (fault, result) in undetected.iter().zip(&results) {
        match result {
            PodemResult::Test(pattern) => {
                let bits: String = pattern.iter().map(|&b| if b { '1' } else { '0' }).collect();
                println!("  {} <- pattern {}", fault.describe(&nl), bits);
            }
            PodemResult::Untestable => println!("  {} is redundant", fault.describe(&nl)),
            PodemResult::Aborted => println!("  {} aborted", fault.describe(&nl)),
        }
    }
    println!(
        "\nATPG effort: {} backtracks; {} tests, {} untestable, {} aborted",
        stats.backtracks, stats.tested, stats.untestable, stats.aborted
    );
    Ok(())
}
