//! Quickstart: the paper's pipeline on one benchmark, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads ITC'99 b01, profiles the four paper operators, derives
//! test-oriented sampling weights, and compares the two sampling
//! strategies at a 10 % mutant budget.

use musa::circuits::Benchmark;
use musa::core::{run_sampling_experiment_on, ExperimentConfig, OperatorProfile};
use musa::mutation::{generate_mutants, GenerateOptions, MutationOperator};
use musa::testgen::SamplingStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = Benchmark::B01.load()?;
    println!(
        "{}: {} gates, {} flip-flops after synthesis",
        circuit.name,
        circuit.netlist.gate_count(),
        circuit.netlist.dff_count()
    );

    let config = ExperimentConfig::fast(0x5EED);

    // 1. Operator-efficiency profile (paper Table 1, one circuit).
    let profile = OperatorProfile::measure(&circuit, &MutationOperator::paper_set(), &config)?;
    println!("\nOperator efficiency (ΔFC%, ΔL%, NLFCE):");
    for row in &profile.rows {
        println!(
            "  {:<4} mutants={:<4} len={:<5} {}",
            row.operator.acronym(),
            row.mutants,
            row.data_len,
            row.metrics
        );
    }

    // 2. Sampling-strategy face-off (paper Table 2, one circuit).
    let population = generate_mutants(&circuit.checked, &circuit.name, &GenerateOptions::default());
    println!("\nFull mutant population: {}", population.len());
    let weights = profile.weights();
    for strategy in [
        SamplingStrategy::test_oriented(0.10, weights),
        SamplingStrategy::random(0.10),
    ] {
        let outcome = run_sampling_experiment_on(&circuit, &population, strategy, &config)?;
        println!(
            "  {:<13}: {} mutants -> {} vectors, MS = {:.2}%, NLFCE = {:+.0}",
            outcome.strategy,
            outcome.sampled,
            outcome.data_len,
            outcome.mutation_score_pct,
            outcome.nlfce
        );
    }
    Ok(())
}
