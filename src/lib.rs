//! # musa — MUtation SAmpling for structural test data
//!
//! Facade crate re-exporting the whole `musa` workspace: a from-scratch
//! reproduction of *“Mutation Sampling Technique for the Generation of
//! Structural Test Data”* (Scholivé, Beroulle, Robach, Flottes, Rouzeyre —
//! DATE 2005).
//!
//! The workspace implements the full mini-EDA flow the paper depends on:
//!
//! * [`hdl`] — the *MiniHDL* behavioral language (AST, parser, checker,
//!   cycle simulator, pretty-printer);
//! * [`netlist`] — gate-level netlists, `.bench` I/O, bit-parallel logic
//!   simulation and stuck-at fault simulation;
//! * [`synth`] — RTL synthesis from MiniHDL to gates;
//! * [`mutation`] — the ten VHDL-style mutation operators, mutant
//!   generation/execution and mutation-score computation;
//! * [`analysis`] — dataflow analyses over the checked AST feeding the
//!   lint catalog (`musa lint`) and the static equivalent-mutant
//!   pre-screen (`--screen static`);
//! * [`testgen`] — pseudo-random and mutation-guided test generation,
//!   mutant sampling strategies, and a PODEM ATPG;
//! * [`circuits`] — behavioral re-implementations of the paper's benchmark
//!   circuits (ITC'99 b01/b03, ISCAS'85 c432/c499, and friends);
//! * [`metrics`] — MS, coverage curves, ΔFC%, ΔL% and NLFCE;
//! * [`core`] — the paper's pipeline: operator-efficiency profiling, the
//!   test-oriented sampling experiments (Tables 1 and 2) and the
//!   [`Campaign`](musa_core::Campaign) front door with typed,
//!   JSON-serializable reports;
//! * [`store`] — the content-addressed campaign result store, the
//!   multi-process sharding driver (`musa campaign --workers`) and the
//!   TCP campaign service (`musa serve` / `musa client`);
//! * [`bench`](mod@bench) — the experiment binaries plus the shared
//!   [`cli`](musa_bench::cli) argument layer they and `musa sample`
//!   parse through.
//!
//! ## Quickstart
//!
//! ```
//! use musa::circuits::Benchmark;
//! use musa::core::{ExperimentConfig, run_sampling_experiment};
//! use musa::testgen::SamplingStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = Benchmark::B01.load()?;
//! let config = ExperimentConfig::fast(0xC0FFEE);
//! let outcome = run_sampling_experiment(&circuit, SamplingStrategy::random(0.10), &config)?;
//! println!("MS = {:.2}%  NLFCE = {:+.0}", outcome.mutation_score_pct, outcome.nlfce);
//! # Ok(())
//! # }
//! ```

pub use musa_analysis as analysis;
pub use musa_bench as bench;
pub use musa_circuits as circuits;
pub use musa_core as core;
pub use musa_hdl as hdl;
pub use musa_metrics as metrics;
pub use musa_mutation as mutation;
pub use musa_netlist as netlist;
pub use musa_prng as prng;
pub use musa_store as store;
pub use musa_synth as synth;
pub use musa_testgen as testgen;
pub use musa_trace as trace;
