//! `musa` — command-line front door to the workspace.
//!
//! ```text
//! musa info   <file.mhdl> <entity>      parse/check/synthesize, print stats
//! musa synth  <file.mhdl> <entity>      emit the synthesized .bench netlist
//! musa mutants <file.mhdl> <entity>     enumerate the mutant population
//! musa faultsim <file.bench> [N] [SEED] grade N LFSR patterns (default 64)
//! musa scoap  <file.bench> [TOP]        SCOAP testability, hardest nets
//! musa atpg   <file.bench> [LIMIT]      PODEM over the collapsed faults
//! musa bench  <name>                    stats for a bundled benchmark
//! musa bench  [--quick] [--json]        benchmark trajectory: timed
//!             [--filter <bench>]        workload grid, musa.bench.v1
//!             [--baseline <file>]       report, regression gate against
//!             [--write] [--seed N]      a committed BENCH_<n>.json
//! musa sample <name> [FRACTION]         run a sampling experiment
//!             [--jobs N] [--seed N] [--paper] [--fast] [--json]
//!             [--engine scalar|lanes] [--store DIR]
//! musa campaign <request.json|->        run a musa.request.v1 campaign
//!             [--workers N] [--store DIR] [--json]
//! musa serve  --addr HOST:PORT          TCP campaign service over the
//!             [--store DIR] [--once]    result store
//! musa client --addr HOST:PORT          send one request to `musa serve`
//!             <request.json|->
//! musa lint   <name>|--all|<file.mhdl>  run the static lint catalog;
//!             [--json]                  exit 1 when findings exist
//! musa list                             list bundled benchmarks
//! musa help                             print the full usage text
//! ```
//!
//! `sample` parses through the shared `musa_bench::cli` layer and runs
//! a `musa_core::Campaign`: repetitions (and each repetition's mutant
//! executions) shard across `--jobs` worker threads; `--engine lanes`
//! packs up to 63 mutants plus the reference machine into each
//! behavioral simulation pass. The outcome is bit-identical for every
//! job count and both engines, so the two knobs compose freely.
//! `--json` emits the typed campaign report (`musa.campaign.v1`)
//! instead of text.
//!
//! `campaign`, `serve` and `client` sit on `musa_store`: campaigns are
//! content-addressed by their resolved plan, cached results replay
//! byte-identically, `--workers N` shards the sampling grid across
//! spawned worker processes (the hidden `__worker` subcommand), and the
//! serve/client pair speaks a length-prefixed `MUSA/1` TCP protocol.

use musa::bench::cli::{
    emit_observability, print_report, run_trajectory, BenchCommand, SampleArgs, BENCH_USAGE,
};
use musa::bench::service::{
    run_campaign, run_client, run_serve, run_worker, CampaignArgs, ClientArgs, ServeArgs,
    ServiceError, CAMPAIGN_USAGE, CLIENT_USAGE, SERVE_USAGE,
};
use musa::circuits::{Benchmark, Circuit};
use musa::core::{
    lint_report_json, lint_source, render_lint_text, total_findings, Campaign, ReportData, Task,
};
use musa::hdl::{parse, CheckedDesign};
use musa::metrics::CoverageCurve;
use musa::mutation::{count_by_operator, generate_mutants, GenerateOptions};
use musa::netlist::{
    collapsed_faults, fault_simulate, parse_bench, write_bench, Netlist, Testability,
};
use musa::synth::synthesize;
use musa::testgen::{atpg_all, lfsr_patterns};
use std::process::ExitCode;

const USAGE: &str = "\
usage: musa <command> ...

  info     <file.mhdl> <entity>      parse/check/synthesize, print stats
  synth    <file.mhdl> <entity>      emit the synthesized .bench netlist
  mutants  <file.mhdl> <entity>      enumerate the mutant population
  faultsim <file.bench> [N] [SEED]   grade N LFSR patterns (default 64)
  scoap    <file.bench> [TOP]        SCOAP testability, hardest nets
  atpg     <file.bench> [LIMIT]      PODEM over the collapsed faults
  bench    <name>                    stats for one bundled benchmark
  bench    [--quick] [--json] [--filter <bench>] [--baseline <file>]
           [--write] [--seed N]      benchmark trajectory: timed workload
                                     grid, musa.bench.v1 report, regression
                                     gate against a committed BENCH_<n>.json
  bench    --history [--json]        per-cell median wall-time trajectory
           [--filter <bench>]        over the committed BENCH_<n>.json files
  sample   <name> [FRACTION]         run a sampling experiment
           [--jobs N] [--seed N] [--paper] [--fast] [--json]
           [--engine scalar|lanes] [--fault-reduce on|off]
           [--screen static|off] [--opt full|off] [--store DIR]
           [--trace FILE] [--trace-format json|chrome] [--profile]
           [--progress]
  campaign <request.json|->          run a musa.request.v1 campaign
           [--workers N] [--store DIR] [--json]
                                     --store caches results in a
                                     content-addressed store (hits replay
                                     byte-identically); --workers N shards
                                     the sampling grid across N processes
  serve    --addr HOST:PORT          TCP campaign service over the result
           [--store DIR] [--once]    store (MUSA/1 framing; port 0 picks a
                                     free port and prints it; --once serves
                                     one connection, then exits)
  client   --addr HOST:PORT          send one request to a `musa serve`,
           <request.json|->          print the musa.campaign.v1 report
  lint     <name>|--all|<file.mhdl>  run the static lint catalog over a
           [--json]                  benchmark (or every bundled one, or
                                     an .mhdl file); compiler-style text
                                     or musa.lint.v1 JSON; exit 1 when
                                     findings exist
  list                               list bundled benchmarks
  help                               print this text

observability (any command): --profile prints a per-phase wall/count
breakdown after the run and --progress emits coarse stderr progress
lines; `sample` and `bench` additionally accept --trace FILE
[--trace-format json|chrome] to save the collected spans + counters
(musa.trace.v1, or Chrome trace_event for Perfetto)
";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `sample` and `bench` parse the observability flags themselves and
    // host the tracer inside their campaign (which owns the measured
    // wall clock). For every other subcommand, main hosts both: strip
    // `--profile`/`--progress` here, trace the dispatch, and render the
    // breakdown against the whole command's elapsed time.
    let campaign_owned = matches!(
        args.first().map(String::as_str),
        Some("sample") | Some("bench")
    );
    let mut profile = false;
    if !campaign_owned {
        args.retain(|arg| match arg.as_str() {
            "--profile" => {
                profile = true;
                false
            }
            "--progress" => {
                musa::trace::set_progress(true);
                false
            }
            _ => true,
        });
    }
    let tracer = if profile {
        musa::trace::Tracer::new()
    } else {
        musa::trace::Tracer::off()
    };
    let started = std::time::Instant::now();
    let code = {
        let _install = tracer.install();
        dispatch(&args)
    };
    if let Some(data) = tracer.finish() {
        print!("{}", musa::core::render_profile_data(&data, started.elapsed()));
    }
    code
}

fn dispatch(args: &[String]) -> ExitCode {
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("mutants") => cmd_mutants(&args[1..]),
        Some("faultsim") => cmd_faultsim(&args[1..]),
        Some("atpg") => cmd_atpg(&args[1..]),
        Some("scoap") => cmd_scoap(&args[1..]),
        Some("bench") => return cmd_bench(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("campaign") => {
            return cmd_service(&args[1..], CAMPAIGN_USAGE, |rest| {
                run_campaign(&CampaignArgs::parse(rest).map_err(ServiceError::Usage)?)
            })
        }
        Some("serve") => {
            return cmd_service(&args[1..], SERVE_USAGE, |rest| {
                run_serve(&ServeArgs::parse(rest).map_err(ServiceError::Usage)?)
            })
        }
        Some("client") => {
            return cmd_service(&args[1..], CLIENT_USAGE, |rest| {
                run_client(&ClientArgs::parse(rest).map_err(ServiceError::Usage)?)
            })
        }
        Some("__worker") => return cmd_service(&args[1..], "", run_worker),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!(
                "usage: musa <info|synth|mutants|faultsim|atpg|scoap|bench|sample|campaign|serve|client|lint|list|help> ..."
            );
            eprintln!("run `musa help` for per-command arguments");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load_design(args: &[String]) -> Result<(CheckedDesign, String), String> {
    let [path, entity] = args else {
        return Err("expected <file.mhdl> <entity>".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let design = parse(&source).map_err(|e| e.render(&source))?;
    let checked = CheckedDesign::new(design).map_err(|e| e.render(&source))?;
    Ok((checked, entity.clone()))
}

fn load_netlist(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_bench(&text, path).map_err(|e| e.to_string())
}

fn print_netlist_stats(nl: &Netlist) {
    println!(
        "  {} inputs, {} outputs, {} gates, {} flops, depth {}",
        nl.inputs().len(),
        nl.outputs().len(),
        nl.gate_count(),
        nl.dff_count(),
        nl.depth()
    );
    println!(
        "  collapsed stuck-at faults: {}",
        collapsed_faults(nl).len()
    );
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (checked, entity) = load_design(args)?;
    let info = checked
        .entity_info(&entity)
        .ok_or_else(|| format!("no entity `{entity}`"))?;
    println!("{entity}:");
    println!(
        "  {} data inputs ({} bits), {} outputs ({} bits), {}",
        info.data_inputs.len(),
        info.input_bits(),
        info.outputs.len(),
        info.output_bits(),
        if info.is_combinational() {
            "combinational"
        } else {
            "sequential"
        }
    );
    let nl = synthesize(&checked, &entity).map_err(|e| e.to_string())?;
    print_netlist_stats(&nl);
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let (checked, entity) = load_design(args)?;
    let nl = synthesize(&checked, &entity).map_err(|e| e.to_string())?;
    print!("{}", write_bench(&nl));
    Ok(())
}

fn cmd_mutants(args: &[String]) -> Result<(), String> {
    let (checked, entity) = load_design(args)?;
    let mutants = generate_mutants(&checked, &entity, &GenerateOptions::default());
    println!("{} valid mutants:", mutants.len());
    for (op, count) in count_by_operator(&mutants) {
        println!("  {:<4} {count:>5}   {}", op.acronym(), op.description());
    }
    Ok(())
}

fn cmd_faultsim(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("expected <file.bench> [vectors] [seed]".into());
    };
    let vectors: usize = args.get(1).map_or(Ok(64), |s| s.parse().map_err(|_| "bad vector count"))?;
    let seed: u64 = args.get(2).map_or(Ok(1), |s| s.parse().map_err(|_| "bad seed"))?;
    let nl = load_netlist(path)?;
    let faults = collapsed_faults(&nl);
    let patterns = lfsr_patterns(nl.inputs().len(), vectors, seed);
    let result = fault_simulate(&nl, &faults, &patterns);
    let curve = CoverageCurve::new(result.coverage_curve());
    println!(
        "{}: {} faults, {} vectors -> {:.2}% coverage",
        nl.name(),
        faults.len(),
        vectors,
        100.0 * curve.final_coverage()
    );
    for (len, cov) in curve.sample(10) {
        println!("  {len:>6} : {:>6.2}%", 100.0 * cov);
    }
    Ok(())
}

fn cmd_atpg(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("expected <file.bench> [backtrack-limit]".into());
    };
    let limit: u64 = args.get(1).map_or(Ok(10_000), |s| s.parse().map_err(|_| "bad limit"))?;
    let nl = load_netlist(path)?;
    if !nl.is_combinational() {
        return Err("PODEM targets combinational netlists".into());
    }
    let faults = collapsed_faults(&nl);
    let (_, stats) = atpg_all(&nl, &faults, limit);
    println!(
        "{}: {} faults -> {} tested, {} untestable, {} aborted ({} backtracks)",
        nl.name(),
        stats.targeted,
        stats.tested,
        stats.untestable,
        stats.aborted,
        stats.backtracks
    );
    Ok(())
}

fn cmd_scoap(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("expected <file.bench> [top]".into());
    };
    let top: usize = args.get(1).map_or(Ok(10), |s| s.parse().map_err(|_| "bad count"))?;
    let nl = load_netlist(path)?;
    let scoap = Testability::analyze(&nl);
    println!("{}: hardest nets (CC0/CC1/CO, combined effort):", nl.name());
    for (net, effort) in scoap.hardest_nets(&nl, top) {
        println!(
            "  {:<16} cc0={:<6} cc1={:<6} co={:<6} effort={}",
            nl.net_name(net),
            scoap.cc0(net),
            scoap.cc1(net),
            scoap.co(net),
            effort
        );
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> ExitCode {
    match BenchCommand::parse(args) {
        Ok(BenchCommand::Legacy(name)) => match bench_stats(&name) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Ok(BenchCommand::Trajectory(trajectory)) => {
            ExitCode::from(run_trajectory(&trajectory))
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{BENCH_USAGE}");
            ExitCode::from(2)
        }
    }
}

fn bench_stats(name: &str) -> Result<(), String> {
    let bench = Benchmark::from_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let circuit: Circuit = bench.load().map_err(|e| e.to_string())?;
    println!("{}:", circuit.name);
    print_netlist_stats(&circuit.netlist);
    let mutants = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    println!("  mutant population: {}", mutants.len());
    Ok(())
}

const LINT_USAGE: &str = "usage: musa lint <name>|--all|<file.mhdl> [--json]";

/// `musa lint`: exit 0 when every target is clean, 1 when findings (or
/// a parse/check error in file mode) exist, 2 on usage errors and
/// unknown benchmark names — decided before any analysis runs.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut all = false;
    let mut target: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--all" => all = true,
            other if target.is_none() && !other.starts_with('-') => target = Some(other),
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("{LINT_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if all == target.is_some() {
        eprintln!("{LINT_USAGE}");
        return ExitCode::from(2);
    }
    // An explicit .mhdl path lints an on-disk file without a campaign.
    if let Some(path) = target.filter(|t| t.ends_with(".mhdl")) {
        return lint_file(path, json);
    }
    let benches: Vec<Benchmark> = if all {
        Benchmark::all().to_vec()
    } else {
        let name = target.expect("checked above: exactly one of --all/<name>");
        match Benchmark::from_name(name) {
            Some(bench) => vec![bench],
            None => {
                eprintln!("error: unknown benchmark `{name}` (see `musa list`)");
                return ExitCode::from(2);
            }
        }
    };
    let campaign = Campaign::new(benches[0]).benches(&benches).task(Task::Lint);
    let report = match campaign.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ReportData::Lint(rows) = &report.data else {
        unreachable!("the lint task yields lint rows");
    };
    let findings = total_findings(rows);
    print_report(&report, json);
    exit_by_findings(findings)
}

/// File mode for `musa lint`: read, parse, check, lint one `.mhdl`.
fn lint_file(path: &str, json: bool) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    let row = match lint_source(&stem, path, &source) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("error: {}", e.render(&source));
            return ExitCode::FAILURE;
        }
    };
    let findings = total_findings(std::slice::from_ref(&row));
    if json {
        println!(
            "{}",
            lint_report_json(std::slice::from_ref(&stem), std::slice::from_ref(&row))
        );
    } else {
        print!("{}", render_lint_text(std::slice::from_ref(&row)));
    }
    exit_by_findings(findings)
}

fn exit_by_findings(findings: usize) -> ExitCode {
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Shared driver for the store/serving subcommands: run, map
/// [`ServiceError`] onto the exit-code contract (2 usage, 1 runtime),
/// and echo the usage line after a usage failure.
fn cmd_service(
    args: &[String],
    usage: &str,
    run: impl FnOnce(&[String]) -> Result<(), ServiceError>,
) -> ExitCode {
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {}", error.message());
            if matches!(error, ServiceError::Usage(_))
                && !usage.is_empty()
                && !error.message().contains("usage:")
            {
                eprintln!("{usage}");
            }
            ExitCode::from(error.code())
        }
    }
}

fn cmd_sample(args: &[String]) -> Result<(), String> {
    let sample = SampleArgs::parse(args)?;
    musa::trace::set_progress(sample.trace.progress);
    if let Some(dir) = &sample.store {
        use musa::store::RunCached;
        let store = musa::store::Store::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
        let run = sample
            .campaign()
            .run_cached(&store)
            .map_err(|e| e.to_string())?;
        match &run.key {
            Some(key) => eprintln!("store: {} {key}", run.outcome.label()),
            None => eprintln!("store: {}", run.outcome.label()),
        }
        print_report(&run.report, sample.json);
        return Ok(());
    }
    let report = sample.campaign().run().map_err(|e| e.to_string())?;
    print_report(&report, sample.json);
    emit_observability(&report, &sample.trace, sample.json)
}

fn cmd_list() -> Result<(), String> {
    for bench in Benchmark::all() {
        println!("{bench}");
    }
    Ok(())
}
