//! The on-disk blob store.
//!
//! Layout under the store root (default `.musa-store/`):
//!
//! ```text
//! .musa-store/
//!   index.json            # advisory catalog (musa.store-index.v1)
//!   <32-hex-key>.json     # one musa.campaign.v1 blob per campaign
//! ```
//!
//! Two properties the rest of the crate leans on:
//!
//! * **Atomic writes** — blobs and the index are written to a
//!   temporary sibling and renamed into place, so readers (including
//!   concurrent `musa serve` connections and sharded workers) never
//!   observe a half-written file.
//! * **Corruption tolerance** — the blob is the source of truth and is
//!   re-validated on decode; the index is purely advisory. A missing,
//!   truncated or garbage file can only ever produce a *miss* (and a
//!   recompute), never an error or a wrong result.

use crate::key::CampaignKey;
use musa_core::json::{self, Json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the advisory `index.json` catalog.
pub const INDEX_SCHEMA: &str = "musa.store-index.v1";

/// One advisory catalog entry: enough to answer "what is in this
/// store?" without opening every blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// The campaign key, as 32 lowercase hex digits.
    pub key: String,
    /// The task slug (`sampling`, `table2`, ...).
    pub task: String,
    /// Benchmark names, in run order.
    pub benches: Vec<String>,
    /// The campaign's master seed.
    pub seed: u64,
}

/// A content-addressed store of campaign result blobs.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the blob a key addresses.
    pub fn blob_path(&self, key: &CampaignKey) -> PathBuf {
        self.root.join(format!("{}.json", key.as_hex()))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    /// Reads the blob a key addresses, if present and readable.
    ///
    /// The raw text is returned as-is; callers validate it (schema,
    /// task, shape) on decode, so a corrupt file degrades to a miss
    /// there. Any read error is a miss here.
    pub fn get(&self, key: &CampaignKey) -> Option<String> {
        fs::read_to_string(self.blob_path(key)).ok()
    }

    /// Stores a blob under its key and records the advisory index
    /// entry.
    ///
    /// Both files are written atomically (temp sibling + rename). The
    /// index update is best-effort: a failure there leaves a fully
    /// usable store (reads go straight to the blob), so only blob-write
    /// errors are reported.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the blob itself cannot be written.
    pub fn put(&self, entry: StoreEntry, blob: &str) -> io::Result<()> {
        let key = CampaignKey::from_hex_unchecked(&entry.key);
        write_atomic(&self.blob_path(&key), blob)?;
        let mut entries = self.entries();
        entries.retain(|e| e.key != entry.key);
        entries.push(entry);
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let _ = write_atomic(&self.index_path(), &render_index(&entries));
        Ok(())
    }

    /// The advisory catalog, as recorded by `index.json`.
    ///
    /// A missing or corrupt index yields an empty catalog — it never
    /// affects blob reads.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let Ok(text) = fs::read_to_string(self.index_path()) else {
            return Vec::new();
        };
        parse_index(&text).unwrap_or_default()
    }
}

impl CampaignKey {
    /// Rebuilds a key from its hex spelling without re-deriving it from
    /// a plan. Crate-internal: only the store uses it, to map index
    /// entries back to blob paths.
    pub(crate) fn from_hex_unchecked(hex: &str) -> Self {
        Self::raw(hex.to_string())
    }
}

/// Writes `text` to `path` atomically: a temporary sibling (suffixed
/// with the writer's pid plus a per-process sequence number, so
/// neither concurrent processes nor concurrent server threads ever
/// collide) is written, flushed and renamed into place.
pub(crate) fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("blob.json");
    let tmp = path.with_file_name(format!(
        "{file_name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    fs::write(&tmp, text)?;
    let renamed = fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

fn render_index(entries: &[StoreEntry]) -> String {
    Json::Obj(vec![
        ("schema", Json::str(INDEX_SCHEMA)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("key", Json::str(&e.key)),
                            ("task", Json::str(&e.task)),
                            ("benches", Json::Arr(e.benches.iter().map(Json::str).collect())),
                            ("seed", Json::UInt(e.seed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

fn parse_index(text: &str) -> Option<Vec<StoreEntry>> {
    let doc = json::parse(text).ok()?;
    if doc.get("schema")?.as_str()? != INDEX_SCHEMA {
        return None;
    }
    let mut entries = Vec::new();
    for item in doc.get("entries")?.as_arr()? {
        entries.push(StoreEntry {
            key: item.get("key")?.as_str()?.to_string(),
            task: item.get("task")?.as_str()?.to_string(),
            benches: item
                .get("benches")?
                .as_arr()?
                .iter()
                .map(|b| b.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            seed: item.get("seed")?.as_u64()?,
        });
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_core::{Campaign, Task};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "musa-store-test-{}-{tag}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn some_key() -> CampaignKey {
        let plan = Campaign::named("c17")
            .fast()
            .task(Task::Sampling { fraction: 0.5 })
            .plan()
            .unwrap();
        CampaignKey::of(&plan)
    }

    fn entry_for(key: &CampaignKey) -> StoreEntry {
        StoreEntry {
            key: key.as_hex().to_string(),
            task: "sampling".to_string(),
            benches: vec!["c17".to_string()],
            seed: 0xDA7E_2005,
        }
    }

    #[test]
    fn put_then_get_roundtrips_and_indexes() {
        let dir = scratch_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let key = some_key();
        assert_eq!(store.get(&key), None, "empty store must miss");

        store.put(entry_for(&key), "{\"schema\": \"musa.campaign.v1\"}").unwrap();
        assert_eq!(
            store.get(&key).as_deref(),
            Some("{\"schema\": \"musa.campaign.v1\"}")
        );
        let entries = store.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], entry_for(&key));

        // Re-putting the same key replaces, never duplicates.
        store.put(entry_for(&key), "{}").unwrap();
        assert_eq!(store.get(&key).as_deref(), Some("{}"));
        assert_eq!(store.entries().len(), 1);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_degrades_to_an_empty_catalog_without_breaking_reads() {
        let dir = scratch_dir("corrupt-index");
        let store = Store::open(&dir).unwrap();
        let key = some_key();
        store.put(entry_for(&key), "blob text").unwrap();

        fs::write(dir.join("index.json"), "{ not json").unwrap();
        assert!(store.entries().is_empty(), "corrupt index must read as empty");
        assert_eq!(store.get(&key).as_deref(), Some("blob text"), "blob reads bypass the index");

        // The next put rebuilds the index from scratch.
        store.put(entry_for(&key), "blob text 2").unwrap();
        assert_eq!(store.entries().len(), 1);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_document_shape_is_pinned() {
        let entries = vec![StoreEntry {
            key: "00ff".to_string(),
            task: "sampling".to_string(),
            benches: vec!["b01".to_string(), "c17".to_string()],
            seed: 7,
        }];
        let text = render_index(&entries);
        assert!(text.contains("\"schema\": \"musa.store-index.v1\""));
        assert_eq!(parse_index(&text), Some(entries));
    }
}
