//! `Campaign::run_cached(&store)` — the store-aware front door.
//!
//! A hit rebuilds the report from the stored blob with metadata
//! restamped from the *current* plan (seed, jobs, engine, preset, a
//! fresh wall clock), so `render_text()` and `to_json()` of a hit are
//! byte-identical to a fresh run — wall time aside — even when the
//! caller asked for a different `jobs` value than the run that
//! populated the store (jobs never enters the key, but it does appear
//! in the report header).

use crate::decode::decode_report_data;
use crate::key::CampaignKey;
use crate::store::{Store, StoreEntry};
use musa_core::{Campaign, CampaignError, CampaignPlan, Report, RunMeta, Task};
use std::time::{Duration, Instant};

/// How a [`RunCached::run_cached`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The report was rebuilt from a stored blob; nothing was computed.
    Hit,
    /// The campaign ran and its blob was written to the store.
    Miss,
    /// The task emits its own document ([`Task::Bench`] / [`Task::Lint`])
    /// and bypasses the store; the campaign simply ran.
    Bypass,
}

impl StoreOutcome {
    /// Status label for CLI/serve surfaces (`hit` / `miss` / `bypass`).
    pub fn label(self) -> &'static str {
        match self {
            StoreOutcome::Hit => "hit",
            StoreOutcome::Miss => "miss",
            StoreOutcome::Bypass => "bypass",
        }
    }
}

/// A report plus how the store satisfied it.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The campaign report — bit-identical in data (and byte-identical
    /// in rendered form, wall aside) whether it was a hit or a miss.
    pub report: Report,
    /// Hit, miss or bypass.
    pub outcome: StoreOutcome,
    /// The campaign key, when the task is storable.
    pub key: Option<CampaignKey>,
}

/// Store-aware campaign execution.
pub trait RunCached {
    /// Runs the campaign through `store`: returns the stored result on
    /// a hit, computes and stores on a miss.
    ///
    /// # Errors
    ///
    /// The same errors as [`Campaign::run`] — a corrupt or undecodable
    /// blob is a miss, never an error.
    fn run_cached(&self, store: &Store) -> Result<CachedRun, CampaignError>;
}

impl RunCached for Campaign {
    fn run_cached(&self, store: &Store) -> Result<CachedRun, CampaignError> {
        let started = Instant::now();
        let plan = self.plan()?;
        if matches!(plan.task, Task::Bench { .. } | Task::Lint) {
            let report = self.run()?;
            return Ok(CachedRun { report, outcome: StoreOutcome::Bypass, key: None });
        }
        let key = CampaignKey::of(&plan);
        if let Some(blob) = store.get(&key) {
            if let Some(data) = decode_report_data(&blob, &plan.task) {
                let report = Report {
                    meta: meta_from_plan(&plan, started.elapsed()),
                    task: plan.task,
                    data,
                    trace: None,
                };
                return Ok(CachedRun { report, outcome: StoreOutcome::Hit, key: Some(key) });
            }
        }
        let report = self.run()?;
        let entry = StoreEntry {
            key: key.as_hex().to_string(),
            task: report.task.slug().to_string(),
            benches: report.meta.benches.clone(),
            seed: report.meta.seed,
        };
        // Best-effort: a store that has become unwritable must not fail
        // a run that already produced its result.
        let _ = store.put(entry, &report.to_json());
        Ok(CachedRun { report, outcome: StoreOutcome::Miss, key: Some(key) })
    }
}

/// Builds the [`RunMeta`] a fresh [`Campaign::run`] of `plan` would
/// attach, with the given wall time. Shared by the store hit path and
/// the sharded driver so every execution mode stamps reports
/// identically.
pub fn meta_from_plan(plan: &CampaignPlan, wall: Duration) -> RunMeta {
    RunMeta {
        benches: plan.benches.iter().map(|b| b.name().to_string()).collect(),
        seed: plan.config.seed,
        jobs: plan.config.jobs,
        engine: plan.config.engine,
        fault_reduce: plan.config.fault_reduce,
        screen: plan.config.screen,
        opt: plan.config.opt,
        preset: plan.preset,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "musa-runcached-test-{}-{tag}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn campaign() -> Campaign {
        Campaign::named("c17").fast().seed(7).jobs(1).task(Task::Sampling { fraction: 0.5 })
    }

    /// Renders with the wall normalized away — the only legitimately
    /// nondeterministic byte range.
    fn normalized_json(report: &Report) -> String {
        let mut r = report.clone();
        r.meta.wall = Duration::ZERO;
        r.to_json()
    }

    #[test]
    fn miss_then_hit_is_byte_identical() {
        let (dir, store) = scratch_store("hit");
        let first = campaign().run_cached(&store).unwrap();
        assert_eq!(first.outcome, StoreOutcome::Miss);
        let second = campaign().run_cached(&store).unwrap();
        assert_eq!(second.outcome, StoreOutcome::Hit);
        assert_eq!(first.key, second.key);
        assert_eq!(normalized_json(&first.report), normalized_json(&second.report));
        assert_eq!(first.report.render_text(), second.report.render_text());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hit_restamps_meta_from_the_current_plan() {
        let (dir, store) = scratch_store("restamp");
        campaign().run_cached(&store).unwrap();
        // Same key (jobs is excluded), different requested jobs: the
        // hit must render with the *caller's* jobs value.
        let hit = campaign().jobs(3).run_cached(&store).unwrap();
        assert_eq!(hit.outcome, StoreOutcome::Hit);
        assert_eq!(hit.report.meta.jobs, 3);
        assert!(hit.report.render_text().contains("3 jobs"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_blob_is_a_miss_and_gets_recomputed() {
        let (dir, store) = scratch_store("corrupt");
        let first = campaign().run_cached(&store).unwrap();
        let key = first.key.clone().unwrap();
        fs::write(store.blob_path(&key), "{ truncated").unwrap();
        let again = campaign().run_cached(&store).unwrap();
        assert_eq!(again.outcome, StoreOutcome::Miss, "corrupt blob must recompute");
        assert_eq!(normalized_json(&first.report), normalized_json(&again.report));
        // ... and the recompute healed the blob.
        let healed = campaign().run_cached(&store).unwrap();
        assert_eq!(healed.outcome, StoreOutcome::Hit);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_and_lint_bypass_the_store() {
        let (dir, store) = scratch_store("bypass");
        let run = Campaign::named("c17")
            .fast()
            .task(Task::Lint)
            .run_cached(&store)
            .unwrap();
        assert_eq!(run.outcome, StoreOutcome::Bypass);
        assert_eq!(run.key, None);
        assert!(store.entries().is_empty(), "bypass must not write blobs");
        fs::remove_dir_all(&dir).unwrap();
    }
}
