//! Decoding `musa.campaign.v1` blobs back into [`ReportData`].
//!
//! The decoder is the store's trust boundary: a blob is only ever a
//! cache of something the pipeline can recompute, so *every* failure
//! mode — wrong schema, wrong task, missing field, ill-typed value,
//! unknown label — degrades to `None`, which the caller treats as a
//! miss. Nothing read from disk can produce an error or a wrong
//! report.
//!
//! Byte-identity of a hit rests on two facts checked by the store
//! integration tests: the emitter ([`Report::to_json`]) and this
//! decoder are exact inverses for every envelope task, and the JSON
//! layer prints floats in shortest-round-trip form, so a decoded `f64`
//! re-encodes to the same bytes.
//!
//! [`Report::to_json`]: musa_core::Report::to_json

use musa_core::json::{self, JsonValue};
use musa_core::{
    AblationPoint, BenchAblation, BenchOutcome, BenchSweep, BenchTopUp, CurvePair, FaultSimStats,
    MgOutcome, OperatorEfficiency, OperatorProfile, ReportData, SamplingOutcome, SweepPoint,
    Table1, Table1Row, Table2, Table2Row, Task, TopUpMode, TopUpOutcome,
};
use musa_metrics::Nlfce;
use musa_mutation::{MutationOperator, MutationScore};

/// The campaign-report schema tag this decoder accepts.
pub const CAMPAIGN_SCHEMA: &str = "musa.campaign.v1";

/// Decodes a stored blob into the payload for `task`, or `None` if the
/// blob is not a well-formed `musa.campaign.v1` document for exactly
/// that task.
///
/// [`Task::Bench`] and [`Task::Lint`] emit their own documents and
/// bypass the store entirely; they always decode to `None` here.
pub fn decode_report_data(blob: &str, task: &Task) -> Option<ReportData> {
    let doc = json::parse(blob).ok()?;
    if doc.get("schema")?.as_str()? != CAMPAIGN_SCHEMA {
        return None;
    }
    if doc.get("meta")?.get("task")?.as_str()? != task.slug() {
        return None;
    }
    let data = doc.get("data")?;
    match task {
        Task::Sampling { .. } => Some(ReportData::Sampling(
            data.as_arr()?
                .iter()
                .map(|row| {
                    Some(BenchOutcome {
                        bench: row.get("bench")?.as_str()?.to_string(),
                        outcome: outcome(row.get("outcome")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::OperatorProfile { .. } => Some(ReportData::OperatorProfile(
            data.as_arr()?
                .iter()
                .map(profile)
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::MutationGuided => Some(ReportData::MutationGuided(
            data.as_arr()?
                .iter()
                .map(|row| {
                    Some(MgOutcome {
                        bench: row.get("bench")?.as_str()?.to_string(),
                        population: row.get("population")?.as_usize()?,
                        sessions: row.get("sessions")?.as_usize()?,
                        total_len: row.get("total_len")?.as_usize()?,
                        killed: row.get("killed")?.as_usize()?,
                        rounds: row.get("rounds")?.as_usize()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        // The in-memory Table 1 carries the per-circuit profiles it was
        // derived from as a reuse convenience; they are not part of the
        // report's text or JSON, so a decoded table legitimately
        // carries none.
        Task::Table1 { .. } => Some(ReportData::Table1(Table1 {
            rows: data
                .get("rows")?
                .as_arr()?
                .iter()
                .map(|row| {
                    Some(Table1Row {
                        circuit: row.get("circuit")?.as_str()?.to_string(),
                        operator: MutationOperator::from_acronym(row.get("operator")?.as_str()?)?,
                        delta_fc_pct: row.get("delta_fc_pct")?.as_f64()?,
                        delta_l_pct: row.get("delta_l_pct")?.as_f64()?,
                        nlfce: row.get("nlfce")?.as_f64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            profiles: Vec::new(),
        })),
        Task::Table2 { .. } => Some(ReportData::Table2(Table2 {
            rows: data
                .get("rows")?
                .as_arr()?
                .iter()
                .map(|row| {
                    Some(Table2Row {
                        circuit: row.get("circuit")?.as_str()?.to_string(),
                        sampled: row.get("sampled")?.as_usize()?,
                        test_oriented: outcome(row.get("test_oriented")?)?,
                        random: outcome(row.get("random")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        })),
        Task::SweepFraction { .. } => Some(ReportData::SweepFraction(
            data.as_arr()?
                .iter()
                .map(|row| {
                    Some(BenchSweep {
                        bench: row.get("bench")?.as_str()?.to_string(),
                        points: row
                            .get("points")?
                            .as_arr()?
                            .iter()
                            .map(|p| {
                                Some(SweepPoint {
                                    fraction: p.get("fraction")?.as_f64()?,
                                    test_oriented: outcome(p.get("test_oriented")?)?,
                                    random: outcome(p.get("random")?)?,
                                })
                            })
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::CoverageCurves { .. } => Some(ReportData::CoverageCurves(
            data.as_arr()?
                .iter()
                .map(|pair| {
                    Some(CurvePair {
                        circuit: pair.get("circuit")?.as_str()?.to_string(),
                        mutation: curve(pair.get("mutation")?)?,
                        random: curve(pair.get("random")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::AtpgTopup { .. } => Some(ReportData::AtpgTopup(
            data.as_arr()?
                .iter()
                .map(|row| {
                    Some(BenchTopUp {
                        bench: row.get("bench")?.as_str()?.to_string(),
                        modes: row
                            .get("modes")?
                            .as_arr()?
                            .iter()
                            .map(topup)
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::EquivalenceAblation { .. } => Some(ReportData::EquivalenceAblation(
            data.as_arr()?
                .iter()
                .map(|row| {
                    Some(BenchAblation {
                        bench: row.get("bench")?.as_str()?.to_string(),
                        points: row
                            .get("points")?
                            .as_arr()?
                            .iter()
                            .map(|p| {
                                Some(AblationPoint {
                                    budget: p.get("budget")?.as_usize()?,
                                    equivalent: p.get("equivalent")?.as_usize()?,
                                    score: score(p.get("score")?)?,
                                })
                            })
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        Task::Bench { .. } | Task::Lint => None,
    }
}

/// Maps a stored strategy label back to the `&'static str` the
/// experiment layer tags outcomes with.
fn strategy(label: &str) -> Option<&'static str> {
    match label {
        "random" => Some("random"),
        "test-oriented" => Some("test-oriented"),
        _ => None,
    }
}

/// Decodes one `outcome_json`-encoded [`SamplingOutcome`] (also the
/// payload format of `musa.shard.v1` worker results).
pub(crate) fn outcome(v: &JsonValue) -> Option<SamplingOutcome> {
    Some(SamplingOutcome {
        strategy: strategy(v.get("strategy")?.as_str()?)?,
        population: v.get("population")?.as_usize()?,
        sampled: v.get("sampled")?.as_usize()?,
        mutation_score_pct: v.get("mutation_score_pct")?.as_f64()?,
        score: score(v.get("score")?)?,
        metrics: metrics(v.get("metrics")?)?,
        nlfce: v.get("nlfce")?.as_f64()?,
        data_len: v.get("data_len")?.as_usize()?,
        fault_sim: FaultSimStats {
            faults_simulated: v.get("faults_simulated")?.as_usize()?,
            faults_total: v.get("faults_total")?.as_usize()?,
        },
        screened: v.get("screened")?.as_usize()?,
    })
}

fn score(v: &JsonValue) -> Option<MutationScore> {
    Some(MutationScore {
        generated: v.get("generated")?.as_usize()?,
        killed: v.get("killed")?.as_usize()?,
        equivalent: v.get("equivalent")?.as_usize()?,
    })
}

fn metrics(v: &JsonValue) -> Option<Nlfce> {
    let random_len = v.get("random_len_at_equal_fc")?;
    Some(Nlfce {
        delta_fc_pct: v.get("delta_fc_pct")?.as_f64()?,
        delta_l_pct: v.get("delta_l_pct")?.as_f64()?,
        nlfce: v.get("nlfce")?.as_f64()?,
        mutation_len: v.get("mutation_len")?.as_usize()?,
        random_len_at_equal_fc: match random_len {
            JsonValue::Null => None,
            other => Some(other.as_usize()?),
        },
    })
}

fn curve(v: &JsonValue) -> Option<Vec<(usize, f64)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            Some((pair[0].as_usize()?, pair[1].as_f64()?))
        })
        .collect()
}

fn profile(v: &JsonValue) -> Option<OperatorProfile> {
    Some(OperatorProfile {
        circuit: v.get("circuit")?.as_str()?.to_string(),
        rows: v
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(OperatorEfficiency {
                    operator: MutationOperator::from_acronym(r.get("operator")?.as_str()?)?,
                    mutants: r.get("mutants")?.as_usize()?,
                    data_len: r.get("data_len")?.as_usize()?,
                    mutation_fault_coverage: r.get("mutation_fault_coverage")?.as_f64()?,
                    metrics: metrics(r.get("metrics")?)?,
                    fault_sim: FaultSimStats {
                        faults_simulated: r.get("faults_simulated")?.as_usize()?,
                        faults_total: r.get("faults_total")?.as_usize()?,
                    },
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn topup(v: &JsonValue) -> Option<TopUpOutcome> {
    let mode = match v.get("mode")?.as_str()? {
        "scratch" => TopUpMode::Scratch,
        "random-first" => TopUpMode::RandomFirst,
        "validation-first" => TopUpMode::ValidationFirst,
        _ => return None,
    };
    Some(TopUpOutcome {
        mode,
        initial_vectors: v.get("initial_vectors")?.as_usize()?,
        atpg_targets: v.get("atpg_targets")?.as_usize()?,
        backtracks: v.get("backtracks")?.as_u64()?,
        atpg_vectors: v.get("atpg_vectors")?.as_usize()?,
        untestable: v.get("untestable")?.as_usize()?,
        aborted: v.get("aborted")?.as_usize()?,
        final_coverage: v.get("final_coverage")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_core::{Campaign, Report};

    fn run(task: Task) -> Report {
        Campaign::named("c17").fast().seed(7).jobs(1).task(task).run().unwrap()
    }

    /// Emit → decode → re-emit must be byte-identical; the re-emitted
    /// report borrows the original meta so only `data` is exercised.
    fn assert_roundtrips(task: Task) {
        let report = run(task.clone());
        let blob = report.to_json();
        let data = decode_report_data(&blob, &task)
            .unwrap_or_else(|| panic!("{} blob must decode", task.slug()));
        let rebuilt = Report { meta: report.meta.clone(), task, data, trace: None };
        assert_eq!(rebuilt.to_json(), blob, "decode must invert to_json");
        assert_eq!(rebuilt.render_text(), report.render_text(), "text must round-trip too");
    }

    #[test]
    fn sampling_family_round_trips() {
        assert_roundtrips(Task::Sampling { fraction: 0.5 });
        assert_roundtrips(Task::Table2 { fraction: 0.5 });
        assert_roundtrips(Task::SweepFraction { fractions: vec![0.25, 0.5] });
    }

    #[test]
    fn remaining_envelope_tasks_round_trip() {
        assert_roundtrips(Task::MutationGuided);
        assert_roundtrips(Task::CoverageCurves { points: 4 });
        assert_roundtrips(Task::AtpgTopup { backtrack_limit: 50 });
        assert_roundtrips(Task::EquivalenceAblation { budgets: vec![50, 100] });
        assert_roundtrips(Task::OperatorProfile {
            operators: MutationOperator::all().to_vec(),
        });
        assert_roundtrips(Task::Table1 { operators: MutationOperator::all().to_vec() });
    }

    #[test]
    fn malformed_blobs_decode_to_none() {
        let task = Task::Sampling { fraction: 0.5 };
        assert_eq!(decode_report_data("", &task).map(|_| ()), None);
        assert_eq!(decode_report_data("{ garbage", &task).map(|_| ()), None);
        assert_eq!(
            decode_report_data("{\"schema\": \"musa.campaign.v2\"}", &task).map(|_| ()),
            None,
            "unknown schema versions must miss"
        );
        let report = run(task.clone());
        let blob = report.to_json();
        // Right schema, wrong task: a key collision across tasks would
        // be a digest bug, but the decoder still refuses.
        assert_eq!(decode_report_data(&blob, &Task::MutationGuided).map(|_| ()), None);
        // Truncation anywhere inside the document must miss cleanly.
        assert_eq!(
            decode_report_data(&blob[..blob.len() / 2], &task).map(|_| ()),
            None
        );
    }
}
