//! The TCP campaign service — `musa serve` / `musa client`.
//!
//! A deliberately tiny, std-only wire protocol: one length-prefixed
//! frame per direction, then the connection closes. A frame is one
//! ASCII header line followed by exactly `len` body bytes:
//!
//! ```text
//! MUSA/1 <kind> <len>\n
//! <len body bytes>
//! ```
//!
//! The client sends one `campaign` frame whose body is a
//! `musa.request.v1` document. The server consults the store
//! ([`RunCached`]), computes on a miss, and answers
//! with one frame whose kind doubles as the status:
//!
//! | status | body |
//! |---|---|
//! | `ok-hit` | the report JSON, rebuilt from the store |
//! | `ok-miss` | the report JSON, freshly computed (and now stored) |
//! | `ok` | the report JSON for store-bypassing tasks (bench, lint) |
//! | `error` | a printable message (bad request or failed run) |
//!
//! Everything a peer sends is untrusted: headers are validated
//! token-by-token, bodies are capped at [`MAX_BODY`], and a malformed
//! connection only ever poisons itself — the accept loop keeps
//! serving.

use crate::run_cached::{RunCached, StoreOutcome};
use crate::store::Store;
use crate::request::parse_request;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Protocol magic, first token of every frame header.
pub const PROTOCOL: &str = "MUSA/1";

/// Upper bound on a frame body (64 MiB) — far above any report, small
/// enough that a hostile header cannot make the peer allocate wildly.
pub const MAX_BODY: usize = 64 << 20;

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, kind: &str, body: &[u8]) -> io::Result<()> {
    debug_assert!(kind.split_whitespace().count() == 1, "frame kind is one token");
    writeln!(w, "{PROTOCOL} {kind} {}", body.len())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, returning `(kind, body)`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on any malformed header (wrong magic,
/// missing tokens, oversized or unparsable length), plus underlying
/// I/O errors.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<(String, Vec<u8>)> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let mut tokens = header.split_whitespace();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if tokens.next() != Some(PROTOCOL) {
        return Err(bad("frame does not start with MUSA/1"));
    }
    let kind = tokens.next().ok_or_else(|| bad("frame header has no kind"))?.to_string();
    let len: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("frame header has no length"))?;
    if tokens.next().is_some() {
        return Err(bad("frame header has trailing tokens"));
    }
    if len > MAX_BODY {
        return Err(bad("frame body exceeds the 64 MiB cap"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((kind, body))
}

/// Serves one request frame on an established connection: the entire
/// per-connection protocol, factored out so tests can drive it over
/// any `Read + Write` transport.
///
/// Protocol-level problems (bad frame, bad request, failed run) are
/// answered with an `error` frame and reported as `Ok` — only
/// transport failures are returned as errors.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn handle_connection(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    store: &Store,
) -> io::Result<()> {
    let (kind, body) = match read_frame(reader) {
        Ok(frame) => frame,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return write_frame(writer, "error", e.to_string().as_bytes());
        }
        Err(e) => return Err(e),
    };
    if kind != "campaign" {
        return write_frame(writer, "error", format!("unknown frame kind `{kind}`").as_bytes());
    }
    let Ok(request_text) = String::from_utf8(body) else {
        return write_frame(writer, "error", b"request body is not UTF-8");
    };
    let campaign = match parse_request(&request_text) {
        Ok(campaign) => campaign,
        Err(e) => return write_frame(writer, "error", e.as_bytes()),
    };
    match campaign.run_cached(store) {
        Ok(run) => {
            let status = match run.outcome {
                StoreOutcome::Hit => "ok-hit",
                StoreOutcome::Miss => "ok-miss",
                StoreOutcome::Bypass => "ok",
            };
            write_frame(writer, status, run.report.to_json().as_bytes())
        }
        Err(e) => write_frame(writer, "error", e.to_string().as_bytes()),
    }
}

/// The accept loop behind `musa serve`. Serves connections forever —
/// or exactly one when `once` is set (the hermetic-CI mode) — against
/// the given store. Per-connection failures are answered/logged and
/// never stop the loop.
///
/// Each connection is handled on its own thread, so a slow or stalled
/// client never blocks the accept loop: the store's blob writes are
/// atomic (temp sibling + rename, unique per thread), so concurrent
/// misses for the same key simply race to install identical blobs.
/// `once` mode stays single-threaded — its point is a deterministic
/// serve-one-then-exit for hermetic tests.
///
/// # Errors
///
/// Only a failure of `accept` itself.
pub fn serve(listener: &TcpListener, store: &Store, once: bool) -> io::Result<()> {
    if once {
        let (stream, _) = listener.accept()?;
        if let Err(e) = serve_stream(stream, store) {
            eprintln!("serve: connection failed: {e}");
        }
        return Ok(());
    }
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let stream = stream?;
            scope.spawn(move || {
                if let Err(e) = serve_stream(stream, store) {
                    eprintln!("serve: connection failed: {e}");
                }
            });
        }
        Ok(())
    })
}

fn serve_stream(stream: TcpStream, store: &Store) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    handle_connection(&mut reader, &mut writer, store)
}

/// Sends one campaign request to a server and returns
/// `(status, body)`.
///
/// # Errors
///
/// Printable connection/protocol failures (the `musa client` CLI
/// surfaces them on stderr, exit 1).
pub fn client_request(addr: impl ToSocketAddrs, request_text: &str) -> Result<(String, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("connect failed: {e}"))?;
    write_frame(&mut writer, "campaign", request_text.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let (status, body) = read_frame(&mut reader).map_err(|e| format!("receive failed: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "server sent non-UTF-8".to_string())?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "musa-serve-test-{}-{tag}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        (dir.clone(), Store::open(dir).unwrap())
    }

    const REQUEST: &str = r#"{
        "schema": "musa.request.v1",
        "task": "sampling",
        "params": { "fraction": 0.5 },
        "benches": ["c17"],
        "seed": 7,
        "preset": "fast",
        "jobs": 1
    }"#;

    fn roundtrip_over_buffers(store: &Store, request: &str) -> (String, String) {
        let mut wire = Vec::new();
        write_frame(&mut wire, "campaign", request.as_bytes()).unwrap();
        let mut reader = Cursor::new(wire);
        let mut response = Vec::new();
        handle_connection(&mut reader, &mut response, store).unwrap();
        let (status, body) = read_frame(&mut Cursor::new(response)).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn frames_round_trip_and_reject_garbage() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "campaign", b"hello").unwrap();
        assert_eq!(wire, b"MUSA/1 campaign 5\nhello");
        let (kind, body) = read_frame(&mut Cursor::new(wire)).unwrap();
        assert_eq!((kind.as_str(), body.as_slice()), ("campaign", &b"hello"[..]));

        for garbage in [
            &b"HTTP/1.1 200 OK\n"[..],
            b"MUSA/1 campaign\n",
            b"MUSA/1 campaign five\n",
            b"MUSA/1 campaign 5 extra\n",
            b"MUSA/1 campaign 99999999999999\n",
        ] {
            let err = read_frame(&mut Cursor::new(garbage.to_vec())).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{garbage:?}");
        }
        // Truncated body: header promises more than the wire holds.
        assert!(read_frame(&mut Cursor::new(b"MUSA/1 campaign 10\nhi".to_vec())).is_err());
    }

    #[test]
    fn connection_serves_miss_then_hit_with_identical_bodies() {
        let (dir, store) = scratch_store("hit");
        let (status1, body1) = roundtrip_over_buffers(&store, REQUEST);
        assert_eq!(status1, "ok-miss");
        let (status2, body2) = roundtrip_over_buffers(&store, REQUEST);
        assert_eq!(status2, "ok-hit");
        let norm = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"wall_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(norm(&body1), norm(&body2), "hit body must match the miss body");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_requests_get_error_frames_not_hangups() {
        let (dir, store) = scratch_store("errors");
        let (status, body) = roundtrip_over_buffers(&store, "{ nope");
        assert_eq!(status, "error");
        assert!(body.contains("not valid JSON"), "{body}");

        // Unknown frame kind.
        let mut wire = Vec::new();
        write_frame(&mut wire, "telemetry", b"{}").unwrap();
        let mut response = Vec::new();
        handle_connection(&mut Cursor::new(wire), &mut response, &store).unwrap();
        let (status, _) = read_frame(&mut Cursor::new(response)).unwrap();
        assert_eq!(status, "error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_clients_are_served_independently() {
        let (dir, store) = scratch_store("concurrent");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The server thread never exits (no `once`); it is deliberately
        // leaked and dies with the test process.
        std::thread::spawn(move || serve(&listener, &store, false));

        // Client A connects first but stays silent, pinning its
        // connection open. Under a serial accept loop this would block
        // the server, and client B below would hang forever.
        let slow = TcpStream::connect(addr).unwrap();

        // Client B completes a full round trip while A is still open.
        let (status, body) = client_request(addr, REQUEST).unwrap();
        assert_eq!(status, "ok-miss");
        assert!(body.contains("\"schema\": \"musa.campaign.v1\""));

        // A now speaks, and its (previously idle) connection still
        // works — and sees B's result as a store hit.
        let mut writer = slow.try_clone().unwrap();
        write_frame(&mut writer, "campaign", REQUEST.as_bytes()).unwrap();
        let mut reader = BufReader::new(slow);
        let (status, _) = read_frame(&mut reader).unwrap();
        assert_eq!(status, "ok-hit");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tcp_end_to_end_once_mode() {
        let (dir, store) = scratch_store("tcp");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&listener, &store, true).unwrap());
        let (status, body) = client_request(addr, REQUEST).unwrap();
        server.join().unwrap();
        assert_eq!(status, "ok-miss");
        assert!(body.contains("\"schema\": \"musa.campaign.v1\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
