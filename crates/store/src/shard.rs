//! Multi-process sharding — `musa campaign --workers N`.
//!
//! The sampling task's unit of work is one **cell** of the
//! bench × repetition grid. Seeds are position-based (drawn before any
//! worker exists) and the merge is the order-independent, repetition-
//! indexed [`SamplingAggregate`], so *any* partition of the grid over
//! any number of OS processes reproduces the in-process report bit for
//! bit. The protocol:
//!
//! 1. the parent derives the grid from the validated plan and deals
//!    cells round-robin across `N` workers;
//! 2. each worker is the current executable re-invoked as
//!    `musa __worker --cells b01:0,c17:1`, with the original
//!    `musa.request.v1` text on stdin (workers re-validate the request
//!    themselves — the parent forwards bytes, not trust);
//! 3. a worker answers with a `musa.shard.v1` document on stdout — one
//!    `outcome_json` record per cell;
//! 4. the parent folds all shards through one aggregate per bench (in
//!    plan order) and stamps the report exactly like an in-process run.

use crate::decode;
use crate::request::parse_request;
use crate::run_cached::meta_from_plan;
use musa_core::json::{self, Json, JsonValue};
use musa_core::{
    outcome_json, BenchOutcome, CampaignPlan, Report, ReportData, SamplingAggregate,
    SamplingOutcome, SamplingRun, Task,
};
use musa_mutation::{generate_mutants, GenerateOptions};
use musa_testgen::SamplingStrategy;
use std::io::Write as _;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// The worker-result schema tag.
pub const SHARD_SCHEMA: &str = "musa.shard.v1";

/// One unit of sampling work: one repetition of one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Benchmark name.
    pub bench: String,
    /// Repetition index, `0..config.repetitions`.
    pub repetition: usize,
}

/// The full bench × repetition grid of a sampling plan, bench-major in
/// plan order.
///
/// # Errors
///
/// Only [`Task::Sampling`] shards; any other task is refused with a
/// usage-style message.
pub fn grid(plan: &CampaignPlan) -> Result<Vec<Cell>, String> {
    if !matches!(plan.task, Task::Sampling { .. }) {
        return Err(format!(
            "--workers shards the sampling task only (got `{}`)",
            plan.task.slug()
        ));
    }
    let repetitions = plan.config.repetitions.max(1);
    let mut cells = Vec::with_capacity(plan.benches.len() * repetitions);
    for bench in &plan.benches {
        for repetition in 0..repetitions {
            cells.push(Cell { bench: bench.name().to_string(), repetition });
        }
    }
    Ok(cells)
}

/// Deals cells round-robin across `workers` shards; shards that would
/// be empty (more workers than cells) are dropped.
pub fn assign(cells: &[Cell], workers: usize) -> Vec<Vec<Cell>> {
    let workers = workers.max(1);
    let shard_count = workers.min(cells.len().max(1));
    let mut shards: Vec<Vec<Cell>> = vec![Vec::new(); shard_count];
    for (i, cell) in cells.iter().enumerate() {
        shards[i % shard_count].push(cell.clone());
    }
    shards.retain(|s| !s.is_empty());
    shards
}

/// Renders a shard as the `--cells` argument (`b01:0,c17:1`).
pub fn cells_spec(cells: &[Cell]) -> String {
    cells
        .iter()
        .map(|c| format!("{}:{}", c.bench, c.repetition))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a `--cells` argument back into cells.
///
/// # Errors
///
/// Describes the first malformed entry.
pub fn parse_cells_spec(spec: &str) -> Result<Vec<Cell>, String> {
    let mut cells = Vec::new();
    for part in spec.split(',') {
        let (bench, repetition) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed cell `{part}` (expected bench:repetition)"))?;
        let repetition = repetition
            .parse::<usize>()
            .map_err(|_| format!("malformed repetition in cell `{part}`"))?;
        if bench.is_empty() {
            return Err(format!("malformed cell `{part}` (empty bench name)"));
        }
        cells.push(Cell { bench: bench.to_string(), repetition });
    }
    if cells.is_empty() {
        return Err("--cells is empty".to_string());
    }
    Ok(cells)
}

/// Runs a worker's share of the grid and renders the `musa.shard.v1`
/// answer. This is the entire body of the hidden `musa __worker`
/// subcommand.
///
/// # Errors
///
/// A malformed request or cell spec, a cell outside the plan, or a
/// mutation-execution failure — all as printable strings (the worker
/// exits non-zero and the parent surfaces the message).
pub fn worker_shard_json(request_text: &str, cells_arg: &str) -> Result<String, String> {
    let campaign = parse_request(request_text)?;
    let plan = campaign.plan().map_err(|e| e.to_string())?;
    let Task::Sampling { fraction } = plan.task else {
        return Err(format!("worker shards sampling only (got `{}`)", plan.task.slug()));
    };
    let cells = parse_cells_spec(cells_arg)?;
    let repetitions = plan.config.repetitions.max(1);

    let mut results = Vec::with_capacity(cells.len());
    // Load each bench once, in the order cells first mention it.
    let mut loaded: Vec<String> = Vec::new();
    for bench_name in cells.iter().map(|c| c.bench.clone()) {
        if loaded.contains(&bench_name) {
            continue;
        }
        loaded.push(bench_name.clone());
        let bench = plan
            .benches
            .iter()
            .copied()
            .find(|b| b.name() == bench_name)
            .ok_or_else(|| format!("cell bench `{bench_name}` is not in the campaign"))?;
        let circuit = bench.load().map_err(|e| e.to_string())?;
        let population =
            generate_mutants(&circuit.checked, &circuit.name, &GenerateOptions::default());
        let run = SamplingRun::new(
            &circuit,
            &population,
            SamplingStrategy::random(fraction),
            &plan.config,
        );
        for cell in cells.iter().filter(|c| c.bench == bench_name) {
            if cell.repetition >= repetitions {
                return Err(format!(
                    "cell {}:{} is outside the plan's {repetitions} repetitions",
                    cell.bench, cell.repetition
                ));
            }
            let outcome = run.run_repetition(cell.repetition).map_err(|e| e.to_string())?;
            results.push((cell.clone(), outcome));
        }
    }

    Ok(Json::Obj(vec![
        ("schema", Json::str(SHARD_SCHEMA)),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|(cell, outcome)| {
                        Json::Obj(vec![
                            ("bench", Json::str(&cell.bench)),
                            ("repetition", Json::count(cell.repetition)),
                            ("outcome", outcome_json(outcome)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render())
}

/// Parses a worker's `musa.shard.v1` answer.
///
/// # Errors
///
/// A printable description of the first malformed record.
pub fn parse_shard(text: &str) -> Result<Vec<(Cell, SamplingOutcome)>, String> {
    let doc = json::parse(text).map_err(|e| format!("worker output is not JSON: {e}"))?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SHARD_SCHEMA) {
        return Err(format!("worker output is not a {SHARD_SCHEMA} document"));
    }
    let mut results = Vec::new();
    for record in doc
        .get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("worker output has no \"results\" array")?
    {
        let cell = Cell {
            bench: record
                .get("bench")
                .and_then(JsonValue::as_str)
                .ok_or("shard record has no bench")?
                .to_string(),
            repetition: record
                .get("repetition")
                .and_then(JsonValue::as_usize)
                .ok_or("shard record has no repetition")?,
        };
        let outcome = record
            .get("outcome")
            .and_then(decode::outcome)
            .ok_or_else(|| format!("shard record {}:{} has a malformed outcome", cell.bench, cell.repetition))?;
        results.push((cell, outcome));
    }
    Ok(results)
}

/// Runs a sampling campaign by sharding its grid across `workers`
/// freshly spawned OS processes (re-invocations of `exe`, normally the
/// current `musa` binary) and merging their shards — bit-identical to
/// the in-process run at every worker count.
///
/// # Errors
///
/// A malformed request, a non-sampling task, a worker that exits
/// non-zero or answers with a malformed/incomplete shard.
pub fn run_sharded(exe: &Path, request_text: &str, workers: usize) -> Result<Report, String> {
    let started = Instant::now();
    let campaign = parse_request(request_text)?;
    let plan = campaign.plan().map_err(|e| e.to_string())?;
    let cells = grid(&plan)?;
    let shards = assign(&cells, workers);

    // Spawn every worker before collecting any: the shards run
    // concurrently, scheduled by the OS.
    let mut children: Vec<(String, Child)> = Vec::with_capacity(shards.len());
    for shard in &shards {
        let spec = cells_spec(shard);
        let mut child = Command::new(exe)
            .arg("__worker")
            .arg("--cells")
            .arg(&spec)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("failed to spawn worker: {e}"))?;
        // The request is a few hundred bytes — far below the pipe
        // buffer — so a blocking write before the child consumes it
        // cannot deadlock.
        child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(request_text.as_bytes())
            .map_err(|e| format!("failed to send request to worker: {e}"))?;
        children.push((spec, child));
    }

    let mut merged: Vec<(Cell, SamplingOutcome)> = Vec::with_capacity(cells.len());
    for (spec, child) in children {
        let output = child
            .wait_with_output()
            .map_err(|e| format!("failed to collect worker [{spec}]: {e}"))?;
        if !output.status.success() {
            return Err(format!("worker [{spec}] failed ({})", output.status));
        }
        let text = String::from_utf8(output.stdout)
            .map_err(|_| format!("worker [{spec}] wrote non-UTF-8 output"))?;
        merged.extend(parse_shard(&text).map_err(|e| format!("worker [{spec}]: {e}"))?);
    }

    merge_report(&plan, merged, started)
}

/// Folds per-cell outcomes into the final report, in plan order.
fn merge_report(
    plan: &CampaignPlan,
    results: Vec<(Cell, SamplingOutcome)>,
    started: Instant,
) -> Result<Report, String> {
    let repetitions = plan.config.repetitions.max(1);
    let mut rows = Vec::with_capacity(plan.benches.len());
    for bench in &plan.benches {
        let mut aggregate = SamplingAggregate::new();
        for (cell, outcome) in results.iter().filter(|(c, _)| c.bench == bench.name()) {
            aggregate.push(cell.repetition, outcome.clone());
        }
        if aggregate.len() != repetitions {
            return Err(format!(
                "bench `{}`: {}/{repetitions} repetitions returned by workers",
                bench.name(),
                aggregate.len()
            ));
        }
        rows.push(BenchOutcome { bench: bench.name().to_string(), outcome: aggregate.finish() });
    }
    Ok(Report {
        meta: meta_from_plan(plan, started.elapsed()),
        task: plan.task.clone(),
        data: ReportData::Sampling(rows),
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_core::Campaign;

    const REQUEST: &str = r#"{
        "schema": "musa.request.v1",
        "task": "sampling",
        "params": { "fraction": 0.5 },
        "benches": ["b01", "c17"],
        "seed": 7,
        "preset": "fast",
        "jobs": 1
    }"#;

    fn plan() -> CampaignPlan {
        parse_request(REQUEST).unwrap().plan().unwrap()
    }

    #[test]
    fn grid_is_bench_major_and_sampling_only() {
        let cells = grid(&plan()).unwrap();
        // fast preset: 2 repetitions × 2 benches.
        assert_eq!(
            cells,
            vec![
                Cell { bench: "b01".into(), repetition: 0 },
                Cell { bench: "b01".into(), repetition: 1 },
                Cell { bench: "c17".into(), repetition: 0 },
                Cell { bench: "c17".into(), repetition: 1 },
            ]
        );
        let lint = Campaign::named("c17").fast().task(Task::Lint).plan().unwrap();
        assert!(grid(&lint).is_err());
    }

    #[test]
    fn assignment_is_round_robin_and_total() {
        let cells = grid(&plan()).unwrap();
        for workers in [1, 2, 3, 4, 7] {
            let shards = assign(&cells, workers);
            assert!(shards.len() <= workers.max(1));
            assert!(shards.iter().all(|s| !s.is_empty()));
            let mut flattened: Vec<Cell> = shards.into_iter().flatten().collect();
            flattened.sort_by(|a, b| (&a.bench, a.repetition).cmp(&(&b.bench, b.repetition)));
            assert_eq!(flattened, cells, "every cell exactly once at {workers} workers");
        }
    }

    #[test]
    fn cells_spec_round_trips() {
        let cells = grid(&plan()).unwrap();
        let spec = cells_spec(&cells);
        assert_eq!(spec, "b01:0,b01:1,c17:0,c17:1");
        assert_eq!(parse_cells_spec(&spec).unwrap(), cells);
        assert!(parse_cells_spec("").is_err());
        assert!(parse_cells_spec("b01").is_err());
        assert!(parse_cells_spec("b01:x").is_err());
    }

    /// The worker entry point, driven in-process: the full grid run
    /// through `worker_shard_json` + `parse_shard` + the merge must be
    /// bit-identical to `Campaign::run`.
    #[test]
    fn worker_plus_merge_reproduces_the_in_process_report() {
        let started = Instant::now();
        // Two workers' worth of shards, deliberately interleaved.
        let cells = grid(&plan()).unwrap();
        let shards = assign(&cells, 2);
        let mut results = Vec::new();
        for shard in &shards {
            let text = worker_shard_json(REQUEST, &cells_spec(shard)).unwrap();
            results.extend(parse_shard(&text).unwrap());
        }
        let sharded = merge_report(&plan(), results, started).unwrap();

        let direct = parse_request(REQUEST).unwrap().run().unwrap();
        let norm = |mut r: Report| {
            r.meta.wall = std::time::Duration::ZERO;
            (r.to_json(), r.render_text())
        };
        assert_eq!(norm(sharded), norm(direct));
    }

    #[test]
    fn worker_refuses_cells_outside_the_plan() {
        assert!(worker_shard_json(REQUEST, "c432:0").is_err(), "bench not in campaign");
        assert!(worker_shard_json(REQUEST, "c17:9").is_err(), "repetition out of range");
        assert!(worker_shard_json("{ nope", "c17:0").is_err(), "malformed request");
    }

    #[test]
    fn missing_cells_fail_the_merge() {
        let text = worker_shard_json(REQUEST, "c17:0,c17:1,b01:0").unwrap();
        let partial = parse_shard(&text).unwrap();
        let err = merge_report(&plan(), partial, Instant::now()).unwrap_err();
        assert!(err.contains("b01"), "error must name the starved bench: {err}");
    }
}
