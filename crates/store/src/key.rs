//! Canonical campaign keys.
//!
//! A [`CampaignKey`] is the content address of a campaign's **result**:
//! two campaigns share a key exactly when the deterministic pipeline is
//! guaranteed to produce bit-identical data for them. The key is
//! derived from the validated [`CampaignPlan`] — so builder-field
//! ordering, preset spelling and other surface details never matter —
//! and covers the task (with parameters), benchmarks, seed and every
//! effective configuration field **except** `jobs` and `opt`, which
//! respectively shard and speed up the work without touching a single
//! output bit (`wall` and tracing never enter the plan at all).
//!
//! `engine`, `fault_reduce` and `screen` are included even though the
//! differential suites pin them bit-identical: they are part of the
//! campaign's identity (the ISSUE contract keys on them), keeping the
//! store conservative — a false split costs one recompute, a false
//! merge would cost correctness.

use crate::digest::digest128_hex;
use musa_core::{CampaignPlan, Task};
use musa_testgen::Selection;
use std::fmt;
use std::fmt::Write as _;

/// The content address of one campaign result (32 hex digits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CampaignKey {
    hex: String,
}

impl CampaignKey {
    /// Derives the key from a validated plan.
    pub fn of(plan: &CampaignPlan) -> Self {
        Self { hex: digest128_hex(key_material(plan).as_bytes()) }
    }

    /// The key as 32 lowercase hex digits.
    pub fn as_hex(&self) -> &str {
        &self.hex
    }

    /// Wraps an already-derived hex spelling (store-internal; see
    /// `CampaignKey::from_hex_unchecked`).
    pub(crate) fn raw(hex: String) -> Self {
        Self { hex }
    }
}

impl fmt::Display for CampaignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex)
    }
}

/// Bit-exact canonical spelling for a fraction/budget float: the hex
/// of its IEEE-754 bits, so `0.1` vs `0.1 + 1e-17` can never collide
/// and formatting can never wobble.
fn float_bits(f: f64) -> String {
    format!("{:016x}", f.to_bits())
}

/// The canonical, line-oriented key material the digest runs over.
/// Exposed to the crate's tests so the golden can pin the layout.
pub(crate) fn key_material(plan: &CampaignPlan) -> String {
    let mut s = String::new();
    let config = &plan.config;
    let _ = writeln!(s, "schema=musa.key.v1");
    let _ = writeln!(s, "task={}", plan.task.slug());
    let _ = writeln!(s, "params={}", task_params(&plan.task));
    let benches: Vec<&str> = plan.benches.iter().map(|b| b.name()).collect();
    let _ = writeln!(s, "benches={}", benches.join(","));
    let _ = writeln!(s, "seed={}", config.seed);
    let _ = writeln!(s, "repetitions={}", config.repetitions);
    let _ = writeln!(s, "baseline_multiple={}", config.baseline_multiple);
    let _ = writeln!(s, "baseline_floor={}", config.baseline_floor);
    let _ = writeln!(s, "engine={}", config.engine.name());
    let _ = writeln!(s, "fault_reduce={}", config.fault_reduce);
    let _ = writeln!(s, "screen={}", config.screen);
    let _ = writeln!(
        s,
        "mg={},{},{},{},{},{}",
        config.mg.pool_size,
        config.mg.subseq_len,
        config.mg.max_rounds,
        selection_name(config.mg.selection),
        config.mg.seed,
        config.mg.engine.name(),
    );
    let _ = writeln!(
        s,
        "equivalence={},{},{},{}",
        config.equivalence.budget,
        config.equivalence.sequences,
        config.equivalence.exhaustive_limit,
        config.equivalence.seed,
    );
    // `config.jobs` and `config.opt` intentionally absent: pure
    // wall-clock knobs — sharding and the lane-tape optimizer are both
    // pinned bit-identical by the differential suites, so results are
    // shareable across their settings.
    s
}

fn selection_name(selection: Selection) -> &'static str {
    match selection {
        Selection::PerMutant => "per-mutant",
        Selection::FirstCome => "first-come",
        Selection::Greedy => "greedy",
    }
}

fn task_params(task: &Task) -> String {
    match task {
        Task::Sampling { fraction } | Task::Table2 { fraction } => {
            format!("fraction:{}", float_bits(*fraction))
        }
        Task::OperatorProfile { operators } | Task::Table1 { operators } => {
            let acronyms: Vec<&str> = operators.iter().map(|o| o.acronym()).collect();
            format!("operators:{}", acronyms.join(","))
        }
        Task::MutationGuided | Task::Lint => String::new(),
        Task::SweepFraction { fractions } => {
            let bits: Vec<String> = fractions.iter().map(|&f| float_bits(f)).collect();
            format!("fractions:{}", bits.join(","))
        }
        Task::CoverageCurves { points } => format!("points:{points}"),
        Task::AtpgTopup { backtrack_limit } => format!("backtrack_limit:{backtrack_limit}"),
        Task::EquivalenceAblation { budgets } => {
            let b: Vec<String> = budgets.iter().map(usize::to_string).collect();
            format!("budgets:{}", b.join(","))
        }
        Task::Bench { quick } => format!("quick:{quick}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_core::{Campaign, Task};
    use musa_mutation::Engine;

    fn key(campaign: &Campaign) -> CampaignKey {
        CampaignKey::of(&campaign.plan().unwrap())
    }

    fn base() -> Campaign {
        Campaign::named("c17")
            .fast()
            .seed(7)
            .task(Task::Sampling { fraction: 0.5 })
    }

    #[test]
    fn opt_level_shares_the_key() {
        // The optimizer is bit-identity-pinned, so `--opt off` may reuse
        // a `--opt full` result (and vice versa).
        use musa_mutation::OptLevel;
        assert_eq!(key(&base()), key(&base().opt(OptLevel::Off)));
    }

    #[test]
    fn key_is_stable_across_builder_field_order_and_jobs() {
        // Same campaign, different builder call order, different jobs:
        // one key.
        let a = key(&base().jobs(1));
        let b = key(
            &Campaign::named("c17")
                .jobs(8)
                .task(Task::Sampling { fraction: 0.5 })
                .seed(7)
                .fast(),
        );
        assert_eq!(a, b, "jobs and builder order must not enter the key");
        assert_eq!(a.as_hex().len(), 32);
    }

    #[test]
    fn differing_seed_engine_screen_or_task_move_the_key() {
        let a = key(&base());
        assert_ne!(a, key(&base().seed(8)), "seed");
        assert_ne!(a, key(&base().engine(Engine::Scalar)), "engine");
        assert_ne!(a, key(&base().screen(false)), "screen");
        assert_ne!(a, key(&base().fault_reduce(false)), "fault_reduce");
        assert_ne!(a, key(&base().task(Task::Sampling { fraction: 0.25 })), "fraction");
        assert_ne!(a, key(&base().task(Task::Table2 { fraction: 0.5 })), "task");
        assert_ne!(a, key(&Campaign::named("b01").fast().seed(7).task(Task::Sampling { fraction: 0.5 })), "bench");
        let paper = Campaign::named("c17").paper().seed(7).task(Task::Sampling { fraction: 0.5 });
        assert_ne!(a, key(&paper), "preset-resolved config");
    }

    #[test]
    fn key_material_layout_is_pinned() {
        // A golden on the canonical text itself: any accidental change
        // to the layout silently invalidates every existing store, so
        // it must be a conscious, versioned decision (bump musa.key.v1).
        let material = key_material(&base().plan().unwrap());
        let expected = "schema=musa.key.v1\n\
                        task=sampling\n\
                        params=fraction:3fe0000000000000\n\
                        benches=c17\n\
                        seed=7\n\
                        repetitions=2\n\
                        baseline_multiple=8\n\
                        baseline_floor=128\n\
                        engine=lanes\n\
                        fault_reduce=true\n\
                        screen=true\n\
                        mg=48,12,6,first-come,7,lanes\n\
                        equivalence=300,4,10,7\n";
        assert_eq!(material, expected);
    }
}
