//! # musa-store — content-addressed campaign results, sharding, serving
//!
//! The paper's experiments are **pure functions** of the validated
//! campaign: task, parameters, seed, benchmarks and the effective
//! configuration. Jobs, engine, fault reduction, screening and tracing
//! are wall-clock knobs pinned bit-identical by the differential
//! suites. That purity is the scaling lever this crate turns into
//! infrastructure:
//!
//! * [`CampaignKey`] — a canonical, content-addressed key derived from
//!   a [`CampaignPlan`](musa_core::CampaignPlan) (`jobs`, wall time and
//!   tracing excluded: they cannot change a single output bit);
//! * [`Store`] — an on-disk map from keys to `musa.campaign.v1` JSON
//!   blobs under `.musa-store/`, with atomic writes (temp + rename)
//!   and corruption-tolerant reads (a bad blob is a **miss**, never an
//!   error);
//! * [`RunCached`] — `campaign.run_cached(&store)`: consult the store,
//!   compute on miss, and return a [`Report`](musa_core::Report) whose
//!   rendered text and JSON are **byte-identical** to a fresh run
//!   (wall clock aside), because hits round-trip through the same
//!   `musa_core::json` encoding the report emitter uses;
//! * [`shard`] — `musa campaign --workers N`: split the bench ×
//!   repetition grid across worker *processes* and merge through the
//!   order-independent [`SamplingAggregate`](musa_core::SamplingAggregate),
//!   bit-identical to in-process at every worker count;
//! * [`serve`] — a std-only TCP service loop (`musa serve` /
//!   `musa client`) that accepts `musa.request.v1` documents, consults
//!   the store and streams reports back.
//!
//! Everything is `std`-only: no serde, no async runtime, no hash crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
mod digest;
mod key;
pub mod request;
mod run_cached;
pub mod serve;
pub mod shard;
mod store;

pub use digest::{digest128_hex, fnv1a64};
pub use key::CampaignKey;
pub use run_cached::{meta_from_plan, CachedRun, RunCached, StoreOutcome};
pub use store::{Store, StoreEntry, INDEX_SCHEMA};
