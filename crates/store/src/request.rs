//! The `musa.request.v1` wire format.
//!
//! A request document describes a campaign the way a *caller* would —
//! builder knobs, not a resolved configuration — so the server and the
//! sharding workers rebuild the exact [`Campaign`] the client holds
//! and every derived artifact (preset label in the report header, the
//! campaign key, validation errors) comes out identically:
//!
//! ```json
//! {
//!   "schema": "musa.request.v1",
//!   "task": "sampling",
//!   "params": { "fraction": 0.5 },
//!   "benches": ["b01", "c17"],
//!   "seed": 7,
//!   "preset": "fast",
//!   "jobs": 2,
//!   "engine": "lanes",
//!   "fault_reduce": "on",
//!   "screen": "static",
//!   "opt": "full"
//! }
//! ```
//!
//! `task` and `benches` are required; everything else is optional and
//! defaults exactly like the builder (seed [`DEFAULT_SEED`], paper
//! preset, all jobs, default engine, reduction, screening and the
//! lane-tape optimizer on).
//! Errors are strings meant for a CLI usage message — a malformed
//! request is a *caller* mistake and exits with code 2 before any
//! computation starts.
//!
//! [`DEFAULT_SEED`]: musa_core::DEFAULT_SEED

use musa_circuits::Benchmark;
use musa_core::json::{self, JsonValue};
use musa_core::{Campaign, Task};
use musa_mutation::{Engine, MutationOperator, OptLevel};

/// The request schema tag.
pub const REQUEST_SCHEMA: &str = "musa.request.v1";

/// Parses a `musa.request.v1` document into a [`Campaign`] builder.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found —
/// suitable for a usage message (exit code 2).
pub fn parse_request(text: &str) -> Result<Campaign, String> {
    let doc = json::parse(text).map_err(|e| format!("request is not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("request has no \"schema\" field")?;
    if schema != REQUEST_SCHEMA {
        return Err(format!("unsupported request schema `{schema}` (expected {REQUEST_SCHEMA})"));
    }

    let slug = doc
        .get("task")
        .and_then(JsonValue::as_str)
        .ok_or("request has no \"task\" field")?;
    let params = doc.get("params");
    let task = parse_task(slug, params)?;

    let bench_names = doc
        .get("benches")
        .and_then(JsonValue::as_arr)
        .ok_or("request has no \"benches\" array")?;
    if bench_names.is_empty() {
        return Err("request \"benches\" is empty".to_string());
    }
    let mut benches = Vec::with_capacity(bench_names.len());
    for name in bench_names {
        let name = name.as_str().ok_or("request \"benches\" must be strings")?;
        benches.push(
            Benchmark::from_name(name)
                .ok_or_else(|| format!("unknown benchmark `{name}` (see `musa list`)"))?,
        );
    }

    let mut campaign = Campaign::new(benches[0]).benches(&benches).task(task);
    if let Some(v) = doc.get("seed") {
        campaign = campaign.seed(v.as_u64().ok_or("request \"seed\" must be a non-negative integer")?);
    }
    if let Some(v) = doc.get("preset") {
        campaign = match v.as_str() {
            Some("paper") => campaign.paper(),
            Some("fast") => campaign.fast(),
            _ => return Err("request \"preset\" must be \"paper\" or \"fast\"".to_string()),
        };
    }
    if let Some(v) = doc.get("jobs") {
        campaign = campaign.jobs(v.as_usize().ok_or("request \"jobs\" must be a non-negative integer")?);
    }
    if let Some(v) = doc.get("engine") {
        let engine = match v.as_str() {
            Some("scalar") => Engine::Scalar,
            Some("lanes") => Engine::Lanes,
            _ => return Err("request \"engine\" must be \"scalar\" or \"lanes\"".to_string()),
        };
        campaign = campaign.engine(engine);
    }
    if let Some(v) = doc.get("fault_reduce") {
        let on = match v.as_str() {
            Some("on") => true,
            Some("off") => false,
            _ => return Err("request \"fault_reduce\" must be \"on\" or \"off\"".to_string()),
        };
        campaign = campaign.fault_reduce(on);
    }
    if let Some(v) = doc.get("screen") {
        let on = match v.as_str() {
            Some("static") => true,
            Some("off") => false,
            _ => return Err("request \"screen\" must be \"static\" or \"off\"".to_string()),
        };
        campaign = campaign.screen(on);
    }
    if let Some(v) = doc.get("opt") {
        let opt = match v.as_str() {
            Some("full") => OptLevel::Full,
            Some("off") => OptLevel::Off,
            _ => return Err("request \"opt\" must be \"full\" or \"off\"".to_string()),
        };
        campaign = campaign.opt(opt);
    }
    Ok(campaign)
}

fn require_params<'a>(slug: &str, params: Option<&'a JsonValue>) -> Result<&'a JsonValue, String> {
    params.ok_or_else(|| format!("task `{slug}` needs a \"params\" object"))
}

fn parse_task(slug: &str, params: Option<&JsonValue>) -> Result<Task, String> {
    let fraction = |params: Option<&JsonValue>| -> Result<f64, String> {
        require_params(slug, params)?
            .get("fraction")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("task `{slug}` needs params.fraction (a number)"))
    };
    let operators = |params: Option<&JsonValue>| -> Result<Vec<MutationOperator>, String> {
        match require_params(slug, params)?.get("operators") {
            // Omitted operator list = the full catalog, like the CLI.
            None => Ok(MutationOperator::all().to_vec()),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| format!("task `{slug}` params.operators must be an array"))?
                .iter()
                .map(|op| {
                    op.as_str()
                        .and_then(MutationOperator::from_acronym)
                        .ok_or_else(|| "unknown mutation operator in params.operators".to_string())
                })
                .collect(),
        }
    };
    match slug {
        "sampling" => Ok(Task::Sampling { fraction: fraction(params)? }),
        "table2" => Ok(Task::Table2 { fraction: fraction(params)? }),
        "operator-profile" => Ok(Task::OperatorProfile { operators: operators(params)? }),
        "table1" => Ok(Task::Table1 { operators: operators(params)? }),
        "mutation-guided" => Ok(Task::MutationGuided),
        "lint" => Ok(Task::Lint),
        "sweep-fraction" => {
            let fractions = require_params(slug, params)?
                .get("fractions")
                .and_then(JsonValue::as_arr)
                .ok_or("task `sweep-fraction` needs params.fractions (an array of numbers)")?
                .iter()
                .map(JsonValue::as_f64)
                .collect::<Option<Vec<_>>>()
                .ok_or("params.fractions must all be numbers")?;
            Ok(Task::SweepFraction { fractions })
        }
        "coverage-curves" => {
            let points = require_params(slug, params)?
                .get("points")
                .and_then(JsonValue::as_usize)
                .ok_or("task `coverage-curves` needs params.points (a count)")?;
            Ok(Task::CoverageCurves { points })
        }
        "atpg-topup" => {
            let backtrack_limit = require_params(slug, params)?
                .get("backtrack_limit")
                .and_then(JsonValue::as_u64)
                .ok_or("task `atpg-topup` needs params.backtrack_limit (a count)")?;
            Ok(Task::AtpgTopup { backtrack_limit })
        }
        "equivalence-ablation" => {
            let budgets = require_params(slug, params)?
                .get("budgets")
                .and_then(JsonValue::as_arr)
                .ok_or("task `equivalence-ablation` needs params.budgets (an array of counts)")?
                .iter()
                .map(JsonValue::as_usize)
                .collect::<Option<Vec<_>>>()
                .ok_or("params.budgets must all be counts")?;
            Ok(Task::EquivalenceAblation { budgets })
        }
        "bench" => {
            let quick = match params.and_then(|p| p.get("quick")) {
                None => false,
                Some(v) => v.as_bool().ok_or("params.quick must be a boolean")?,
            };
            Ok(Task::Bench { quick })
        }
        other => Err(format!("unknown task `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignKey;

    const FULL: &str = r#"{
        "schema": "musa.request.v1",
        "task": "sampling",
        "params": { "fraction": 0.5 },
        "benches": ["c17"],
        "seed": 7,
        "preset": "fast",
        "jobs": 2,
        "engine": "lanes",
        "fault_reduce": "on",
        "screen": "static",
        "opt": "off"
    }"#;

    #[test]
    fn a_full_request_rebuilds_the_builder_exactly() {
        let campaign = parse_request(FULL).unwrap();
        let direct = Campaign::named("c17")
            .fast()
            .seed(7)
            .jobs(2)
            .engine(Engine::Lanes)
            .fault_reduce(true)
            .screen(true)
            .opt(OptLevel::Off)
            .task(Task::Sampling { fraction: 0.5 });
        let (a, b) = (campaign.plan().unwrap(), direct.plan().unwrap());
        assert_eq!(CampaignKey::of(&a), CampaignKey::of(&b));
        assert_eq!(a.preset, b.preset, "preset label must survive the wire");
        assert_eq!(a.config.jobs, b.config.jobs);
    }

    #[test]
    fn optional_knobs_default_like_the_builder() {
        let minimal = r#"{
            "schema": "musa.request.v1",
            "task": "mutation-guided",
            "benches": ["b01"]
        }"#;
        let plan = parse_request(minimal).unwrap().plan().unwrap();
        let direct = Campaign::named("b01").task(Task::MutationGuided).plan().unwrap();
        assert_eq!(CampaignKey::of(&plan), CampaignKey::of(&direct));
        assert_eq!(plan.config.seed, musa_core::DEFAULT_SEED);
    }

    #[test]
    fn every_task_slug_parses() {
        for (slug, params) in [
            ("sampling", r#"{ "fraction": 0.5 }"#),
            ("table2", r#"{ "fraction": 0.1 }"#),
            ("operator-profile", r#"{ "operators": ["LOR", "SDL"] }"#),
            ("table1", r#"{}"#),
            ("mutation-guided", r#"{}"#),
            ("sweep-fraction", r#"{ "fractions": [0.1, 0.2] }"#),
            ("coverage-curves", r#"{ "points": 8 }"#),
            ("atpg-topup", r#"{ "backtrack_limit": 50 }"#),
            ("equivalence-ablation", r#"{ "budgets": [100, 200] }"#),
            ("bench", r#"{ "quick": true }"#),
            ("lint", r#"{}"#),
        ] {
            let text = format!(
                r#"{{ "schema": "musa.request.v1", "task": "{slug}", "params": {params}, "benches": ["c17"] }}"#
            );
            let campaign = parse_request(&text)
                .unwrap_or_else(|e| panic!("task {slug} must parse: {e}"));
            assert_eq!(campaign.plan().unwrap().task.slug(), slug);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (text, needle) in [
            ("{ nope", "not valid JSON"),
            (r#"{ "schema": "musa.request.v2" }"#, "unsupported request schema"),
            (r#"{ "schema": "musa.request.v1", "benches": ["c17"] }"#, "no \"task\""),
            (
                r#"{ "schema": "musa.request.v1", "task": "sampling", "params": {}, "benches": ["c17"] }"#,
                "params.fraction",
            ),
            (
                r#"{ "schema": "musa.request.v1", "task": "sampling", "params": { "fraction": 0.5 }, "benches": ["c99"] }"#,
                "unknown benchmark `c99`",
            ),
            (
                r#"{ "schema": "musa.request.v1", "task": "sampling", "params": { "fraction": 0.5 }, "benches": [] }"#,
                "empty",
            ),
            (
                r#"{ "schema": "musa.request.v1", "task": "warp", "benches": ["c17"] }"#,
                "unknown task `warp`",
            ),
            (
                r#"{ "schema": "musa.request.v1", "task": "table1", "params": {}, "benches": ["c17"], "opt": "fast" }"#,
                "\"opt\" must be \"full\" or \"off\"",
            ),
        ] {
            let err = parse_request(text).expect_err(text);
            assert!(err.contains(needle), "error `{err}` must mention `{needle}`");
        }
    }
}
