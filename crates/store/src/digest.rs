//! An in-tree FNV-1a digest for content addressing.
//!
//! The store needs a stable, dependency-free fingerprint of the
//! canonical key material — not cryptographic integrity (blobs are
//! re-validated by schema and task on read, and a corrupt blob is just
//! a miss). Two independent 64-bit FNV-1a passes with different offset
//! bases give a 128-bit address, which makes accidental collisions
//! across a store of any realistic size a non-concern.

/// The standard FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis for the second, independent pass (the standard basis
/// with its halves swapped — any constant different from
/// [`FNV_OFFSET`] decorrelates the two streams).
const FNV_OFFSET_ALT: u64 = 0x8422_2325_cbf2_9ce4;

/// One FNV-1a 64-bit pass over `bytes`, starting from `offset`.
pub fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    let mut hash = offset;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 128-bit hex fingerprint of `bytes`: two independent FNV-1a
/// passes, concatenated as 32 lowercase hex digits.
pub fn digest128_hex(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(bytes, FNV_OFFSET),
        fnv1a64(bytes, FNV_OFFSET_ALT)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // From the reference FNV-1a 64 tables.
        assert_eq!(fnv1a64(b"", FNV_OFFSET), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a", FNV_OFFSET), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar", FNV_OFFSET), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let a = digest128_hex(b"task=sampling");
        assert_eq!(a.len(), 32);
        assert_eq!(a, digest128_hex(b"task=sampling"), "digest must be deterministic");
        assert_ne!(a, digest128_hex(b"task=sampling "), "any byte change must move the digest");
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
