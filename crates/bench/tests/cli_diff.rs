//! CLI diff tests: every experiment binary's default stdout must be
//! **byte-identical** to the pre-campaign-redesign output (the golden
//! files under `tests/golden/` were captured from the pre-redesign
//! binaries), and the `--json` reports must be bit-identical across
//! `--engine scalar|lanes` and every `--jobs` value.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let exe = match bin {
        "table1" => env!("CARGO_BIN_EXE_table1"),
        "table2" => env!("CARGO_BIN_EXE_table2"),
        "sweep_fraction" => env!("CARGO_BIN_EXE_sweep_fraction"),
        "coverage_curves" => env!("CARGO_BIN_EXE_coverage_curves"),
        "atpg_topup" => env!("CARGO_BIN_EXE_atpg_topup"),
        "equivalence_ablation" => env!("CARGO_BIN_EXE_equivalence_ablation"),
        other => panic!("unknown bin {other}"),
    };
    let out = Command::new(exe).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// `--fast --jobs 2` stdout of every binary, against the pre-redesign
/// capture. One test per binary so a drift names its binary.
macro_rules! golden_test {
    ($name:ident, $bin:literal, $file:literal) => {
        #[test]
        fn $name() {
            assert_eq!(
                run($bin, &["--fast", "--jobs", "2"]),
                golden($file),
                concat!($bin, " drifted from the pre-redesign stdout")
            );
        }
    };
}

golden_test!(table1_stdout_is_byte_identical, "table1", "table1_fast.txt");
golden_test!(table2_stdout_is_byte_identical, "table2", "table2_fast.txt");
golden_test!(
    sweep_fraction_stdout_is_byte_identical,
    "sweep_fraction",
    "sweep_fraction_fast.txt"
);
golden_test!(
    coverage_curves_stdout_is_byte_identical,
    "coverage_curves",
    "coverage_curves_fast.txt"
);
golden_test!(atpg_topup_stdout_is_byte_identical, "atpg_topup", "atpg_topup_fast.txt");
golden_test!(
    equivalence_ablation_stdout_is_byte_identical,
    "equivalence_ablation",
    "equivalence_ablation_fast.txt"
);

/// Drops the per-run metadata (`wall_ms`) and the knobs under test
/// (`engine`, `jobs`) — everything else must be bit-identical.
fn normalize_json(text: String) -> String {
    text.lines()
        .filter(|l| {
            !l.contains("\"wall_ms\":")
                && !l.contains("\"engine\":")
                && !l.contains("\"jobs\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn coverage_curves_json_is_identical_across_engines_and_jobs() {
    let base = normalize_json(run(
        "coverage_curves",
        &["--fast", "--seed", "9", "--jobs", "1", "--engine", "scalar", "--json"],
    ));
    assert!(base.contains("\"schema\": \"musa.campaign.v1\""), "{base}");
    assert!(base.contains("\"task\": \"coverage-curves\""), "{base}");
    for (jobs, engine) in [("2", "scalar"), ("1", "lanes"), ("2", "lanes")] {
        let other = normalize_json(run(
            "coverage_curves",
            &["--fast", "--seed", "9", "--jobs", jobs, "--engine", engine, "--json"],
        ));
        assert_eq!(base, other, "jobs={jobs} engine={engine}");
    }
}

#[test]
fn equivalence_ablation_json_is_identical_across_engines() {
    let scalar = normalize_json(run(
        "equivalence_ablation",
        &["--fast", "--seed", "9", "--engine", "scalar", "--json"],
    ));
    let lanes = normalize_json(run(
        "equivalence_ablation",
        &["--fast", "--seed", "9", "--engine", "lanes", "--jobs", "2", "--json"],
    ));
    assert_eq!(scalar, lanes);
}

#[test]
fn help_exits_zero_and_names_the_shared_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--fast", "--paper", "--seed", "--jobs", "--engine", "--json"] {
        assert!(stdout.contains(flag), "--help output lacks {flag}");
    }
}

#[test]
fn conflicting_presets_exit_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_atpg_topup"))
        .args(["--fast", "--paper"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("conflicting presets"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
