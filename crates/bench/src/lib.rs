//! # musa-bench — harness regenerating the paper's evaluation
//!
//! Binaries (run with `--release`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — operator fault-coverage efficiency |
//! | `table2` | Table 2 — test-oriented vs random 10 % sampling |
//! | `sweep_fraction` | E1 — sampling-fraction sweep |
//! | `coverage_curves` | E2 — MFC/RFC curves |
//! | `atpg_topup` | E3 — ATPG effort with/without validation reuse |
//! | `equivalence_ablation` | E4 — MS vs equivalence budget |
//!
//! Every binary is a one-line wrapper over the shared [`cli`] layer:
//! arguments (`--fast`, `--paper`, `--seed N`, `--jobs N`,
//! `--engine E`, `--json`, `--help`) parse in one place, the run
//! routes through [`musa_core::Campaign`], and the default stdout is
//! byte-identical to the pre-redesign binaries (pinned by the diff
//! tests in `tests/cli_diff.rs`). `--json` emits the typed
//! [`musa_core::Report`] instead. Criterion micro-benchmarks live
//! under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod service;

pub use cli::{
    drive, run_trajectory, BenchCommand, Bin, CliOptions, SampleArgs, TrajectoryArgs,
    BENCH_USAGE,
};
pub use service::{
    run_campaign, run_client, run_serve, run_worker, CampaignArgs, ClientArgs, ServeArgs,
    ServiceError, CAMPAIGN_USAGE, CLIENT_USAGE, SERVE_USAGE,
};
pub use musa_core::paper;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_consistent_products() {
        // Sanity: NLFCE ≈ ΔFC% × ΔL% for every Table 1 row (the paper
        // rounds to 3 significant figures).
        for &(circuit, op, dfc, dl, nlfce) in paper::TABLE1 {
            let product = dfc * dl;
            let tolerance = nlfce.abs() * 0.02 + 0.5;
            assert!(
                (product - nlfce).abs() < tolerance,
                "{circuit}/{op}: {dfc}×{dl}={product} vs {nlfce}"
            );
        }
    }

    #[test]
    fn paper_table2_test_oriented_always_wins() {
        for &(circuit, to_ms, to_nlfce, rs_ms, rs_nlfce) in paper::TABLE2 {
            assert!(to_ms > rs_ms, "{circuit} MS");
            assert!(to_nlfce > rs_nlfce, "{circuit} NLFCE");
        }
    }
}
