//! # musa-bench — harness regenerating the paper's evaluation
//!
//! Binaries (run with `--release`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — operator fault-coverage efficiency |
//! | `table2` | Table 2 — test-oriented vs random 10 % sampling |
//! | `sweep_fraction` | E1 — sampling-fraction sweep |
//! | `coverage_curves` | E2 — MFC/RFC curves |
//! | `atpg_topup` | E3 — ATPG effort with/without validation reuse |
//! | `equivalence_ablation` | E4 — MS vs equivalence budget |
//!
//! Every binary accepts `--fast` to run a scaled-down configuration
//! (seconds instead of minutes), `--seed N` to change the master seed,
//! `--jobs N` to bound the worker-thread count (default: one per
//! available CPU; results are bit-identical for every value) and
//! `--help`. Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use musa_core::ExperimentConfig;
use musa_mutation::Engine;

/// Paper-reported values, for side-by-side printing.
pub mod paper {
    /// Table 1 rows as printed in the paper:
    /// `(circuit, operator, ΔFC%, ΔL%, NLFCE)`.
    pub const TABLE1: &[(&str, &str, f64, f64, f64)] = &[
        ("b01", "LOR", 0.66, 10.84, 7.16),
        ("b01", "VR", 1.36, 17.43, 23.7),
        ("b01", "CVR", 1.72, 18.81, 32.3),
        ("b01", "CR", 2.32, 37.60, 87.3),
        ("b03", "VR", 4.10, 28.39, 116.0),
        ("b03", "CVR", 8.08, 55.29, 447.0),
        ("b03", "CR", 9.57, 49.89, 477.0),
        ("c432", "LOR", 4.14, 32.35, 134.0),
        ("c432", "VR", 9.40, 56.62, 532.0),
        ("c432", "CVR", 11.67, 81.86, 955.0),
        ("c499", "LOR", 4.72, 64.26, 303.0),
        ("c499", "VR", 6.18, 73.10, 452.0),
        ("c499", "CVR", 4.53, 84.96, 385.0),
    ];

    /// Table 2 rows: `(circuit, TO MS%, TO NLFCE, RS MS%, RS NLFCE)`.
    pub const TABLE2: &[(&str, f64, f64, f64, f64)] = &[
        ("b01", 85.98, 340.0, 83.71, 278.0),
        ("b03", 64.16, 1089.0, 62.22, 712.0),
        ("c432", 88.18, 708.0, 85.62, 419.0),
        ("c499", 94.75, 518.0, 90.32, 500.0),
    ];
}

/// Command-line options shared by every bench binary.
#[derive(Debug, Clone, Copy)]
pub struct CliOptions {
    /// Use the scaled-down configuration.
    pub fast: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub jobs: usize,
    /// Mutant-execution engine (`scalar` or `lanes`).
    pub engine: Engine,
}

impl CliOptions {
    /// The usage text every bench binary prints for `--help`.
    pub const USAGE: &'static str = "\
options (shared by every musa_bench experiment binary):
  --fast      scaled-down configuration: seconds instead of minutes
  --seed N    master seed (default 0xDA7E2005); every stage derives
              its own sub-seeds from it
  --jobs N    worker threads (default: one per available CPU);
              results are bit-identical for every value, so this is
              purely a wall-clock knob
  --engine E  mutant-execution engine: `scalar` (one Simulator pass
              per mutant) or `lanes` (63 mutants + the reference
              machine per pass); outcomes are bit-identical, and
              lanes compose multiplicatively with --jobs
  --help      print this text";

    /// Parses `--fast`, `--seed N`, `--jobs N` and `--engine E` from
    /// `std::env::args`; `--help` prints [`CliOptions::USAGE`] and
    /// exits 0. A missing or unparsable `--seed`/`--jobs`/`--engine`
    /// value exits 2 rather than silently running with the default.
    pub fn from_args() -> Self {
        let mut fast = false;
        let mut seed = 0xDA7E_2005u64;
        let mut jobs = 0usize;
        let mut engine = Engine::Scalar;
        let args: Vec<String> = std::env::args().collect();
        let value = |i: usize, flag: &str| -> u64 {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} expects an integer value");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            })
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--fast" => fast = true,
                "--seed" => {
                    seed = value(i, "--seed");
                    i += 1;
                }
                "--jobs" => {
                    jobs = value(i, "--jobs") as usize;
                    i += 1;
                }
                "--engine" => {
                    engine = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--engine expects `scalar` or `lanes`");
                            eprintln!("{}", Self::USAGE);
                            std::process::exit(2);
                        });
                    i += 1;
                }
                "--help" | "-h" => {
                    println!("{}", Self::USAGE);
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        Self { fast, seed, jobs, engine }
    }

    /// The experiment configuration these options select.
    pub fn config(&self) -> ExperimentConfig {
        let config = if self.fast {
            ExperimentConfig::fast(self.seed)
        } else {
            ExperimentConfig::paper(self.seed)
        };
        config.with_jobs(self.jobs).with_engine(self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_consistent_products() {
        // Sanity: NLFCE ≈ ΔFC% × ΔL% for every Table 1 row (the paper
        // rounds to 3 significant figures).
        for &(circuit, op, dfc, dl, nlfce) in paper::TABLE1 {
            let product = dfc * dl;
            let tolerance = nlfce.abs() * 0.02 + 0.5;
            assert!(
                (product - nlfce).abs() < tolerance,
                "{circuit}/{op}: {dfc}×{dl}={product} vs {nlfce}"
            );
        }
    }

    #[test]
    fn paper_table2_test_oriented_always_wins() {
        for &(circuit, to_ms, to_nlfce, rs_ms, rs_nlfce) in paper::TABLE2 {
            assert!(to_ms > rs_ms, "{circuit} MS");
            assert!(to_nlfce > rs_nlfce, "{circuit} NLFCE");
        }
    }

    #[test]
    fn default_options() {
        let opts = CliOptions {
            fast: true,
            seed: 42,
            jobs: 0,
            engine: Engine::Scalar,
        };
        let cfg = opts.config();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.jobs, 0, "0 = one worker per available CPU");
    }

    #[test]
    fn jobs_option_reaches_the_config() {
        let opts = CliOptions {
            fast: false,
            seed: 1,
            jobs: 3,
            engine: Engine::Scalar,
        };
        assert_eq!(opts.config().jobs, 3);
    }

    #[test]
    fn engine_option_reaches_the_config_and_generation() {
        let opts = CliOptions {
            fast: true,
            seed: 1,
            jobs: 0,
            engine: Engine::Lanes,
        };
        let cfg = opts.config();
        assert_eq!(cfg.engine, Engine::Lanes);
        assert_eq!(cfg.mg.engine, Engine::Lanes);
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in ["--fast", "--seed", "--jobs", "--engine", "--help"] {
            assert!(CliOptions::USAGE.contains(flag), "usage lacks {flag}");
        }
    }
}
