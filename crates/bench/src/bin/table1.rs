//! Regenerates **Table 1** — mutation-operator fault-coverage efficiency.
//!
//! ```text
//! cargo run --release -p musa_bench --bin table1 \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::Table1);
}
