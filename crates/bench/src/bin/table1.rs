//! Regenerates **Table 1** — mutation-operator fault-coverage efficiency.
//!
//! ```text
//! cargo run --release -p musa_bench --bin table1 [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::{paper, CliOptions};
use musa_circuits::Benchmark;
use musa_core::Table1;
use musa_mutation::MutationOperator;

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    println!("Table 1: Operator Fault Coverage Efficiency");
    println!(
        "(config: {} preset, seed {:#x})\n",
        if opts.fast { "fast" } else { "paper" },
        opts.seed
    );

    let table = Table1::measure(
        &Benchmark::paper_set(),
        &MutationOperator::paper_set(),
        &config,
    )
    .unwrap_or_else(|e| {
        eprintln!("table1 failed: {e}");
        std::process::exit(1);
    });
    println!("{}", table.render());

    println!("Paper-reported values for comparison:");
    println!("Circuit  Operator   dFC%    dL%  NLFCE");
    println!("---------------------------------------");
    for &(circuit, op, dfc, dl, nlfce) in paper::TABLE1 {
        println!("{circuit:<8} {op:<8} {dfc:>6.2} {dl:>6.2} {nlfce:>+6.0}");
    }

    // Shape summary: is LOR the least efficient operator per circuit?
    println!("\nShape check (measured):");
    for profile_circuit in table.rows.iter().map(|r| r.circuit.clone()).collect::<std::collections::BTreeSet<_>>() {
        let mut rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r.circuit == profile_circuit)
            .collect();
        rows.sort_by(|a, b| a.nlfce.partial_cmp(&b.nlfce).unwrap());
        let order: Vec<&str> = rows.iter().map(|r| r.operator.acronym()).collect();
        println!("  {profile_circuit}: NLFCE order (worst -> best): {}", order.join(" < "));
    }
}
