//! E2 — the MFC/RFC coverage-versus-length curves behind ΔFC%/ΔL%.
//!
//! ```text
//! cargo run --release -p musa_bench --bin coverage_curves \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::CoverageCurves);
}
