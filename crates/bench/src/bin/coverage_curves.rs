//! E2 — the MFC/RFC coverage-versus-length curves behind ΔFC%/ΔL%.
//!
//! ```text
//! cargo run --release -p musa_bench --bin coverage_curves [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::CliOptions;
use musa_circuits::Benchmark;
use musa_core::coverage_curves;

fn ascii_plot(series: &[(usize, f64)], width: usize) -> String {
    let mut out = String::new();
    for &(len, cov) in series {
        let bar = (cov * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:>6} | {}{} {:.1}%\n",
            len,
            "#".repeat(bar),
            " ".repeat(width.saturating_sub(bar)),
            100.0 * cov
        ));
    }
    out
}

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    let benchmarks = if opts.fast {
        vec![Benchmark::C17, Benchmark::B01]
    } else {
        Benchmark::paper_set().to_vec()
    };

    println!("E2: Coverage-vs-length curves (seed {:#x})\n", opts.seed);
    for bench in benchmarks {
        let pair = coverage_curves(bench, 12, &config).unwrap_or_else(|e| {
            eprintln!("curves failed on {bench}: {e}");
            std::process::exit(1);
        });
        println!("{} — mutation data (MFC):", pair.circuit);
        print!("{}", ascii_plot(&pair.mutation, 40));
        println!("{} — pseudo-random baseline (RFC):", pair.circuit);
        print!("{}", ascii_plot(&pair.random, 40));
        println!();
    }
}
