//! E4 — equivalence-budget ablation: how the presumption budget shifts
//! the Mutation Score.
//!
//! ```text
//! cargo run --release -p musa_bench --bin equivalence_ablation \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::EquivalenceAblation);
}
