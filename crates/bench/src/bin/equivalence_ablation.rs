//! E4 — equivalence-budget ablation: how the presumption budget shifts
//! the Mutation Score.
//!
//! ```text
//! cargo run --release -p musa_bench --bin equivalence_ablation [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::CliOptions;
use musa_circuits::Benchmark;
use musa_core::equivalence_ablation;
use musa_metrics::{f2, Align, Table};

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    let budgets: Vec<usize> = if opts.fast {
        vec![50, 200, 1_000]
    } else {
        vec![100, 500, 2_000, 10_000, 50_000]
    };
    let benchmarks = if opts.fast {
        vec![Benchmark::C17]
    } else {
        Benchmark::paper_set().to_vec()
    };

    println!("E4: Equivalence-budget ablation (seed {:#x})\n", opts.seed);
    for bench in benchmarks {
        let points = equivalence_ablation(bench, &budgets, &config).unwrap_or_else(|e| {
            eprintln!("ablation failed on {bench}: {e}");
            std::process::exit(1);
        });
        let mut table = Table::new(vec![
            ("Budget", Align::Right),
            ("Equivalent", Align::Right),
            ("MS%", Align::Right),
        ]);
        for p in &points {
            table.row(vec![
                p.budget.to_string(),
                p.equivalent.to_string(),
                f2(p.score.percent()),
            ]);
        }
        println!("{bench}:\n{}", table.render());
    }
}
