//! Regenerates **Table 2** — test-oriented versus random 10 % mutant
//! sampling.
//!
//! ```text
//! cargo run --release -p musa_bench --bin table2 \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::Table2);
}
