//! Regenerates **Table 2** — test-oriented versus random 10 % mutant
//! sampling.
//!
//! ```text
//! cargo run --release -p musa_bench --bin table2 [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::{paper, CliOptions};
use musa_circuits::Benchmark;
use musa_core::Table2;

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    println!("Table 2: Test-Oriented Sampling vs Random Mutant Sampling (10%)");
    println!(
        "(config: {} preset, seed {:#x})\n",
        if opts.fast { "fast" } else { "paper" },
        opts.seed
    );

    let table = Table2::measure(&Benchmark::paper_set(), 0.10, &config).unwrap_or_else(|e| {
        eprintln!("table2 failed: {e}");
        std::process::exit(1);
    });
    println!("{}", table.render());

    println!("Paper-reported values for comparison:");
    println!("Circuit  TO MS%  TO NLFCE  RS MS%  RS NLFCE");
    println!("--------------------------------------------");
    for &(circuit, to_ms, to_nlfce, rs_ms, rs_nlfce) in paper::TABLE2 {
        println!("{circuit:<8} {to_ms:>6.2} {to_nlfce:>+9.0} {rs_ms:>6.2} {rs_nlfce:>+9.0}");
    }

    println!("\nShape check (measured): test-oriented wins on");
    for row in &table.rows {
        let ms_win = row.test_oriented.mutation_score_pct >= row.random.mutation_score_pct;
        let nlfce_win = row.test_oriented.nlfce >= row.random.nlfce;
        println!(
            "  {}: MS {}  NLFCE {}",
            row.circuit,
            if ms_win { "yes" } else { "NO" },
            if nlfce_win { "yes" } else { "NO" },
        );
    }
}
