//! E1 — sampling-fraction sweep: MS and NLFCE of both strategies as the
//! sample fraction grows.
//!
//! ```text
//! cargo run --release -p musa_bench --bin sweep_fraction \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::SweepFraction);
}
