//! E1 — sampling-fraction sweep: MS and NLFCE of both strategies as the
//! sample fraction grows.
//!
//! ```text
//! cargo run --release -p musa_bench --bin sweep_fraction [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::CliOptions;
use musa_circuits::Benchmark;
use musa_core::sweep_fractions;
use musa_metrics::{f2, signed0, Align, Table};

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    let fractions = [0.05, 0.10, 0.20, 0.50, 1.00];
    let benchmarks = if opts.fast {
        vec![Benchmark::B01, Benchmark::C17]
    } else {
        Benchmark::paper_set().to_vec()
    };

    println!("E1: Sampling-fraction sweep (seed {:#x})\n", opts.seed);
    for bench in benchmarks {
        let points = sweep_fractions(bench, &fractions, &config).unwrap_or_else(|e| {
            eprintln!("sweep failed on {bench}: {e}");
            std::process::exit(1);
        });
        let mut table = Table::new(vec![
            ("Fraction", Align::Right),
            ("Mutants", Align::Right),
            ("TO MS%", Align::Right),
            ("TO NLFCE", Align::Right),
            ("RS MS%", Align::Right),
            ("RS NLFCE", Align::Right),
        ]);
        for p in &points {
            table.row(vec![
                format!("{:.0}%", p.fraction * 100.0),
                p.test_oriented.sampled.to_string(),
                f2(p.test_oriented.mutation_score_pct),
                signed0(p.test_oriented.nlfce),
                f2(p.random.mutation_score_pct),
                signed0(p.random.nlfce),
            ]);
        }
        println!("{bench}:\n{}", table.render());
    }
}
