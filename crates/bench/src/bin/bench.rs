//! `bench` — the benchmark-trajectory front end as a standalone binary
//! (run with `--release`; the same driver `musa bench` routes through).
//!
//! Runs the fixed grid of timed workloads, prints the `musa.bench.v1`
//! report, and optionally gates against a committed `BENCH_<n>.json`:
//!
//! ```text
//! bench [--quick] [--json] [--filter <bench>] [--baseline <file>]
//!       [--write] [--seed N]
//! ```

use musa_bench::cli::{run_trajectory, BenchCommand, BENCH_USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match BenchCommand::parse(&args) {
        Ok(BenchCommand::Trajectory(trajectory)) => {
            ExitCode::from(run_trajectory(&trajectory))
        }
        // The standalone binary has no legacy stats mode — a bare
        // positional is a usage error here, unlike `musa bench <name>`.
        Ok(BenchCommand::Legacy(name)) => {
            eprintln!(
                "error: unknown argument `{name}` (per-benchmark stats live in \
                 `musa bench {name}`; this binary only runs the trajectory)"
            );
            eprintln!("{BENCH_USAGE}");
            ExitCode::from(2)
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{BENCH_USAGE}");
            ExitCode::from(2)
        }
    }
}
