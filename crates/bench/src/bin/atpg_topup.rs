//! E3 — ATPG top-up: deterministic test-generation effort with and
//! without re-used validation data (the paper's §1 motivation).
//!
//! ```text
//! cargo run --release -p musa_bench --bin atpg_topup [--fast] [--seed N] [--jobs N]
//! ```

use musa_bench::CliOptions;
use musa_circuits::Benchmark;
use musa_core::atpg_topup;
use musa_metrics::{pct, Align, Table};

fn main() {
    let opts = CliOptions::from_args();
    let config = opts.config();
    // E3 targets the paper's combinational circuits.
    let benchmarks = if opts.fast {
        vec![Benchmark::C17]
    } else {
        vec![Benchmark::C17, Benchmark::C432, Benchmark::C499]
    };
    let backtrack_limit = 50_000;

    println!(
        "E3: ATPG top-up after validation-data reuse (seed {:#x})\n",
        opts.seed
    );
    for bench in benchmarks {
        let outcomes = atpg_topup(bench, backtrack_limit, &config).unwrap_or_else(|e| {
            eprintln!("atpg_topup failed on {bench}: {e}");
            std::process::exit(1);
        });
        let mut table = Table::new(vec![
            ("Initial data", Align::Left),
            ("Init vecs", Align::Right),
            ("ATPG targets", Align::Right),
            ("Backtracks", Align::Right),
            ("ATPG vecs", Align::Right),
            ("Untestable", Align::Right),
            ("Aborted", Align::Right),
            ("Final FC%", Align::Right),
        ]);
        for o in &outcomes {
            table.row(vec![
                o.mode.label().to_string(),
                o.initial_vectors.to_string(),
                o.atpg_targets.to_string(),
                o.backtracks.to_string(),
                o.atpg_vectors.to_string(),
                o.untestable.to_string(),
                o.aborted.to_string(),
                pct(o.final_coverage),
            ]);
        }
        println!("{bench}:\n{}", table.render());
    }
}
