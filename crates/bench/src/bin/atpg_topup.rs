//! E3 — ATPG top-up: deterministic test-generation effort with and
//! without re-used validation data (the paper's §1 motivation).
//!
//! ```text
//! cargo run --release -p musa_bench --bin atpg_topup \
//!     [--fast] [--seed N] [--jobs N] [--engine scalar|lanes] [--json]
//! ```

fn main() {
    musa_bench::drive(musa_bench::Bin::AtpgTopup);
}
