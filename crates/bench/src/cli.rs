//! The shared argument layer every `musa` CLI front end routes through.
//!
//! Before the campaign redesign, the six experiment binaries and
//! `musa sample` each hand-rolled their own `--seed/--jobs/--engine/…`
//! parsing and stdout formatting. This module parses the shared flag
//! set **once** ([`parse_tokens`] behind [`CliOptions::from_args`] and
//! [`SampleArgs::parse`]) and drives the whole run through
//! [`musa_core::Campaign`] ([`drive`]), so a binary's `main` is one
//! line. Default (non-`--json`) stdout is byte-identical to the
//! pre-redesign binaries — pinned by the CLI diff tests in
//! `tests/cli_diff.rs`.

use musa_circuits::Benchmark;
use musa_core::{
    bench_history_json, chrome_json, compare, next_bench_path, render_bench_history,
    render_profile, trace_json, BenchReport, Campaign, CampaignError, ComparePolicy,
    ExperimentConfig, Report, ReportData, Task, DEFAULT_BENCHES, DEFAULT_SEED,
};
use musa_mutation::{Engine, MutationOperator, OptLevel};

/// Soft parse failures; each front end maps them to its legacy
/// wording and exit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--seed` had a missing or unparsable value.
    SeedValue,
    /// `--jobs` had a missing or unparsable value.
    JobsValue,
    /// `--engine` had no value.
    EngineMissing,
    /// `--engine` had an unrecognized value; carries the
    /// [`Engine`] parse message.
    EngineInvalid(String),
    /// `--fault-reduce` had a missing or unrecognized value (expected
    /// `on` or `off`).
    FaultReduceValue,
    /// `--screen` had a missing or unrecognized value (expected
    /// `static` or `off`).
    ScreenValue,
    /// `--opt` had a missing or unrecognized value (expected `full`
    /// or `off`).
    OptValue,
    /// `--trace` had a missing value (a file path).
    TraceValue,
    /// `--trace-format` had a missing or unrecognized value (expected
    /// `json` or `chrome`).
    TraceFormatValue,
    /// An unrecognized `--flag` (strict front ends only).
    UnknownFlag(String),
    /// More positional arguments than the front end accepts.
    TooManyPositionals,
}

/// On-disk format for `--trace <file>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// The `musa.trace.v1` document (round-trips through
    /// `musa_core::json`).
    #[default]
    Json,
    /// Chrome `trace_event` format, loadable in Perfetto /
    /// `chrome://tracing`.
    Chrome,
}

/// The observability flag set shared by every front end:
/// `--trace <file>`, `--trace-format json|chrome`, `--profile`,
/// `--progress`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceOpts {
    /// `--trace <file>`: write the collected trace here after the run.
    pub trace: Option<String>,
    /// `--trace-format`: the file format for `--trace`.
    pub format: TraceFormat,
    /// `--profile`: print the per-phase breakdown after the run.
    pub profile: bool,
    /// `--progress`: coarse stderr progress lines while running.
    pub progress: bool,
}

impl TraceOpts {
    /// Whether the campaign needs a live tracer (a trace file or the
    /// profile table was requested). When `false` the campaign runs
    /// with the no-op sink and every output stays bit-identical.
    pub fn wants_trace(&self) -> bool {
        self.trace.is_some() || self.profile
    }
}

/// Finishes a run's observability outputs: writes the `--trace` file
/// (in the selected format) and prints the `--profile` table — to
/// stdout normally, to stderr when stdout carries a `--json` document.
///
/// # Errors
///
/// Returns a message when the trace file cannot be written.
pub fn emit_observability(
    report: &Report,
    opts: &TraceOpts,
    json_stdout: bool,
) -> Result<(), String> {
    if let Some(path) = &opts.trace {
        let document = match opts.format {
            TraceFormat::Json => trace_json(report),
            TraceFormat::Chrome => chrome_json(report),
        }
        .expect("wants_trace() enabled the campaign tracer");
        std::fs::write(path, format!("{document}\n"))
            .map_err(|e| format!("--trace {path}: {e}"))?;
    }
    if opts.profile {
        let table = render_profile(report).expect("wants_trace() enabled the campaign tracer");
        if json_stdout {
            eprint!("{table}");
        } else {
            print!("{table}");
        }
    }
    Ok(())
}

/// The flag set shared by every front end, as parsed.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// `--fast` seen.
    pub fast: bool,
    /// `--paper` seen.
    pub paper: bool,
    /// `--json` seen.
    pub json: bool,
    /// `--help`/`-h` seen (lenient front ends only).
    pub help: bool,
    /// `--seed N`.
    pub seed: Option<u64>,
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--engine E`.
    pub engine: Option<Engine>,
    /// `--fault-reduce on|off`.
    pub fault_reduce: Option<bool>,
    /// `--screen static|off`.
    pub screen: Option<bool>,
    /// `--opt full|off`.
    pub opt: Option<OptLevel>,
    /// `--trace`, `--trace-format`, `--profile`, `--progress`.
    pub trace: TraceOpts,
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
}

/// Parses the shared flag set from raw arguments.
///
/// `lenient` selects the experiment binaries' contract: unknown
/// arguments are ignored with a stderr warning and `--help`/`-h` is
/// recognized. Strict mode (the `musa sample` contract) rejects
/// unknown `--flags` and caps positionals at `max_positionals`.
///
/// # Errors
///
/// Returns the [`CliError`] describing the first offending argument.
pub fn parse_tokens(
    args: &[String],
    max_positionals: usize,
    lenient: bool,
) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => parsed.fast = true,
            "--paper" => parsed.paper = true,
            "--json" => parsed.json = true,
            "--seed" => {
                parsed.seed = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or(CliError::SeedValue)?,
                );
                i += 1;
            }
            "--jobs" => {
                parsed.jobs = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or(CliError::JobsValue)?,
                );
                i += 1;
            }
            "--engine" => {
                let raw = args.get(i + 1).ok_or(CliError::EngineMissing)?;
                parsed.engine =
                    Some(raw.parse().map_err(CliError::EngineInvalid)?);
                i += 1;
            }
            "--fault-reduce" => {
                parsed.fault_reduce = Some(match args.get(i + 1).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err(CliError::FaultReduceValue),
                });
                i += 1;
            }
            "--screen" => {
                parsed.screen = Some(match args.get(i + 1).map(String::as_str) {
                    Some("static") => true,
                    Some("off") => false,
                    _ => return Err(CliError::ScreenValue),
                });
                i += 1;
            }
            "--opt" => {
                parsed.opt = Some(match args.get(i + 1).map(String::as_str) {
                    Some("full") => OptLevel::Full,
                    Some("off") => OptLevel::Off,
                    _ => return Err(CliError::OptValue),
                });
                i += 1;
            }
            "--trace" => {
                parsed.trace.trace = Some(
                    args.get(i + 1)
                        .filter(|v| !v.starts_with('-'))
                        .ok_or(CliError::TraceValue)?
                        .clone(),
                );
                i += 1;
            }
            "--trace-format" => {
                parsed.trace.format = match args.get(i + 1).map(String::as_str) {
                    Some("json") => TraceFormat::Json,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => return Err(CliError::TraceFormatValue),
                };
                i += 1;
            }
            "--profile" => parsed.trace.profile = true,
            "--progress" => parsed.trace.progress = true,
            // Help short-circuits, exactly like the pre-redesign loop:
            // anything after it — including malformed values — is
            // never parsed.
            "--help" | "-h" if lenient => {
                parsed.help = true;
                return Ok(parsed);
            }
            other if lenient => eprintln!("ignoring unknown argument `{other}`"),
            flag if flag.starts_with("--") => {
                return Err(CliError::UnknownFlag(flag.to_string()));
            }
            positional => {
                if parsed.positionals.len() >= max_positionals {
                    return Err(CliError::TooManyPositionals);
                }
                parsed.positionals.push(positional.to_string());
            }
        }
        i += 1;
    }
    Ok(parsed)
}

/// Command-line options shared by every bench binary.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Use the scaled-down configuration.
    pub fast: bool,
    /// `--paper` was passed explicitly (the default preset anyway;
    /// passing it *and* `--fast` is a campaign validation error).
    pub paper: bool,
    /// Emit the campaign report as JSON instead of text.
    pub json: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub jobs: usize,
    /// Mutant-execution engine (`scalar` or `lanes`).
    pub engine: Engine,
    /// Dominance fault-list reduction for the mutation-data fault
    /// simulation (`--fault-reduce on|off`, default on). Reported
    /// numbers are identical either way; only lane occupancy changes.
    pub fault_reduce: bool,
    /// Static equivalent-mutant pre-screening (`--screen static|off`,
    /// default on). Reported numbers are identical either way; only
    /// the `screened` count in the JSON report changes.
    pub screen: bool,
    /// Lane-tape optimizer level (`--opt full|off`, default full).
    /// Both levels are bit-identical in every reported number; `off`
    /// exists as the benchmark/debug baseline.
    pub opt: OptLevel,
    /// Observability flags (`--trace`, `--trace-format`, `--profile`,
    /// `--progress`). All off by default; every report output stays
    /// bit-identical when they are.
    pub trace: TraceOpts,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            fast: false,
            paper: false,
            json: false,
            seed: DEFAULT_SEED,
            jobs: 0,
            engine: Engine::default(),
            fault_reduce: true,
            screen: true,
            opt: OptLevel::default(),
            trace: TraceOpts::default(),
        }
    }
}

impl CliOptions {
    /// The usage text every bench binary prints for `--help`.
    pub const USAGE: &'static str = "\
options (shared by every musa_bench experiment binary):
  --fast      scaled-down configuration: seconds instead of minutes
  --paper     paper-scale configuration (the default; conflicts with
              --fast)
  --seed N    master seed (default 0xDA7E2005); every stage derives
              its own sub-seeds from it
  --jobs N    worker threads (default: one per available CPU);
              results are bit-identical for every value, so this is
              purely a wall-clock knob
  --engine E  mutant-execution engine: `scalar` (one Simulator pass
              per mutant) or `lanes` (63 mutants + the reference
              machine per pass); outcomes are bit-identical, and
              lanes compose multiplicatively with --jobs
  --fault-reduce on|off
              dominance fault-list reduction for the mutation-data
              fault simulation (default on); reported numbers are
              bit-identical either way, only representatives (and
              residuals) occupy simulation lanes
  --screen static|off
              static equivalent-mutant pre-screening (default on);
              statically proven-equivalent mutants skip simulation and
              fold into the E term directly — reported numbers are
              bit-identical either way
  --opt full|off
              lane-tape optimizer level (default full): `full` runs the
              compile → optimize → execute pipeline (const folding,
              copy/select propagation, CSE, DCE, superinstruction
              fusion); `off` interprets the raw tapes — outcomes are
              bit-identical, only wall time changes
  --json      emit the typed campaign report as JSON (stable
              `musa.campaign.v1` schema) instead of text
  --trace FILE
              write the collected spans + counters to FILE after the
              run (`musa.trace.v1` by default); the report itself stays
              bit-identical to an untraced run
  --trace-format json|chrome
              trace file format: `json` (musa.trace.v1, round-trips
              through the musa_core parser) or `chrome` (trace_event,
              open in Perfetto / chrome://tracing)
  --profile   print a per-phase wall/count breakdown after the run
              (stderr when stdout carries the --json document)
  --progress  coarse progress lines on stderr while the run advances
              (bench / repetition / lane-group granularity)
  --help      print this text";

    /// Parses `--fast`, `--paper`, `--json`, `--seed N`, `--jobs N`
    /// and `--engine E` from `std::env::args`; `--help` prints
    /// [`CliOptions::USAGE`] and exits 0. A missing or unparsable
    /// `--seed`/`--jobs`/`--engine` value exits 2 rather than silently
    /// running with the default; unknown arguments are ignored with a
    /// warning.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match parse_tokens(&args, 0, true) {
            Ok(parsed) if parsed.help => {
                println!("{}", Self::USAGE);
                std::process::exit(0);
            }
            Ok(parsed) => Self {
                fast: parsed.fast,
                paper: parsed.paper,
                json: parsed.json,
                seed: parsed.seed.unwrap_or(DEFAULT_SEED),
                jobs: parsed.jobs.unwrap_or(0),
                engine: parsed.engine.unwrap_or_default(),
                fault_reduce: parsed.fault_reduce.unwrap_or(true),
                screen: parsed.screen.unwrap_or(true),
                opt: parsed.opt.unwrap_or_default(),
                trace: parsed.trace,
            },
            Err(e) => {
                let message = match e {
                    CliError::SeedValue => "--seed expects an integer value",
                    CliError::JobsValue => "--jobs expects an integer value",
                    CliError::EngineMissing | CliError::EngineInvalid(_) => {
                        "--engine expects `scalar` or `lanes`"
                    }
                    CliError::FaultReduceValue => "--fault-reduce expects `on` or `off`",
                    CliError::ScreenValue => "--screen expects `static` or `off`",
                    CliError::OptValue => "--opt expects `full` or `off`",
                    CliError::TraceValue => "--trace expects a file path",
                    CliError::TraceFormatValue => "--trace-format expects `json` or `chrome`",
                    // Lenient parsing ignores unknown arguments.
                    CliError::UnknownFlag(_) | CliError::TooManyPositionals => {
                        unreachable!("lenient mode ignores unknown arguments")
                    }
                };
                eprintln!("{message}");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// The experiment configuration these options select (kept for
    /// callers that drive `musa_core` directly rather than through
    /// [`drive`]).
    pub fn config(&self) -> ExperimentConfig {
        let config = if self.fast {
            ExperimentConfig::fast(self.seed)
        } else {
            ExperimentConfig::paper(self.seed)
        };
        config
            .with_jobs(self.jobs)
            .with_engine(self.engine)
            .with_fault_reduce(self.fault_reduce)
            .with_screen(self.screen)
            .with_opt(self.opt)
    }
}

/// `musa sample` arguments (strict front end: positionals plus the
/// shared flags; unknown flags are errors).
#[derive(Debug, Clone)]
pub struct SampleArgs {
    /// Benchmark name.
    pub name: String,
    /// Sampling fraction (default 10 %).
    pub fraction: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`0` = auto).
    pub jobs: usize,
    /// Mutant-execution engine.
    pub engine: Engine,
    /// Dominance fault-list reduction (default on).
    pub fault_reduce: bool,
    /// Static equivalent-mutant pre-screening (default on).
    pub screen: bool,
    /// Lane-tape optimizer level (default full).
    pub opt: OptLevel,
    /// `--paper` preset requested (default: fast).
    pub paper: bool,
    /// `--fast` passed explicitly.
    pub fast: bool,
    /// Emit JSON.
    pub json: bool,
    /// Observability flags (`--trace`, `--trace-format`, `--profile`,
    /// `--progress`).
    pub trace: TraceOpts,
    /// `--store DIR`: run through the content-addressed result store.
    pub store: Option<String>,
}

/// The `musa sample` usage line.
pub const SAMPLE_USAGE: &str = "expected <name> [fraction] [--jobs N] [--seed N] \
[--paper] [--fast] [--json] [--engine scalar|lanes] [--fault-reduce on|off] \
[--screen static|off] [--opt full|off] [--store DIR] [--trace FILE] \
[--trace-format json|chrome] [--profile] [--progress]";

impl SampleArgs {
    /// Parses `musa sample`'s arguments (everything after the
    /// subcommand).
    ///
    /// # Errors
    ///
    /// Returns the legacy `musa sample` error strings: usage on a
    /// missing name or extra positionals, per-flag messages otherwise.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        // `--store DIR` is specific to `musa sample`, so it is peeled
        // off before the shared token parser sees the argument list.
        let mut store = None;
        let mut rest = Vec::with_capacity(args.len());
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--store" {
                let Some(dir) = iter.next() else {
                    return Err("--store expects a directory".to_string());
                };
                store = Some(dir.clone());
            } else {
                rest.push(arg.clone());
            }
        }
        let parsed = parse_tokens(&rest, 2, false).map_err(|e| match e {
            CliError::SeedValue => "--seed expects an integer".to_string(),
            CliError::JobsValue => "--jobs expects a thread count".to_string(),
            CliError::EngineMissing => "--engine expects scalar|lanes".to_string(),
            CliError::FaultReduceValue => "--fault-reduce expects on|off".to_string(),
            CliError::ScreenValue => "--screen expects static|off".to_string(),
            CliError::OptValue => "--opt expects full|off".to_string(),
            CliError::TraceValue => "--trace expects a file path".to_string(),
            CliError::TraceFormatValue => "--trace-format expects json|chrome".to_string(),
            CliError::EngineInvalid(detail) => detail,
            CliError::UnknownFlag(flag) => format!("unknown flag `{flag}`; {SAMPLE_USAGE}"),
            CliError::TooManyPositionals => SAMPLE_USAGE.to_string(),
        })?;
        let Some(name) = parsed.positionals.first() else {
            return Err(SAMPLE_USAGE.to_string());
        };
        let fraction = match parsed.positionals.get(1) {
            Some(raw) => raw
                .parse()
                .map_err(|_| "bad fraction (expected 0..=1)".to_string())?,
            None => 0.10,
        };
        if store.is_some() && parsed.trace.wants_trace() {
            return Err(
                "--store cannot be combined with --trace/--profile (a store hit \
replays a cached result and records no trace)"
                    .to_string(),
            );
        }
        Ok(Self {
            name: name.clone(),
            fraction,
            seed: parsed.seed.unwrap_or(DEFAULT_SEED),
            jobs: parsed.jobs.unwrap_or(0),
            engine: parsed.engine.unwrap_or_default(),
            fault_reduce: parsed.fault_reduce.unwrap_or(true),
            screen: parsed.screen.unwrap_or(true),
            opt: parsed.opt.unwrap_or_default(),
            paper: parsed.paper,
            fast: parsed.fast,
            json: parsed.json,
            trace: parsed.trace,
            store,
        })
    }

    /// The campaign these arguments select (`musa sample` defaults to
    /// the fast preset; `--paper` upgrades, and passing both flags is
    /// a campaign validation error).
    pub fn campaign(&self) -> Campaign {
        let mut campaign = Campaign::named(&self.name)
            .seed(self.seed)
            .jobs(self.jobs)
            .engine(self.engine)
            .fault_reduce(self.fault_reduce)
            .screen(self.screen)
            .opt(self.opt)
            .trace(self.trace.wants_trace())
            .task(Task::Sampling { fraction: self.fraction });
        if self.paper {
            campaign = campaign.paper();
        }
        if self.fast || !self.paper {
            campaign = campaign.fast();
        }
        campaign
    }
}

// ---------------------------------------------------------------------
// `musa bench` — benchmark trajectory
// ---------------------------------------------------------------------

/// `musa bench` trajectory arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrajectoryArgs {
    /// `--quick`: 1 warmup + 3 samples per cell; the baseline gate
    /// drops absolute wall time.
    pub quick: bool,
    /// `--json`: print the `musa.bench.v1` report instead of text.
    pub json: bool,
    /// `--filter <bench>`: measure one benchmark only.
    pub filter: Option<String>,
    /// `--baseline <file>`: compare against a committed report.
    pub baseline: Option<String>,
    /// `--write`: save the report as the next free `BENCH_<n>.json`.
    pub write: bool,
    /// `--seed N`.
    pub seed: Option<u64>,
    /// `--history`: render the per-cell median trajectory over the
    /// committed `BENCH_<n>.json` files instead of measuring.
    pub history: bool,
    /// Observability flags (`--trace`, `--trace-format`, `--profile`,
    /// `--progress`).
    pub trace: TraceOpts,
}

/// The `musa bench` usage text (`musa help` points here too).
pub const BENCH_USAGE: &str = "\
usage: musa bench <name>                 stats for one bundled benchmark
       musa bench [--quick] [--json] [--filter <bench>]
                  [--baseline <file>] [--write] [--seed N]
                  [--trace FILE] [--trace-format json|chrome]
                  [--profile] [--progress]
                                         benchmark trajectory
       musa bench --history [--json] [--filter <bench>]
                                         per-cell median trajectory over
                                         the committed BENCH_<n>.json
trajectory flags:
  --quick            1 warmup + 3 timed samples per cell instead of
                     3 + 9; same grid and invariants, but the baseline
                     gate skips absolute wall time (invariants +
                     scalar/lanes engine ratio only) so a noisy 1-CPU
                     CI runner stays deterministic
  --json             print the report as `musa.bench.v1` JSON
  --filter <bench>   measure one benchmark; baseline cells are
                     filtered to the same benchmark before comparing
  --baseline <file>  compare against a committed BENCH_<n>.json and
                     exit 1 on any gated regression
  --write            write the report to the next free BENCH_<n>.json
  --seed N           master seed (default 0xDA7E2005)
  --history          no measuring: read BENCH_1.json, BENCH_2.json, …
                     from the working directory and print each cell's
                     median wall-time trajectory (text, or
                     `musa.bench.history.v1` with --json)
  --trace FILE       write collected spans + counters to FILE
  --trace-format json|chrome
                     trace file format (default: musa.trace.v1 JSON)
  --profile          per-phase breakdown after the run (stderr with
                     --json)
  --progress         coarse stderr progress lines while measuring";

/// How a `musa bench` invocation routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchCommand {
    /// The legacy contract: `musa bench <name>` prints netlist stats
    /// and the mutant-population size (exit 1 on an unknown name).
    Legacy(String),
    /// Trajectory mode: run the timed grid.
    Trajectory(TrajectoryArgs),
}

impl BenchCommand {
    /// Parses everything after `musa bench`. Exactly one non-flag
    /// argument and nothing else selects the legacy stats contract;
    /// every other argument shape is trajectory mode.
    ///
    /// # Errors
    ///
    /// A message naming the offending argument; front ends print it
    /// with [`BENCH_USAGE`] and exit 2.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        if args.len() == 1 && !args[0].starts_with('-') {
            return Ok(BenchCommand::Legacy(args[0].clone()));
        }
        let mut trajectory = TrajectoryArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => trajectory.quick = true,
                "--json" => trajectory.json = true,
                "--write" => trajectory.write = true,
                "--history" => trajectory.history = true,
                "--profile" => trajectory.trace.profile = true,
                "--progress" => trajectory.trace.progress = true,
                "--trace" => {
                    trajectory.trace.trace = Some(
                        args.get(i + 1)
                            .filter(|v| !v.starts_with('-'))
                            .ok_or("--trace expects a file path")?
                            .clone(),
                    );
                    i += 1;
                }
                "--trace-format" => {
                    trajectory.trace.format = match args.get(i + 1).map(String::as_str) {
                        Some("json") => TraceFormat::Json,
                        Some("chrome") => TraceFormat::Chrome,
                        _ => return Err("--trace-format expects json|chrome".to_string()),
                    };
                    i += 1;
                }
                "--filter" => {
                    trajectory.filter = Some(
                        args.get(i + 1)
                            .filter(|v| !v.starts_with('-'))
                            .ok_or("--filter expects a benchmark name")?
                            .clone(),
                    );
                    i += 1;
                }
                "--baseline" => {
                    trajectory.baseline = Some(
                        args.get(i + 1)
                            .filter(|v| !v.starts_with('-'))
                            .ok_or("--baseline expects a file path")?
                            .clone(),
                    );
                    i += 1;
                }
                "--seed" => {
                    trajectory.seed = Some(
                        args.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--seed expects an integer value")?,
                    );
                    i += 1;
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        Ok(BenchCommand::Trajectory(trajectory))
    }
}

/// Runs the benchmark trajectory and returns the process exit code:
/// `0` on success, `1` on a campaign failure or any gated regression,
/// `2` on a usage-level error (unknown `--filter` benchmark,
/// unreadable or malformed `--baseline` file).
pub fn run_trajectory(args: &TrajectoryArgs) -> u8 {
    if args.history {
        return run_history(args);
    }
    let benches: Vec<Benchmark> = match &args.filter {
        Some(name) => match Benchmark::from_name(name) {
            Some(bench) => vec![bench],
            None => {
                eprintln!(
                    "error: unknown benchmark `{name}` for --filter (see `musa list`)"
                );
                return 2;
            }
        },
        None => DEFAULT_BENCHES.to_vec(),
    };
    // Read the baseline before spending minutes measuring: a malformed
    // file must fail fast.
    let baseline = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: --baseline {path}: {e}");
                    return 2;
                }
            };
            match BenchReport::from_json(&text) {
                Ok(mut report) => {
                    if let Some(name) = &args.filter {
                        report.cells.retain(|c| c.bench == *name);
                    }
                    Some(report)
                }
                Err(e) => {
                    eprintln!("error: --baseline {path}: {e}");
                    return 2;
                }
            }
        }
        None => None,
    };
    musa_trace::set_progress(args.trace.progress);
    let campaign = Campaign::new(Benchmark::C17)
        .benches(&benches)
        .seed(args.seed.unwrap_or(DEFAULT_SEED))
        .trace(args.trace.wants_trace())
        .task(Task::Bench { quick: args.quick });
    let report = match campaign.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print_report(&report, args.json);
    if let Err(message) = emit_observability(&report, &args.trace, args.json) {
        eprintln!("error: {message}");
        return 1;
    }
    let ReportData::Bench(current) = &report.data else {
        unreachable!("Task::Bench always yields ReportData::Bench");
    };
    if args.write {
        let path = next_bench_path(std::path::Path::new("."));
        if let Err(e) = std::fs::write(&path, format!("{}\n", current.to_json())) {
            eprintln!("error: {}: {e}", path.display());
            return 1;
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(baseline) = &baseline {
        let policy =
            if args.quick { ComparePolicy::quick() } else { ComparePolicy::full() };
        let findings = compare(baseline, current, &policy);
        if !findings.is_empty() {
            for finding in &findings {
                eprintln!("regression: {finding}");
            }
            eprintln!("{} regression(s) against the baseline", findings.len());
            return 1;
        }
        eprintln!(
            "baseline check: {} cells pass ({})",
            baseline.cells.len(),
            if policy.gate_wall {
                "invariants + engine ratio + wall"
            } else {
                "invariants + engine ratio"
            },
        );
    }
    0
}

/// `musa bench --history`: loads the committed `BENCH_<n>.json`
/// sequence from the working directory (numbered contiguously from 1,
/// exactly what `--write` produces) and prints each cell's median
/// wall-time trajectory — the ROADMAP's `dev/bench`-style history
/// renderer. Exit `0` on success, `2` when no reports exist or one is
/// malformed.
fn run_history(args: &TrajectoryArgs) -> u8 {
    // Same naming contract as `next_bench_path`: indices may have gaps
    // (they are never reused), so scan the directory instead of
    // counting up from 1.
    let mut indices: Vec<u64> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(".") {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(n);
            }
        }
    }
    indices.sort_unstable();
    let mut labels = Vec::new();
    let mut reports = Vec::new();
    for n in indices {
        let path = format!("BENCH_{n}.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(mut report) => {
                if let Some(name) = &args.filter {
                    report.cells.retain(|c| c.bench == *name);
                }
                labels.push(format!("BENCH_{n}"));
                reports.push(report);
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        }
    }
    if reports.is_empty() {
        eprintln!("error: no BENCH_<n>.json reports in the working directory");
        return 2;
    }
    if args.json {
        println!("{}", bench_history_json(&labels, &reports));
    } else {
        print!("{}", render_bench_history(&labels, &reports));
    }
    0
}

/// The six experiment binaries, with their per-binary defaults
/// (benchmark sets, task parameters, legacy error wording).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bin {
    /// `table1` — operator fault-coverage efficiency.
    Table1,
    /// `table2` — test-oriented vs random 10 % sampling.
    Table2,
    /// `sweep_fraction` — E1.
    SweepFraction,
    /// `coverage_curves` — E2.
    CoverageCurves,
    /// `atpg_topup` — E3.
    AtpgTopup,
    /// `equivalence_ablation` — E4.
    EquivalenceAblation,
}

impl Bin {
    /// The task this binary runs, with its legacy default parameters.
    pub fn task(self, fast: bool) -> Task {
        match self {
            Bin::Table1 => Task::Table1 {
                operators: MutationOperator::paper_set().to_vec(),
            },
            Bin::Table2 => Task::Table2 { fraction: 0.10 },
            Bin::SweepFraction => Task::SweepFraction {
                fractions: vec![0.05, 0.10, 0.20, 0.50, 1.00],
            },
            Bin::CoverageCurves => Task::CoverageCurves { points: 12 },
            Bin::AtpgTopup => Task::AtpgTopup { backtrack_limit: 50_000 },
            Bin::EquivalenceAblation => Task::EquivalenceAblation {
                budgets: if fast {
                    vec![50, 200, 1_000]
                } else {
                    vec![100, 500, 2_000, 10_000, 50_000]
                },
            },
        }
    }

    /// The benchmark set this binary measures (`--fast` scales it
    /// down, exactly like the pre-redesign binaries did).
    pub fn benches(self, fast: bool) -> Vec<Benchmark> {
        match self {
            Bin::Table1 | Bin::Table2 => Benchmark::paper_set().to_vec(),
            Bin::SweepFraction => {
                if fast {
                    vec![Benchmark::B01, Benchmark::C17]
                } else {
                    Benchmark::paper_set().to_vec()
                }
            }
            Bin::CoverageCurves => {
                if fast {
                    vec![Benchmark::C17, Benchmark::B01]
                } else {
                    Benchmark::paper_set().to_vec()
                }
            }
            Bin::AtpgTopup => {
                // E3 targets the paper's combinational circuits.
                if fast {
                    vec![Benchmark::C17]
                } else {
                    vec![Benchmark::C17, Benchmark::C432, Benchmark::C499]
                }
            }
            Bin::EquivalenceAblation => {
                if fast {
                    vec![Benchmark::C17]
                } else {
                    Benchmark::paper_set().to_vec()
                }
            }
        }
    }

    /// The campaign this binary's options select.
    pub fn campaign(self, opts: &CliOptions) -> Campaign {
        let mut campaign = Campaign::new(Benchmark::C17)
            .benches(&self.benches(opts.fast))
            .seed(opts.seed)
            .jobs(opts.jobs)
            .engine(opts.engine)
            .fault_reduce(opts.fault_reduce)
            .opt(opts.opt)
            .trace(opts.trace.wants_trace())
            .task(self.task(opts.fast));
        if opts.fast {
            campaign = campaign.fast();
        }
        if opts.paper {
            campaign = campaign.paper();
        }
        campaign
    }

    /// The legacy stderr line for a failure.
    fn error_message(self, error: &CampaignError) -> String {
        let prefix = match self {
            Bin::Table1 => "table1 failed",
            Bin::Table2 => "table2 failed",
            Bin::SweepFraction => "sweep failed",
            Bin::CoverageCurves => "curves failed",
            Bin::AtpgTopup => "atpg_topup failed",
            Bin::EquivalenceAblation => "ablation failed",
        };
        match error {
            CampaignError::Run { bench, source } => {
                format!("{prefix} on {bench}: {source}")
            }
            other => format!("{prefix}: {other}"),
        }
    }
}

/// Parses `std::env::args`, runs the binary's campaign and prints the
/// report (text by default, `--json` for the typed report). The whole
/// `main` of every experiment binary.
pub fn drive(bin: Bin) {
    let opts = CliOptions::from_args();
    musa_trace::set_progress(opts.trace.progress);
    match bin.campaign(&opts).run() {
        Ok(report) => {
            print_report(&report, opts.json);
            if let Err(message) = emit_observability(&report, &opts.trace, opts.json) {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{}", bin.error_message(&e));
            std::process::exit(1);
        }
    }
}

/// Prints a campaign report the way every front end does: the stable
/// text rendering by default, the `musa.campaign.v1` JSON with
/// `--json`.
pub fn print_report(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options() {
        let opts = CliOptions {
            fast: true,
            paper: false,
            json: false,
            seed: 42,
            jobs: 0,
            engine: Engine::Scalar,
            fault_reduce: true,
            screen: true,
            opt: OptLevel::Full,
            trace: TraceOpts::default(),
        };
        let cfg = opts.config();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.jobs, 0, "0 = one worker per available CPU");
    }

    #[test]
    fn jobs_option_reaches_the_config() {
        let opts = CliOptions {
            fast: false,
            paper: false,
            json: false,
            seed: 1,
            jobs: 3,
            engine: Engine::Scalar,
            fault_reduce: true,
            screen: true,
            opt: OptLevel::Full,
            trace: TraceOpts::default(),
        };
        assert_eq!(opts.config().jobs, 3);
    }

    #[test]
    fn engine_option_reaches_the_config_and_generation() {
        let opts = CliOptions {
            fast: true,
            paper: false,
            json: false,
            seed: 1,
            jobs: 0,
            engine: Engine::Lanes,
            fault_reduce: true,
            screen: true,
            opt: OptLevel::Full,
            trace: TraceOpts::default(),
        };
        let cfg = opts.config();
        assert_eq!(cfg.engine, Engine::Lanes);
        assert_eq!(cfg.mg.engine, Engine::Lanes);
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in [
            "--fast", "--paper", "--seed", "--jobs", "--engine", "--fault-reduce",
            "--screen", "--opt", "--json", "--trace", "--trace-format", "--profile",
            "--progress", "--help",
        ] {
            assert!(CliOptions::USAGE.contains(flag), "usage lacks {flag}");
        }
    }

    #[test]
    fn shared_parser_handles_the_full_flag_set() {
        let parsed = parse_tokens(
            &strings(&["--fast", "--seed", "9", "--jobs", "2", "--engine", "lanes", "--json"]),
            0,
            true,
        )
        .unwrap();
        assert!(parsed.fast && parsed.json && !parsed.paper);
        assert_eq!(parsed.seed, Some(9));
        assert_eq!(parsed.jobs, Some(2));
        assert_eq!(parsed.engine, Some(Engine::Lanes));
    }

    #[test]
    fn shared_parser_reports_value_errors() {
        assert_eq!(
            parse_tokens(&strings(&["--seed", "zz"]), 0, true).unwrap_err(),
            CliError::SeedValue
        );
        assert_eq!(
            parse_tokens(&strings(&["--jobs"]), 0, true).unwrap_err(),
            CliError::JobsValue
        );
        assert_eq!(
            parse_tokens(&strings(&["--engine"]), 0, true).unwrap_err(),
            CliError::EngineMissing
        );
        assert!(matches!(
            parse_tokens(&strings(&["--engine", "turbo"]), 0, true).unwrap_err(),
            CliError::EngineInvalid(_)
        ));
    }

    #[test]
    fn fault_reduce_flag_parses_and_reaches_the_config() {
        let parsed =
            parse_tokens(&strings(&["--fault-reduce", "off"]), 0, true).unwrap();
        assert_eq!(parsed.fault_reduce, Some(false));
        let parsed = parse_tokens(&strings(&["--fault-reduce", "on"]), 0, true).unwrap();
        assert_eq!(parsed.fault_reduce, Some(true));
        for bad in [&["--fault-reduce"][..], &["--fault-reduce", "maybe"][..]] {
            assert_eq!(
                parse_tokens(&strings(bad), 0, true).unwrap_err(),
                CliError::FaultReduceValue,
                "{bad:?}"
            );
        }
        let opts = CliOptions {
            fast: true,
            paper: false,
            json: false,
            seed: 1,
            jobs: 0,
            engine: Engine::Scalar,
            fault_reduce: false,
            screen: true,
            opt: OptLevel::Full,
            trace: TraceOpts::default(),
        };
        assert!(!opts.config().fault_reduce);
        let args =
            SampleArgs::parse(&strings(&["c17", "--fault-reduce", "off"])).unwrap();
        assert!(!args.fault_reduce);
        assert!(
            SampleArgs::parse(&strings(&["c17", "--fault-reduce", "2"]))
                .unwrap_err()
                .contains("on|off")
        );
        // Default: reduction on.
        assert!(SampleArgs::parse(&strings(&["c17"])).unwrap().fault_reduce);
    }

    #[test]
    fn screen_flag_parses_and_reaches_the_config() {
        let parsed = parse_tokens(&strings(&["--screen", "off"]), 0, true).unwrap();
        assert_eq!(parsed.screen, Some(false));
        let parsed = parse_tokens(&strings(&["--screen", "static"]), 0, true).unwrap();
        assert_eq!(parsed.screen, Some(true));
        for bad in [&["--screen"][..], &["--screen", "on"][..]] {
            assert_eq!(
                parse_tokens(&strings(bad), 0, true).unwrap_err(),
                CliError::ScreenValue,
                "{bad:?}"
            );
        }
        let opts = CliOptions {
            fast: true,
            paper: false,
            json: false,
            seed: 1,
            jobs: 0,
            engine: Engine::Scalar,
            fault_reduce: true,
            screen: false,
            opt: OptLevel::Full,
            trace: TraceOpts::default(),
        };
        assert!(!opts.config().screen);
        let args = SampleArgs::parse(&strings(&["c17", "--screen", "off"])).unwrap();
        assert!(!args.screen);
        assert!(
            SampleArgs::parse(&strings(&["c17", "--screen", "on"]))
                .unwrap_err()
                .contains("static|off")
        );
        // Default: screening on.
        assert!(SampleArgs::parse(&strings(&["c17"])).unwrap().screen);
    }

    #[test]
    fn opt_flag_parses_and_reaches_the_config() {
        let parsed = parse_tokens(&strings(&["--opt", "off"]), 0, true).unwrap();
        assert_eq!(parsed.opt, Some(OptLevel::Off));
        let parsed = parse_tokens(&strings(&["--opt", "full"]), 0, true).unwrap();
        assert_eq!(parsed.opt, Some(OptLevel::Full));
        for bad in [&["--opt"][..], &["--opt", "fast"][..]] {
            assert_eq!(
                parse_tokens(&strings(bad), 0, true).unwrap_err(),
                CliError::OptValue,
                "{bad:?}"
            );
        }
        let opts = CliOptions { opt: OptLevel::Off, ..CliOptions::default() };
        let cfg = opts.config();
        assert_eq!(cfg.opt, OptLevel::Off);
        assert_eq!(cfg.mg.opt, OptLevel::Off, "--opt must reach generation too");
        let args = SampleArgs::parse(&strings(&["c17", "--opt", "off"])).unwrap();
        assert_eq!(args.opt, OptLevel::Off);
        assert!(SampleArgs::parse(&strings(&["c17", "--opt", "fast"]))
            .unwrap_err()
            .contains("full|off"));
        // Default: the optimizer is on.
        assert_eq!(SampleArgs::parse(&strings(&["c17"])).unwrap().opt, OptLevel::Full);
    }

    #[test]
    fn trace_flags_parse_and_reach_the_campaign() {
        let parsed = parse_tokens(
            &strings(&[
                "--trace", "t.json", "--trace-format", "chrome", "--profile", "--progress",
            ]),
            0,
            true,
        )
        .unwrap();
        assert_eq!(parsed.trace.trace.as_deref(), Some("t.json"));
        assert_eq!(parsed.trace.format, TraceFormat::Chrome);
        assert!(parsed.trace.profile && parsed.trace.progress);
        assert!(parsed.trace.wants_trace());
        assert_eq!(
            parse_tokens(&strings(&["--trace"]), 0, true).unwrap_err(),
            CliError::TraceValue
        );
        assert_eq!(
            parse_tokens(&strings(&["--trace", "--fast"]), 0, true).unwrap_err(),
            CliError::TraceValue
        );
        assert_eq!(
            parse_tokens(&strings(&["--trace-format", "xml"]), 0, true).unwrap_err(),
            CliError::TraceFormatValue
        );
        // --profile alone is enough to need a live tracer; the default
        // flag set is not (so untraced runs stay bit-identical).
        let args = SampleArgs::parse(&strings(&["c17", "--profile"])).unwrap();
        assert!(args.trace.wants_trace());
        let args = SampleArgs::parse(&strings(&["c17"])).unwrap();
        assert!(!args.trace.wants_trace());
        assert!(SampleArgs::parse(&strings(&["c17", "--trace-format", "xml"]))
            .unwrap_err()
            .contains("json|chrome"));
    }

    #[test]
    fn help_short_circuits_before_later_malformed_values() {
        // The pre-redesign loop exited at --help without reading the
        // rest of the line; `--help --seed zz` must report help, not a
        // value error.
        let parsed = parse_tokens(&strings(&["--help", "--seed", "zz"]), 0, true).unwrap();
        assert!(parsed.help);
        // ...while an error BEFORE --help still wins, as it always did.
        assert_eq!(
            parse_tokens(&strings(&["--seed", "zz", "--help"]), 0, true).unwrap_err(),
            CliError::SeedValue
        );
    }

    #[test]
    fn strict_mode_rejects_unknown_flags_and_extra_positionals() {
        assert_eq!(
            parse_tokens(&strings(&["--frobnicate"]), 2, false).unwrap_err(),
            CliError::UnknownFlag("--frobnicate".into())
        );
        assert_eq!(
            parse_tokens(&strings(&["a", "b", "c"]), 2, false).unwrap_err(),
            CliError::TooManyPositionals
        );
    }

    #[test]
    fn sample_args_match_the_legacy_contract() {
        let args = SampleArgs::parse(&strings(&["c17", "0.5", "--jobs", "2", "--seed", "9"]))
            .unwrap();
        assert_eq!(args.name, "c17");
        assert_eq!(args.fraction, 0.5);
        assert_eq!(args.jobs, 2);
        assert_eq!(args.seed, 9);
        assert!(!args.paper);

        assert_eq!(SampleArgs::parse(&[]).unwrap_err(), SAMPLE_USAGE);
        assert!(SampleArgs::parse(&strings(&["c17", "xx"]))
            .unwrap_err()
            .contains("bad fraction"));
        assert!(SampleArgs::parse(&strings(&["c17", "--engine", "turbo"]))
            .unwrap_err()
            .contains("unknown engine"));
        assert!(SampleArgs::parse(&strings(&["c17", "--wat"]))
            .unwrap_err()
            .contains("unknown flag `--wat`"));
    }

    #[test]
    fn sample_store_flag_parses_and_excludes_tracing() {
        let args = SampleArgs::parse(&strings(&["c17", "--store", ".musa-store"])).unwrap();
        assert_eq!(args.store.as_deref(), Some(".musa-store"));
        assert!(SampleArgs::parse(&strings(&["c17"])).unwrap().store.is_none());
        assert!(SampleArgs::parse(&strings(&["c17", "--store"]))
            .unwrap_err()
            .contains("--store expects a directory"));
        for tracing in [&["--trace", "t.json"][..], &["--profile"][..]] {
            let mut tokens = vec!["c17", "--store", "s"];
            tokens.extend_from_slice(tracing);
            assert!(SampleArgs::parse(&strings(&tokens))
                .unwrap_err()
                .contains("--store cannot be combined"));
        }
    }

    #[test]
    fn bench_command_routes_legacy_vs_trajectory() {
        // One bare positional — the legacy stats contract, resolvable
        // or not (the unknown-name error stays an exit-1 runtime path).
        assert_eq!(
            BenchCommand::parse(&strings(&["c432"])).unwrap(),
            BenchCommand::Legacy("c432".into())
        );
        assert_eq!(
            BenchCommand::parse(&strings(&["zz99"])).unwrap(),
            BenchCommand::Legacy("zz99".into())
        );
        // No arguments, or any flag — trajectory mode.
        assert_eq!(
            BenchCommand::parse(&[]).unwrap(),
            BenchCommand::Trajectory(TrajectoryArgs::default())
        );
        let parsed = BenchCommand::parse(&strings(&[
            "--quick", "--json", "--filter", "c17", "--baseline", "BENCH_1.json",
            "--write", "--seed", "9", "--history", "--trace", "t.json",
            "--trace-format", "chrome", "--profile", "--progress",
        ]))
        .unwrap();
        assert_eq!(
            parsed,
            BenchCommand::Trajectory(TrajectoryArgs {
                quick: true,
                json: true,
                filter: Some("c17".into()),
                baseline: Some("BENCH_1.json".into()),
                write: true,
                seed: Some(9),
                history: true,
                trace: TraceOpts {
                    trace: Some("t.json".into()),
                    format: TraceFormat::Chrome,
                    profile: true,
                    progress: true,
                },
            })
        );
    }

    #[test]
    fn bench_command_reports_usage_errors() {
        for (args, fragment) in [
            (&["--filter"][..], "--filter expects"),
            (&["--filter", "--quick"][..], "--filter expects"),
            (&["--baseline"][..], "--baseline expects"),
            (&["--seed", "zz"][..], "--seed expects"),
            (&["--trace"][..], "--trace expects"),
            (&["--trace", "--quick"][..], "--trace expects"),
            (&["--trace-format", "xml"][..], "--trace-format expects"),
            (&["--quick", "extra"][..], "unknown argument `extra`"),
            (&["--frobnicate"][..], "unknown argument `--frobnicate`"),
        ] {
            let err = BenchCommand::parse(&strings(args)).unwrap_err();
            assert!(err.contains(fragment), "{args:?}: {err}");
        }
    }

    #[test]
    fn bench_usage_documents_every_trajectory_flag() {
        for flag in [
            "--quick", "--json", "--filter", "--baseline", "--write", "--seed",
            "--history", "--trace", "--trace-format", "--profile", "--progress",
        ] {
            assert!(BENCH_USAGE.contains(flag), "usage lacks {flag}");
        }
    }

    #[test]
    fn trajectory_rejects_unknown_filter_before_measuring() {
        let args = TrajectoryArgs {
            filter: Some("zz99".into()),
            ..TrajectoryArgs::default()
        };
        assert_eq!(run_trajectory(&args), 2);
    }

    #[test]
    fn trajectory_rejects_missing_and_malformed_baselines() {
        let missing = TrajectoryArgs {
            baseline: Some("/nonexistent/BENCH_0.json".into()),
            ..TrajectoryArgs::default()
        };
        assert_eq!(run_trajectory(&missing), 2);
        let dir = std::env::temp_dir()
            .join(format!("musa-cli-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{ not json").unwrap();
        let malformed = TrajectoryArgs {
            baseline: Some(path.to_str().unwrap().to_string()),
            ..TrajectoryArgs::default()
        };
        assert_eq!(run_trajectory(&malformed), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bins_reproduce_their_legacy_defaults() {
        assert_eq!(
            Bin::Table1.task(false),
            Task::Table1 { operators: MutationOperator::paper_set().to_vec() }
        );
        assert_eq!(Bin::Table2.task(true), Task::Table2 { fraction: 0.10 });
        assert_eq!(
            Bin::SweepFraction.benches(true),
            vec![Benchmark::B01, Benchmark::C17]
        );
        assert_eq!(
            Bin::CoverageCurves.benches(true),
            vec![Benchmark::C17, Benchmark::B01]
        );
        assert_eq!(Bin::AtpgTopup.benches(false).len(), 3);
        assert_eq!(
            Bin::EquivalenceAblation.task(false),
            Task::EquivalenceAblation { budgets: vec![100, 500, 2_000, 10_000, 50_000] }
        );
        // Every bin's campaign validates (no run).
        for bin in [
            Bin::Table1,
            Bin::Table2,
            Bin::SweepFraction,
            Bin::CoverageCurves,
            Bin::AtpgTopup,
            Bin::EquivalenceAblation,
        ] {
            let opts = CliOptions {
                fast: true,
                paper: false,
                json: false,
                seed: 1,
                jobs: 1,
                engine: Engine::Scalar,
                fault_reduce: true,
                screen: true,
                opt: OptLevel::Full,
                trace: TraceOpts::default(),
            };
            bin.campaign(&opts).validate().unwrap_or_else(|e| panic!("{bin:?}: {e}"));
        }
    }
}
