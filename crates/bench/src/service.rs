//! The store/serving subcommands — `musa campaign`, `musa serve`,
//! `musa client` and the hidden `musa __worker`.
//!
//! Argument parsing lives here (next to the other shared CLI layers)
//! so `src/main.rs` stays a dispatcher and the exit-code contract is
//! testable: **2** for anything decided before computation starts (bad
//! flags, unreadable or malformed requests, a non-sampling task with
//! `--workers`), **1** for runtime failures (a failed run, a worker
//! that died, a connection that broke).

use crate::cli::print_report;
use musa_store::serve::{client_request, serve};
use musa_store::shard::{run_sharded, worker_shard_json};
use musa_store::{meta_from_plan, CampaignKey, RunCached, Store, StoreOutcome};
use std::io::Read as _;
use std::net::TcpListener;
use std::time::Instant;

/// A service-command failure, tagged with the exit-code class.
#[derive(Debug)]
pub enum ServiceError {
    /// A caller mistake, decided before any computation: exit 2.
    Usage(String),
    /// A runtime failure: exit 1.
    Runtime(String),
}

impl ServiceError {
    /// The process exit code this failure maps to.
    pub fn code(&self) -> u8 {
        match self {
            ServiceError::Usage(_) => 2,
            ServiceError::Runtime(_) => 1,
        }
    }

    /// The printable message.
    pub fn message(&self) -> &str {
        match self {
            ServiceError::Usage(m) | ServiceError::Runtime(m) => m,
        }
    }
}

/// The `musa campaign` usage line.
pub const CAMPAIGN_USAGE: &str =
    "usage: musa campaign <request.json|-> [--workers N] [--store DIR] [--json]";

/// The `musa serve` usage line.
pub const SERVE_USAGE: &str = "usage: musa serve --addr HOST:PORT [--store DIR] [--once]";

/// The `musa client` usage line.
pub const CLIENT_USAGE: &str = "usage: musa client --addr HOST:PORT <request.json|->";

/// The hidden worker's usage line (spawned by `--workers`, not typed
/// by people — but its parse errors still follow the exit-2 contract).
pub const WORKER_USAGE: &str = "usage: musa __worker --cells bench:rep[,bench:rep...]  (request on stdin)";

/// `musa campaign` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignArgs {
    /// Request document path, `-` for stdin.
    pub request: String,
    /// Worker processes (`0` = in-process).
    pub workers: usize,
    /// Result-store directory, when caching is wanted.
    pub store: Option<String>,
    /// Emit the JSON report instead of text.
    pub json: bool,
}

impl CampaignArgs {
    /// Parses everything after `musa campaign`.
    ///
    /// # Errors
    ///
    /// A usage string (exit 2).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut request = None;
        let mut workers = 0usize;
        let mut store = None;
        let mut json = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--workers" => {
                    workers = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--workers expects a process count")?;
                }
                "--store" => {
                    store = Some(
                        iter.next().ok_or("--store expects a directory")?.clone(),
                    );
                }
                "--json" => json = true,
                other if request.is_none() && (other == "-" || !other.starts_with('-')) => {
                    request = Some(other.to_string());
                }
                other => return Err(format!("unexpected argument `{other}`; {CAMPAIGN_USAGE}")),
            }
        }
        Ok(Self {
            request: request.ok_or(CAMPAIGN_USAGE)?,
            workers,
            store,
            json,
        })
    }
}

/// `musa serve` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address, `HOST:PORT` (port 0 picks a free port; the
    /// server prints the resolved address).
    pub addr: String,
    /// Result-store directory (default `.musa-store`).
    pub store: String,
    /// Serve exactly one connection, then exit (hermetic-CI mode).
    pub once: bool,
}

impl ServeArgs {
    /// Parses everything after `musa serve`.
    ///
    /// # Errors
    ///
    /// A usage string (exit 2).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut addr = None;
        let mut store = ".musa-store".to_string();
        let mut once = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--addr" => addr = Some(iter.next().ok_or("--addr expects HOST:PORT")?.clone()),
                "--store" => {
                    store = iter.next().ok_or("--store expects a directory")?.clone();
                }
                "--once" => once = true,
                other => return Err(format!("unexpected argument `{other}`; {SERVE_USAGE}")),
            }
        }
        Ok(Self { addr: addr.ok_or(SERVE_USAGE)?, store, once })
    }
}

/// `musa client` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientArgs {
    /// Server address, `HOST:PORT`.
    pub addr: String,
    /// Request document path, `-` for stdin.
    pub request: String,
}

impl ClientArgs {
    /// Parses everything after `musa client`.
    ///
    /// # Errors
    ///
    /// A usage string (exit 2).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut addr = None;
        let mut request = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--addr" => addr = Some(iter.next().ok_or("--addr expects HOST:PORT")?.clone()),
                other if request.is_none() && (other == "-" || !other.starts_with('-')) => {
                    request = Some(other.to_string());
                }
                other => return Err(format!("unexpected argument `{other}`; {CLIENT_USAGE}")),
            }
        }
        Ok(Self {
            addr: addr.ok_or(CLIENT_USAGE)?,
            request: request.ok_or(CLIENT_USAGE)?,
        })
    }
}

/// Reads a request document from a path, or stdin for `-`.
fn read_request(path: &str) -> Result<String, ServiceError> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| ServiceError::Usage(format!("reading request from stdin: {e}")))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| ServiceError::Usage(format!("{path}: {e}")))
    }
}

/// Runs `musa campaign`: request in, report out, optionally through
/// the store and/or sharded across worker processes.
///
/// # Errors
///
/// [`ServiceError::Usage`] before any computation, otherwise
/// [`ServiceError::Runtime`].
pub fn run_campaign(args: &CampaignArgs) -> Result<(), ServiceError> {
    let started = Instant::now();
    let request_text = read_request(&args.request)?;
    let campaign =
        musa_store::request::parse_request(&request_text).map_err(ServiceError::Usage)?;
    let plan = campaign.plan().map_err(|e| ServiceError::Usage(e.to_string()))?;
    if args.workers > 0 {
        // The grid check is a pre-computation decision: --workers only
        // shards the sampling task.
        musa_store::shard::grid(&plan).map_err(ServiceError::Usage)?;
    }

    let run_fresh = |text: &str| -> Result<musa_core::Report, ServiceError> {
        if args.workers > 0 {
            let exe = std::env::current_exe()
                .map_err(|e| ServiceError::Runtime(format!("cannot locate own executable: {e}")))?;
            run_sharded(&exe, text, args.workers).map_err(ServiceError::Runtime)
        } else {
            campaign.run().map_err(|e| ServiceError::Runtime(e.to_string()))
        }
    };

    let report = match &args.store {
        None => run_fresh(&request_text)?,
        Some(dir) => {
            let store = Store::open(dir)
                .map_err(|e| ServiceError::Runtime(format!("--store {dir}: {e}")))?;
            if args.workers == 0 {
                let run = campaign
                    .run_cached(&store)
                    .map_err(|e| ServiceError::Runtime(e.to_string()))?;
                match (&run.outcome, &run.key) {
                    (StoreOutcome::Bypass, _) => eprintln!("store: bypass"),
                    (outcome, Some(key)) => eprintln!("store: {} {key}", outcome.label()),
                    (outcome, None) => eprintln!("store: {}", outcome.label()),
                }
                run.report
            } else {
                // Sharded + stored: consult the store in the parent,
                // shard only on a miss.
                let key = CampaignKey::of(&plan);
                let hit = store
                    .get(&key)
                    .and_then(|blob| musa_store::decode::decode_report_data(&blob, &plan.task));
                match hit {
                    Some(data) => {
                        eprintln!("store: hit {key}");
                        musa_core::Report {
                            meta: meta_from_plan(&plan, started.elapsed()),
                            task: plan.task.clone(),
                            data,
                            trace: None,
                        }
                    }
                    None => {
                        let report = run_fresh(&request_text)?;
                        let entry = musa_store::StoreEntry {
                            key: key.as_hex().to_string(),
                            task: report.task.slug().to_string(),
                            benches: report.meta.benches.clone(),
                            seed: report.meta.seed,
                        };
                        let _ = store.put(entry, &report.to_json());
                        eprintln!("store: miss {key}");
                        report
                    }
                }
            }
        }
    };
    print_report(&report, args.json);
    Ok(())
}

/// Runs the hidden `musa __worker` subcommand: `--cells` from the
/// arguments, the request on stdin, the `musa.shard.v1` answer on
/// stdout.
///
/// # Errors
///
/// [`ServiceError::Usage`] for malformed arguments,
/// [`ServiceError::Runtime`] for everything after.
pub fn run_worker(args: &[String]) -> Result<(), ServiceError> {
    let cells = match args {
        [flag, spec] if flag == "--cells" => spec.clone(),
        _ => return Err(ServiceError::Usage(WORKER_USAGE.to_string())),
    };
    let mut request_text = String::new();
    std::io::stdin()
        .read_to_string(&mut request_text)
        .map_err(|e| ServiceError::Runtime(format!("reading request from stdin: {e}")))?;
    let answer = worker_shard_json(&request_text, &cells).map_err(ServiceError::Runtime)?;
    println!("{answer}");
    Ok(())
}

/// Runs `musa serve`: bind, announce the resolved address on stdout
/// (`listening HOST:PORT` — how CI discovers a port-0 listener), then
/// serve connections against the store.
///
/// # Errors
///
/// [`ServiceError::Runtime`] when the bind, the store, or the accept
/// loop fails.
pub fn run_serve(args: &ServeArgs) -> Result<(), ServiceError> {
    let store = Store::open(&args.store)
        .map_err(|e| ServiceError::Runtime(format!("--store {}: {e}", args.store)))?;
    let listener = TcpListener::bind(&args.addr)
        .map_err(|e| ServiceError::Runtime(format!("bind {}: {e}", args.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServiceError::Runtime(e.to_string()))?;
    println!("listening {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve(&listener, &store, args.once).map_err(|e| ServiceError::Runtime(e.to_string()))
}

/// Runs `musa client`: send one request, print the report body on
/// stdout (byte-identical to `musa campaign <req> --json`) and the
/// store status on stderr.
///
/// # Errors
///
/// [`ServiceError::Runtime`] on connection failures and server-side
/// `error` responses.
pub fn run_client(args: &ClientArgs) -> Result<(), ServiceError> {
    let request_text = read_request(&args.request)?;
    let (status, body) =
        client_request(args.addr.as_str(), &request_text).map_err(ServiceError::Runtime)?;
    if status == "error" {
        return Err(ServiceError::Runtime(format!("server: {body}")));
    }
    eprintln!("status: {status}");
    println!("{body}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn campaign_args_parse_and_reject() {
        assert_eq!(
            CampaignArgs::parse(&strings(&["req.json", "--workers", "4", "--store", "d", "--json"]))
                .unwrap(),
            CampaignArgs {
                request: "req.json".into(),
                workers: 4,
                store: Some("d".into()),
                json: true
            }
        );
        assert_eq!(
            CampaignArgs::parse(&strings(&["-"])).unwrap().request,
            "-",
            "stdin spelling"
        );
        assert!(CampaignArgs::parse(&[]).is_err(), "request is required");
        assert!(CampaignArgs::parse(&strings(&["req.json", "--workers"])).is_err());
        assert!(CampaignArgs::parse(&strings(&["req.json", "--workers", "x"])).is_err());
        assert!(CampaignArgs::parse(&strings(&["a.json", "b.json"])).is_err());
        assert!(CampaignArgs::parse(&strings(&["req.json", "--bogus"])).is_err());
    }

    #[test]
    fn serve_args_parse_and_reject() {
        assert_eq!(
            ServeArgs::parse(&strings(&["--addr", "127.0.0.1:0", "--once"])).unwrap(),
            ServeArgs { addr: "127.0.0.1:0".into(), store: ".musa-store".into(), once: true }
        );
        assert!(ServeArgs::parse(&[]).is_err(), "--addr is required");
        assert!(ServeArgs::parse(&strings(&["--addr"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--addr", "x", "--bogus"])).is_err());
    }

    #[test]
    fn client_args_parse_and_reject() {
        assert_eq!(
            ClientArgs::parse(&strings(&["--addr", "127.0.0.1:7777", "req.json"])).unwrap(),
            ClientArgs { addr: "127.0.0.1:7777".into(), request: "req.json".into() }
        );
        assert!(ClientArgs::parse(&strings(&["req.json"])).is_err(), "--addr is required");
        assert!(ClientArgs::parse(&strings(&["--addr", "x"])).is_err(), "request is required");
    }

    #[test]
    fn worker_arg_contract_is_exit_2() {
        assert!(matches!(run_worker(&[]), Err(ServiceError::Usage(_))));
        assert!(matches!(
            run_worker(&strings(&["--cells"])),
            Err(ServiceError::Usage(_))
        ));
        assert_eq!(ServiceError::Usage(String::new()).code(), 2);
        assert_eq!(ServiceError::Runtime(String::new()).code(), 1);
    }
}
