//! Fault-simulator throughput: PPSFP on combinational circuits and
//! parallel-fault on sequential ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use musa_circuits::Benchmark;
use musa_netlist::{collapsed_faults, fault_simulate};
use musa_testgen::lfsr_patterns;
use std::hint::black_box;

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(10);
    for bench in [Benchmark::C17, Benchmark::C432, Benchmark::C499, Benchmark::B01] {
        let circuit = bench.load().expect("benchmark loads");
        let faults = collapsed_faults(&circuit.netlist);
        let patterns = lfsr_patterns(circuit.netlist.inputs().len(), 128, 7);
        group.bench_with_input(
            BenchmarkId::new("128_vectors", bench.name()),
            &(&circuit.netlist, &faults, &patterns),
            |b, (nl, faults, patterns)| {
                b.iter(|| black_box(fault_simulate(nl, faults, patterns)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
