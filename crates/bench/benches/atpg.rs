//! PODEM throughput over whole collapsed fault lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use musa_circuits::Benchmark;
use musa_netlist::collapsed_faults;
use musa_testgen::atpg_all;
use std::hint::black_box;

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("podem_all_faults");
    group.sample_size(10);
    for bench in [Benchmark::C17, Benchmark::C432] {
        let circuit = bench.load().expect("benchmark loads");
        let faults = collapsed_faults(&circuit.netlist);
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &(&circuit.netlist, &faults),
            |b, (nl, faults)| b.iter(|| black_box(atpg_all(nl, faults, 10_000))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
