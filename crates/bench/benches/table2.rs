//! End-to-end Table 2 regeneration (fast preset, smallest paper
//! circuit) — tracks sampling-experiment regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use musa_circuits::Benchmark;
use musa_core::{ExperimentConfig, Table2};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("b01_ten_percent_fast", |b| {
        b.iter(|| {
            black_box(
                Table2::measure(&[Benchmark::B01], 0.10, &ExperimentConfig::fast(0xBE22))
                    .expect("pipeline runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
