//! End-to-end Table 1 regeneration (fast preset, smallest paper
//! circuit) — tracks pipeline-level regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use musa_circuits::Benchmark;
use musa_core::{ExperimentConfig, Table1};
use musa_mutation::MutationOperator;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("b01_paper_operators_fast", |b| {
        b.iter(|| {
            black_box(
                Table1::measure(
                    &[Benchmark::B01],
                    &MutationOperator::paper_set(),
                    &ExperimentConfig::fast(0xBE11C4),
                )
                .expect("pipeline runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
