//! Mutation-engine throughput: mutant generation and differential
//! execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use musa_circuits::Benchmark;
use musa_mutation::{
    execute_mutants, execute_mutants_lanes, generate_mutants, GenerateOptions,
};
use musa_testgen::random_sequence;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutant_generation");
    group.sample_size(10);
    for bench in [Benchmark::B01, Benchmark::C432, Benchmark::C499] {
        let circuit = bench.load().expect("benchmark loads");
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(generate_mutants(
                        &circuit.checked,
                        &circuit.name,
                        &GenerateOptions::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutant_execution");
    group.sample_size(10);
    for bench in [Benchmark::B01, Benchmark::C432] {
        let circuit = bench.load().expect("benchmark loads");
        let mutants = generate_mutants(
            &circuit.checked,
            &circuit.name,
            &GenerateOptions::default(),
        );
        let sequence = random_sequence(circuit.info(), 32, 9);
        group.bench_with_input(
            BenchmarkId::new("32_vectors", bench.name()),
            &(&circuit, &mutants, &sequence),
            |b, (circuit, mutants, sequence)| {
                b.iter(|| {
                    black_box(
                        execute_mutants(&circuit.checked, &circuit.name, mutants, sequence)
                            .expect("mutants belong to the design"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("32_vectors_lanes", bench.name()),
            &(&circuit, &mutants, &sequence),
            |b, (circuit, mutants, sequence)| {
                b.iter(|| {
                    black_box(
                        execute_mutants_lanes(
                            &circuit.checked,
                            &circuit.name,
                            mutants,
                            sequence,
                        )
                        .expect("mutants belong to the design"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_execution);
criterion_main!(benches);
