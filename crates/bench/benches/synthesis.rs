//! Front-end throughput: parse + check + synthesize each benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use musa_circuits::Benchmark;
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_check_synthesize");
    for bench in [Benchmark::B01, Benchmark::B03, Benchmark::C432, Benchmark::C499] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, bench| b.iter(|| black_box(bench.load().expect("benchmark loads"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
