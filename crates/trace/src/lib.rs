//! # musa-trace — structured spans, counters and progress
//!
//! A deliberately small observability layer for the campaign stack:
//!
//! - a [`Tracer`] collects **spans** (named, nested wall-time intervals,
//!   opened with [`span`] and closed by RAII guard drop) and monotonic
//!   **counters** (named `u64` sums, bumped with [`count`]);
//! - the currently installed tracer is a *thread-local*, so the
//!   instrumented crates at the bottom of the dependency graph
//!   (`musa_mutation`, `musa_netlist`, …) need no plumbing through
//!   their signatures — a caller installs a tracer once and every
//!   [`span`]/[`count`] below it lands in the same collector;
//! - worker threads join the trace through explicit **fork tokens**
//!   ([`ForkScope`]): the parallel layers capture a scope *before*
//!   spawning and enter child context `i` around work item `i`, so the
//!   recorded structure depends only on the item index, never on which
//!   worker ran the item or when. Merging sorts by `(path, seq)`,
//!   making the span list **bit-identical for every `--jobs` count**;
//! - with no tracer installed — or with the [`Tracer::off`] sink
//!   installed — every helper is a no-op that **never reads the
//!   clock**, so instrumented code paths stay bit-identical to their
//!   un-instrumented selves when observability is disabled.
//!
//! This crate is `std`-only and sits at the bottom of the workspace
//! dependency graph; rendering the collected data (the `musa.trace.v1`
//! JSON document, the Chrome `trace_event` export and the `--profile`
//! table) lives in `musa_core::trace_report`.
//!
//! # Identity model
//!
//! Every span belongs to a *context*. The context installed by
//! [`Tracer::install`] is the root (path `[]`); each
//! [`ForkScope::enter`] derives a child context whose path is the
//! parent path extended by `[fork_id, item_index]`, where `fork_id` is
//! drawn serially from the parent context's sequence counter at
//! [`ForkScope::capture`] time. Within a context, spans are numbered
//! by a serial `seq` in open order. `(path, seq)` therefore identifies
//! a span globally and deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One closed span, as deposited into the tracer when its guard drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static phase name (`"lane_interpret"`, `"fault_simulate"`, …).
    pub name: &'static str,
    /// Optional free-form qualifier (e.g. the bench name), built lazily
    /// and only when tracing is enabled.
    pub detail: Option<String>,
    /// Context path: `[]` for the root context, parent path extended by
    /// `[fork_id, item_index]` for each [`ForkScope::enter`] level.
    pub path: Vec<u32>,
    /// Serial number within the context, assigned in open order.
    pub seq: u32,
    /// Nesting depth within the context (`0` = context top level).
    pub depth: u32,
    /// `seq` of the enclosing span. For `depth > 0` the parent lives in
    /// the *same* context; for `depth == 0` in a forked context it is
    /// the span that was open in the **parent** context (path truncated
    /// by two) when the fork was captured. `None` only at the root.
    pub parent_seq: Option<u32>,
    /// Nanoseconds since the tracer's epoch at span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything a [`Tracer`] collected, merged deterministically:
/// spans sorted by `(path, seq)`, counters sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// All closed spans, in `(path, seq)` order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals, in name order.
    pub counters: Vec<(&'static str, u64)>,
}

/// Shared collector state behind an enabled [`Tracer`].
struct Shared {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

/// A span + counter collector. Cheap to clone (an `Arc` handle); the
/// [`Tracer::off`] variant carries no state and records nothing.
#[derive(Clone)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A live tracer; its epoch (span timestamp zero) is now.
    #[must_use]
    pub fn new() -> Self {
        Tracer {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The disabled sink: installing it keeps every [`span`]/[`count`]
    /// below a no-op that never reads the clock, and masks any tracer
    /// installed further up the stack.
    #[must_use]
    pub fn off() -> Self {
        Tracer { shared: None }
    }

    /// Whether this tracer records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Installs this tracer as the current thread's root context until
    /// the returned guard drops (the previous context is restored).
    #[must_use]
    pub fn install(&self) -> InstallGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().take());
        if let Some(shared) = &self.shared {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(Context {
                    shared: Arc::clone(shared),
                    path: Vec::new(),
                    parent_seq: None,
                    next_seq: 0,
                    open: Vec::new(),
                });
            });
        }
        InstallGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// The merged collection: spans sorted by `(path, seq)`, counters
    /// by name. `None` for the [`Tracer::off`] sink.
    #[must_use]
    pub fn finish(&self) -> Option<TraceData> {
        let shared = self.shared.as_ref()?;
        let mut spans = shared
            .spans
            .lock()
            .expect("no panics while depositing spans")
            .clone();
        spans.sort_by(|a, b| a.path.cmp(&b.path).then(a.seq.cmp(&b.seq)));
        let counters = shared
            .counters
            .lock()
            .expect("no panics while bumping counters")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        Some(TraceData { spans, counters })
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// The per-thread tracing context a [`span`]/[`count`] call lands in.
struct Context {
    shared: Arc<Shared>,
    path: Vec<u32>,
    /// Enclosing span in the parent context (forked contexts only).
    parent_seq: Option<u32>,
    next_seq: u32,
    /// Stack of `seq`s of currently open spans.
    open: Vec<u32>,
}

thread_local! {
    static CURRENT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Restores the previously installed context when dropped. Returned by
/// [`Tracer::install`] and [`ForkScope::enter`]; deliberately `!Send` —
/// a context belongs to the thread it was installed on.
pub struct InstallGuard {
    prev: Option<Context>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Opens a span named `name` in the current context; the span closes
/// (and is recorded) when the returned guard drops. A no-op that never
/// reads the clock when no tracer is installed.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// [`span`], with a lazily built detail string: `detail()` is only
/// invoked when a tracer is actually recording.
#[must_use]
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !tracing() {
        return SpanGuard(None);
    }
    open_span(name, Some(detail()))
}

/// Whether the current thread has a live (recording) context.
#[must_use]
pub fn tracing() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn open_span(name: &'static str, detail: Option<String>) -> SpanGuard {
    CURRENT.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return SpanGuard(None);
        };
        let seq = ctx.next_seq;
        ctx.next_seq += 1;
        let depth = u32::try_from(ctx.open.len()).expect("span nesting fits u32");
        let parent_seq = ctx.open.last().copied().or(ctx.parent_seq);
        ctx.open.push(seq);
        let start_ns = elapsed_ns(&ctx.shared.epoch);
        SpanGuard(Some(OpenSpan {
            name,
            detail,
            seq,
            depth,
            parent_seq,
            start_ns,
        }))
    })
}

fn elapsed_ns(epoch: &Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An open span; records itself into the current context on drop.
pub struct OpenSpan {
    name: &'static str,
    detail: Option<String>,
    seq: u32,
    depth: u32,
    parent_seq: Option<u32>,
    start_ns: u64,
}

/// RAII guard returned by [`span`]; `None` inside means tracing was
/// off at open time and drop does nothing (and reads no clock).
pub struct SpanGuard(Option<OpenSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            // The context can only be gone if a guard outlived its
            // InstallGuard — drop the record rather than panic in Drop.
            let Some(ctx) = borrow.as_mut() else { return };
            match ctx.open.iter().rposition(|&s| s == open.seq) {
                Some(pos) => {
                    ctx.open.truncate(pos);
                }
                None => return,
            }
            let dur_ns = elapsed_ns(&ctx.shared.epoch).saturating_sub(open.start_ns);
            let record = SpanRecord {
                name: open.name,
                detail: open.detail,
                path: ctx.path.clone(),
                seq: open.seq,
                depth: open.depth,
                parent_seq: open.parent_seq,
                start_ns: open.start_ns,
                dur_ns,
            };
            ctx.shared
                .spans
                .lock()
                .expect("no panics while depositing spans")
                .push(record);
        });
    }
}

/// Adds `n` to the counter named `name` in the current context's
/// registry. A no-op when no tracer is installed.
pub fn count(name: &'static str, n: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            *ctx.shared
                .counters
                .lock()
                .expect("no panics while bumping counters")
                .entry(name)
                .or_insert(0) += n;
        }
    });
}

/// A fork point captured on the spawning thread, to be entered once per
/// work item by whichever worker runs it.
///
/// Capture draws a fresh `fork_id` from the parent context serially —
/// *before* any worker starts — so two forks from the same context get
/// distinct child paths, and [`ForkScope::enter`]`(i)` always produces
/// the context path `parent ++ [fork_id, i]` no matter which thread
/// calls it. `ForkScope` is `Sync`: share it by reference across
/// scoped worker threads.
pub struct ForkScope {
    inner: Option<ForkInner>,
}

struct ForkInner {
    shared: Arc<Shared>,
    path: Vec<u32>,
    parent_seq: Option<u32>,
}

impl ForkScope {
    /// Captures the current thread's context (or an inert scope when
    /// tracing is off). The innermost open span becomes the parent of
    /// every entered child context.
    #[must_use]
    pub fn capture() -> Self {
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            let Some(ctx) = borrow.as_mut() else {
                return ForkScope { inner: None };
            };
            let fork_id = ctx.next_seq;
            ctx.next_seq += 1;
            let mut path = ctx.path.clone();
            path.push(fork_id);
            ForkScope {
                inner: Some(ForkInner {
                    shared: Arc::clone(&ctx.shared),
                    path,
                    parent_seq: ctx.open.last().copied().or(ctx.parent_seq),
                }),
            }
        })
    }

    /// Installs child context `index` on the **current** thread until
    /// the guard drops. Call exactly once per work item, around the
    /// item's execution, on whichever thread runs it.
    #[must_use]
    pub fn enter(&self, index: usize) -> InstallGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().take());
        if let Some(inner) = &self.inner {
            let mut path = inner.path.clone();
            path.push(u32::try_from(index).unwrap_or(u32::MAX));
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(Context {
                    shared: Arc::clone(&inner.shared),
                    path,
                    parent_seq: inner.parent_seq,
                    next_seq: 0,
                    open: Vec::new(),
                });
            });
        }
        InstallGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

/// Whether coarse progress lines (stderr) are enabled for this process.
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns `--progress` stderr reporting on or off process-wide.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether [`progress`] currently prints anything.
#[must_use]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Prints one coarse progress line to **stderr** (never stdout, so all
/// golden text/JSON outputs stay byte-identical) when enabled; the
/// message closure is only invoked when it will actually be printed.
pub fn progress(message: impl FnOnce() -> String) {
    if progress_enabled() {
        eprintln!("musa: {}", message());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(data: &TraceData) -> Vec<(&'static str, Vec<u32>, u32, u32)> {
        data.spans
            .iter()
            .map(|s| (s.name, s.path.clone(), s.seq, s.depth))
            .collect()
    }

    #[test]
    fn no_tracer_means_no_records_and_no_cost() {
        // No install: every helper is inert.
        assert!(!tracing());
        {
            let _s = span("root");
            count("hits", 3);
        }
        let off = Tracer::off();
        let _g = off.install();
        assert!(!tracing());
        let _s = span("still_off");
        assert!(off.finish().is_none());
    }

    #[test]
    fn spans_nest_and_record_in_open_order() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let _a = span("outer");
            {
                let _b = span("inner");
                count("hits", 2);
            }
            count("hits", 1);
        }
        let data = tracer.finish().unwrap();
        assert_eq!(
            names(&data),
            vec![("outer", vec![], 0, 0), ("inner", vec![], 1, 1)]
        );
        assert_eq!(data.spans[1].parent_seq, Some(0));
        assert_eq!(data.spans[0].parent_seq, None);
        assert!(data.spans[0].dur_ns >= data.spans[1].dur_ns);
        assert_eq!(data.counters, vec![("hits", 3)]);
    }

    #[test]
    fn off_sink_masks_an_outer_tracer() {
        let tracer = Tracer::new();
        let _g = tracer.install();
        {
            let off = Tracer::off();
            let _mask = off.install();
            let _s = span("hidden");
            count("hidden", 1);
        }
        let _s = span("visible");
        drop(_s);
        let data = tracer.finish().unwrap();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].name, "visible");
        assert!(data.counters.is_empty());
    }

    /// The deterministic-structure contract: same work, any job count,
    /// identical `(name, path, seq, depth, parent_seq)` stream.
    #[test]
    fn fork_structure_is_identical_for_every_job_count() {
        type Shape = (&'static str, Vec<u32>, u32, u32, Option<u32>);
        fn run(jobs: usize) -> Vec<Shape> {
            let tracer = Tracer::new();
            {
                let _g = tracer.install();
                let _root = span("campaign");
                let fork = ForkScope::capture();
                let items: Vec<usize> = (0..7).collect();
                if jobs <= 1 {
                    for &i in &items {
                        let _item = fork.enter(i);
                        let _s = span("work");
                        count("items", 1);
                    }
                } else {
                    let next = std::sync::atomic::AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for _ in 0..jobs {
                            scope.spawn(|| loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= items.len() {
                                    break;
                                }
                                let _item = fork.enter(i);
                                let _s = span("work");
                                count("items", 1);
                            });
                        }
                    });
                }
            }
            tracer
                .finish()
                .unwrap()
                .spans
                .iter()
                .map(|s| (s.name, s.path.clone(), s.seq, s.depth, s.parent_seq))
                .collect()
        }
        let serial = run(1);
        assert_eq!(serial.len(), 8); // campaign + 7 work items
        // Child paths are [fork_id=1, item]: seq 0 went to "campaign".
        assert_eq!(serial[1], ("work", vec![1, 0], 0, 0, Some(0)));
        for jobs in [2, 3, 8] {
            assert_eq!(run(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn two_forks_from_one_context_get_distinct_paths() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            for _ in 0..2 {
                let fork = ForkScope::capture();
                let _item = fork.enter(0);
                let _s = span("work");
            }
        }
        let data = tracer.finish().unwrap();
        let paths: Vec<Vec<u32>> = data.spans.iter().map(|s| s.path.clone()).collect();
        assert_eq!(paths, vec![vec![0, 0], vec![1, 0]]);
    }

    #[test]
    fn nested_forks_extend_the_path() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let _outer_span = span("outer");
            let fork = ForkScope::capture();
            let _outer = fork.enter(3);
            let _mid = span("mid");
            let inner = ForkScope::capture();
            let _leaf = inner.enter(1);
            let _s = span("leaf");
        }
        let data = tracer.finish().unwrap();
        let leaf = data.spans.iter().find(|s| s.name == "leaf").unwrap();
        // outer fork id 1 (seq 0 = "outer" span), inner fork id 1
        // (child context seq 0 = "mid" span).
        assert_eq!(leaf.path, vec![1, 3, 1, 1]);
        assert_eq!(leaf.parent_seq, Some(0), "parented on mid");
        let mid = data.spans.iter().find(|s| s.name == "mid").unwrap();
        assert_eq!(mid.parent_seq, Some(0), "parented on outer across the fork");
    }

    #[test]
    fn counters_sum_across_threads() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let fork = ForkScope::capture();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let fork = &fork;
                    scope.spawn(move || {
                        let _ctx = fork.enter(t);
                        count("per_thread", 10);
                    });
                }
            });
            count("per_thread", 2);
        }
        let data = tracer.finish().unwrap();
        assert_eq!(data.counters, vec![("per_thread", 42)]);
    }

    #[test]
    fn progress_toggle_round_trips() {
        assert!(!progress_enabled());
        set_progress(true);
        assert!(progress_enabled());
        let mut built = false;
        progress(|| {
            built = true;
            String::from("tick")
        });
        assert!(built);
        set_progress(false);
        let mut built_off = false;
        progress(|| {
            built_off = true;
            String::new()
        });
        assert!(!built_off, "message must not be built when disabled");
    }
}
