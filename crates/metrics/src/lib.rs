//! # musa-metrics — coverage curves, ΔFC%/ΔL%/NLFCE and table rendering
//!
//! The measurement vocabulary of the DATE'05 paper:
//!
//! * [`CoverageCurve`] — cumulative stuck-at fault coverage versus
//!   applied test length;
//! * [`NlfceInputs`] / [`Nlfce`] — the paper's Non-Linear Fault Coverage
//!   Efficiency: `ΔFC%` (coverage gain at equal length), `ΔL%` (length
//!   gain at equal coverage) and their product `NLFCE`;
//! * [`Table`] — fixed-width ASCII tables for the bench binaries that
//!   regenerate the paper's tables;
//! * [`RobustStats`] — median / MAD / min summaries of wall-clock
//!   samples for the benchmark trajectory (`musa bench`).
//!
//! # Example
//!
//! ```
//! use musa_metrics::{CoverageCurve, NlfceInputs};
//!
//! let mutation = CoverageCurve::new(vec![0.5, 0.7, 0.8]);
//! let random = CoverageCurve::new(vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8]);
//! let metrics = NlfceInputs { mutation: &mutation, random: &random }.compute();
//! assert!(metrics.delta_fc_pct > 0.0);
//! assert!(metrics.delta_l_pct > 0.0);
//! assert_eq!(metrics.nlfce, metrics.delta_fc_pct * metrics.delta_l_pct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod nlfce;
mod stats;
mod table;

pub use curve::CoverageCurve;
pub use nlfce::{Nlfce, NlfceInputs};
pub use stats::{mad, median, RobustStats};
pub use table::{f2, pct, signed0, Align, Table};
