//! Robust summary statistics for timing samples.
//!
//! Wall-clock samples from a benchmark run are small (a handful of
//! repetitions) and contaminated by scheduler noise, so the benchmark
//! trajectory quotes **median** and **MAD** (median absolute deviation
//! from the median) rather than mean and standard deviation: one slow
//! outlier moves the mean arbitrarily but leaves the median untouched,
//! and the MAD gives the regression detector a scale-free noise band to
//! guard its wall-clock gate with.

/// The median of `samples`; even-length inputs average the two middle
/// order statistics. The input order is irrelevant (the slice is
/// sorted into a scratch copy).
///
/// # Panics
///
/// Panics on an empty slice — a benchmark cell always has at least one
/// sample.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timing samples are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The median absolute deviation from the median — the robust analogue
/// of the standard deviation (unscaled: no consistency factor).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Robust summary of one benchmark cell's timing samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustStats {
    /// Median sample.
    pub median: f64,
    /// Median absolute deviation from the median.
    pub mad: f64,
    /// Smallest sample.
    pub min: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

impl RobustStats {
    /// Summarizes `samples` (order-independent).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        Self {
            median: median(samples),
            mad: mad(samples),
            min: samples
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min),
            samples: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn median_ignores_order() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), median(&[5.0, 9.0, 1.0]));
    }

    #[test]
    fn mad_is_zero_for_constant_samples() {
        assert_eq!(mad(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn mad_resists_one_outlier() {
        // One wild sample leaves both median and MAD small.
        let stats = RobustStats::of(&[10.0, 11.0, 10.0, 9.0, 500.0]);
        assert_eq!(stats.median, 10.0);
        assert_eq!(stats.mad, 1.0);
        assert_eq!(stats.min, 9.0);
        assert_eq!(stats.samples, 5);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn median_of_empty_panics() {
        median(&[]);
    }
}
