//! The paper's efficiency metrics: `ΔFC%`, `ΔL%` and `NLFCE`.
//!
//! Paper §3: compare mutation-generated data against a pseudo-random
//! baseline on gate-level stuck-at coverage.
//!
//! * `ΔFC%` — relative fault-coverage gain at **equal length**:
//!   `100 · (MFC(L) − RFC(L)) / RFC(L)` with `L` the mutation data's
//!   length.
//! * `ΔL%` — relative length gain at **equal coverage**:
//!   `100 · (L_r − L_m) / L_r` where `L_r` is the shortest random prefix
//!   reaching the mutation data's final coverage.
//! * `NLFCE = ΔFC% · ΔL%` — Table 1 confirms the plain product (e.g. b01
//!   LOR: `0.66 × 10.84 = 7.16`).
//!
//! Edge cases are explicit in [`NlfceInputs::compute`]'s documentation.

use crate::curve::CoverageCurve;
use std::fmt;

/// Inputs to an NLFCE computation: the mutation-data coverage curve and
/// the pseudo-random baseline curve (usually much longer).
#[derive(Debug, Clone)]
pub struct NlfceInputs<'a> {
    /// Coverage of the mutation-generated validation data.
    pub mutation: &'a CoverageCurve,
    /// Coverage of the pseudo-random baseline.
    pub random: &'a CoverageCurve,
}

/// The three paper metrics for one (circuit, data) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nlfce {
    /// Relative fault-coverage gain at equal length, in percent.
    pub delta_fc_pct: f64,
    /// Relative length gain at equal coverage, in percent.
    pub delta_l_pct: f64,
    /// The product `ΔFC% · ΔL%`.
    pub nlfce: f64,
    /// Mutation data length used as the comparison point.
    pub mutation_len: usize,
    /// Random prefix length needed to match the mutation coverage
    /// (`None` when the baseline never got there; `ΔL%` then uses the
    /// full baseline length as a conservative lower bound).
    pub random_len_at_equal_fc: Option<usize>,
}

impl NlfceInputs<'_> {
    /// Computes `ΔFC%`, `ΔL%` and their product.
    ///
    /// Conventions for degenerate cases, chosen so the metric stays
    /// finite and monotone in the mutation data's quality:
    ///
    /// * `RFC(L) = 0` with `MFC(L) > 0` → `ΔFC% = 100 · MFC(L)`
    ///   (percentage points against an empty baseline);
    /// * both coverages zero → `ΔFC% = 0`;
    /// * baseline never reaches the mutation coverage → `ΔL%` uses the
    ///   full baseline length `L_r = random.len()` as a lower bound;
    /// * empty mutation data → all three metrics are 0.
    pub fn compute(&self) -> Nlfce {
        let mutation_len = self.mutation.len();
        if mutation_len == 0 {
            return Nlfce {
                delta_fc_pct: 0.0,
                delta_l_pct: 0.0,
                nlfce: 0.0,
                mutation_len: 0,
                random_len_at_equal_fc: None,
            };
        }
        let mfc = self.mutation.at(mutation_len);
        let rfc = self.random.at(mutation_len);
        let delta_fc_pct = if rfc > 0.0 {
            100.0 * (mfc - rfc) / rfc
        } else {
            100.0 * mfc
        };

        let target = self.mutation.final_coverage();
        let random_len_at_equal_fc = self.random.length_to_reach(target);
        let effective_random_len = random_len_at_equal_fc.unwrap_or(self.random.len());
        let delta_l_pct = if effective_random_len == 0 {
            0.0
        } else {
            100.0 * (effective_random_len as f64 - mutation_len as f64)
                / effective_random_len as f64
        };

        Nlfce {
            delta_fc_pct,
            delta_l_pct,
            nlfce: signed_product(delta_fc_pct, delta_l_pct),
            mutation_len,
            random_len_at_equal_fc,
        }
    }
}

/// `ΔFC% · ΔL%` with a sign guard: losing on **both** axes must not
/// read as a (positive) win, so a doubly-negative pair yields the
/// negated product. Single-axis losses are already negative.
fn signed_product(delta_fc: f64, delta_l: f64) -> f64 {
    let product = delta_fc * delta_l;
    if delta_fc < 0.0 && delta_l < 0.0 {
        -product
    } else {
        product
    }
}

impl fmt::Display for Nlfce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dFC%={:.2} dL%={:.2} NLFCE={:+.1}",
            self.delta_fc_pct, self.delta_l_pct, self.nlfce
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(v: &[f64]) -> CoverageCurve {
        CoverageCurve::new(v.to_vec())
    }

    #[test]
    fn textbook_case() {
        // Mutation: 4 vectors to 80%; random: needs 16 vectors for 80%.
        let mutation = curve(&[0.40, 0.60, 0.75, 0.80]);
        let random_values: Vec<f64> = (1..=20).map(|i| (i as f64 * 0.05).min(1.0)).collect();
        let random = curve(&random_values);
        let m = NlfceInputs {
            mutation: &mutation,
            random: &random,
        }
        .compute();
        // At L=4: MFC=0.80, RFC=0.20 → ΔFC% = 300.
        assert!((m.delta_fc_pct - 300.0).abs() < 1e-9, "{m:?}");
        // Random reaches 0.80 at vector 16 → ΔL% = 100·(16−4)/16 = 75.
        assert_eq!(m.random_len_at_equal_fc, Some(16));
        assert!((m.delta_l_pct - 75.0).abs() < 1e-9);
        // NLFCE is the plain product of the two percentages (paper
        // Table 1 arithmetic).
        assert!((m.nlfce - 300.0 * 75.0).abs() < 1e-6);
    }

    #[test]
    fn nlfce_is_the_product_scaled_like_the_paper() {
        // Reproduce the paper's b01/CR row arithmetic: 2.32 × 37.60 ≈ 87.3.
        let m = Nlfce {
            delta_fc_pct: 2.32,
            delta_l_pct: 37.60,
            nlfce: 2.32 * 37.60,
            mutation_len: 10,
            random_len_at_equal_fc: Some(16),
        };
        assert!((m.nlfce - 87.232).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_uses_percentage_points() {
        let mutation = curve(&[0.5]);
        let random = curve(&[0.0, 0.0, 0.0]);
        let m = NlfceInputs {
            mutation: &mutation,
            random: &random,
        }
        .compute();
        assert!((m.delta_fc_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_uses_baseline_length() {
        let mutation = curve(&[0.9]);
        let random_values: Vec<f64> = (1..=50).map(|i| i as f64 * 0.01).collect();
        let random = curve(&random_values);
        let m = NlfceInputs {
            mutation: &mutation,
            random: &random,
        }
        .compute();
        assert_eq!(m.random_len_at_equal_fc, None);
        // ΔL% = 100·(50−1)/50 = 98.
        assert!((m.delta_l_pct - 98.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mutation_data_is_all_zero() {
        let mutation = curve(&[]);
        let random = curve(&[0.5]);
        let m = NlfceInputs {
            mutation: &mutation,
            random: &random,
        }
        .compute();
        assert_eq!(m.delta_fc_pct, 0.0);
        assert_eq!(m.delta_l_pct, 0.0);
        assert_eq!(m.nlfce, 0.0);
    }

    #[test]
    fn worse_than_random_goes_negative() {
        let mutation = curve(&[0.1, 0.1, 0.1, 0.1]);
        let random = curve(&[0.2, 0.4, 0.6, 0.8]);
        let m = NlfceInputs {
            mutation: &mutation,
            random: &random,
        }
        .compute();
        assert!(m.delta_fc_pct < 0.0);
        // Losing on both axes must be reported as a loss.
        assert!(m.nlfce <= 0.0, "{m:?}");
    }

    #[test]
    fn signed_product_conventions() {
        assert_eq!(signed_product(2.0, 3.0), 6.0);
        assert_eq!(signed_product(-2.0, 3.0), -6.0);
        assert_eq!(signed_product(2.0, -3.0), -6.0);
        assert_eq!(signed_product(-2.0, -3.0), -6.0, "double loss stays a loss");
    }

    #[test]
    fn display_format() {
        let m = Nlfce {
            delta_fc_pct: 1.5,
            delta_l_pct: 20.0,
            nlfce: 30.0,
            mutation_len: 5,
            random_len_at_equal_fc: Some(9),
        };
        assert_eq!(m.to_string(), "dFC%=1.50 dL%=20.00 NLFCE=+30.0");
    }
}
