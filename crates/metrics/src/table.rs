//! Fixed-width ASCII table rendering shared by the bench binaries.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use musa_metrics::{Align, Table};
///
/// let mut table = Table::new(vec![
///     ("Circuit", Align::Left),
///     ("NLFCE", Align::Right),
/// ]);
/// table.row(vec!["b01".into(), "+340".into()]);
/// let text = table.render();
/// assert!(text.contains("Circuit"));
/// assert!(text.contains("+340"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers and alignments.
    pub fn new(columns: Vec<(&str, Align)>) -> Self {
        Self {
            headers: columns.iter().map(|(h, _)| h.to_string()).collect(),
            aligns: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for i in 0..n {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat(' ').take(pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat(' ').take(pad));
                        out.push_str(cell);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.extend(std::iter::repeat('-').take(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio as a percentage with two decimals (`93.41`).
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats an NLFCE value the way the paper prints it (`+340`).
pub fn signed0(x: f64) -> String {
    format!("{x:+.0}")
}

/// Formats a value with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec![("Name", Align::Left), ("Value", Align::Right)]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("12345"));
        // Right column aligns: "1" sits at the same end column.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_arity_checked() {
        let mut t = Table::new(vec![("A", Align::Left)]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.934123), "93.41");
        assert_eq!(signed0(340.2), "+340");
        assert_eq!(signed0(-12.7), "-13");
        assert_eq!(f2(4.5678), "4.57");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec![("A", Align::Left)]);
        t.row(vec!["x".into()]);
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.row_count(), 1);
    }
}
