//! Fault-coverage-versus-test-length curves.

use std::fmt;

/// A cumulative coverage curve: `values[t]` is the fraction of faults
/// detected by the first `t + 1` vectors.
///
/// # Examples
///
/// ```
/// use musa_metrics::CoverageCurve;
///
/// let curve = CoverageCurve::new(vec![0.10, 0.40, 0.40, 0.85]);
/// assert_eq!(curve.len(), 4);
/// assert_eq!(curve.at(2), 0.40);
/// assert_eq!(curve.final_coverage(), 0.85);
/// assert_eq!(curve.length_to_reach(0.40), Some(2));
/// assert_eq!(curve.length_to_reach(0.99), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    values: Vec<f64>,
}

impl CoverageCurve {
    /// Wraps raw cumulative values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]` or the sequence decreases
    /// (cumulative coverage is monotone by definition).
    pub fn new(values: Vec<f64>) -> Self {
        for (i, &v) in values.iter().enumerate() {
            assert!((0.0..=1.0).contains(&v), "coverage {v} out of [0,1] at {i}");
            if i > 0 {
                assert!(
                    v + 1e-12 >= values[i - 1],
                    "coverage decreases at index {i}: {} -> {v}",
                    values[i - 1]
                );
            }
        }
        Self { values }
    }

    /// Number of vectors the curve covers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no vectors were applied.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Coverage after `len` vectors (`len` is clamped to the curve).
    /// Zero vectors give zero coverage.
    pub fn at(&self, len: usize) -> f64 {
        if len == 0 || self.values.is_empty() {
            0.0
        } else {
            self.values[(len - 1).min(self.values.len() - 1)]
        }
    }

    /// Final coverage (0.0 for an empty curve).
    pub fn final_coverage(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    /// The shortest prefix length reaching at least `target` coverage,
    /// or `None` if the curve never gets there.
    pub fn length_to_reach(&self, target: f64) -> Option<usize> {
        if target <= 0.0 {
            return Some(0);
        }
        self.values
            .iter()
            .position(|&v| v + 1e-12 >= target)
            .map(|i| i + 1)
    }

    /// The raw cumulative values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Down-samples the curve to at most `points` evenly spaced samples
    /// (always keeping the final value) — for compact plotting.
    pub fn sample(&self, points: usize) -> Vec<(usize, f64)> {
        if self.values.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.values.len();
        let step = (n as f64 / points as f64).max(1.0);
        let mut out = Vec::new();
        let mut cursor = 0f64;
        while (cursor as usize) < n {
            let i = cursor as usize;
            out.push((i + 1, self.values[i]));
            cursor += step;
        }
        if out.last().map(|&(len, _)| len) != Some(n) {
            out.push((n, self.values[n - 1]));
        }
        out
    }
}

impl fmt::Display for CoverageCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage curve: {} vectors, final {:.2}%",
            self.len(),
            100.0 * self.final_coverage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_clamps_and_zero_len_is_zero() {
        let c = CoverageCurve::new(vec![0.2, 0.5, 0.9]);
        assert_eq!(c.at(0), 0.0);
        assert_eq!(c.at(1), 0.2);
        assert_eq!(c.at(3), 0.9);
        assert_eq!(c.at(1000), 0.9);
    }

    #[test]
    fn length_to_reach_boundaries() {
        let c = CoverageCurve::new(vec![0.2, 0.5, 0.9]);
        assert_eq!(c.length_to_reach(0.0), Some(0));
        assert_eq!(c.length_to_reach(0.2), Some(1));
        assert_eq!(c.length_to_reach(0.51), Some(3));
        assert_eq!(c.length_to_reach(0.90), Some(3));
        assert_eq!(c.length_to_reach(0.95), None);
    }

    #[test]
    fn empty_curve() {
        let c = CoverageCurve::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.final_coverage(), 0.0);
        assert_eq!(c.at(5), 0.0);
        assert_eq!(c.length_to_reach(0.5), None);
        assert!(c.sample(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "decreases")]
    fn rejects_decreasing() {
        let _ = CoverageCurve::new(vec![0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_out_of_range() {
        let _ = CoverageCurve::new(vec![1.5]);
    }

    #[test]
    fn sample_keeps_endpoint() {
        let c = CoverageCurve::new((1..=100).map(|i| i as f64 / 100.0).collect());
        let s = c.sample(10);
        assert!(s.len() <= 11);
        assert_eq!(s.last().unwrap().0, 100);
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_summary() {
        let c = CoverageCurve::new(vec![0.25, 0.75]);
        assert_eq!(c.to_string(), "coverage curve: 2 vectors, final 75.00%");
    }
}
