//! Deterministic pseudo-random sources for reproducible EDA runs.
//!
//! Every stochastic component in the `musa` workspace (pseudo-random test
//! pattern generation, mutant sampling, hill-climbing search) draws its
//! randomness from this crate so that a single `u64` seed reproduces an
//! entire experiment bit-for-bit, across platforms and crate versions.
//!
//! Three sources are provided:
//!
//! * [`SplitMix64`] — the seeding workhorse; also a fine general stream.
//! * [`XorShift64Star`] — a fast, long-period stream used in inner loops.
//! * [`Lfsr`] — an external-feedback linear-feedback shift register, the
//!   classic hardware pseudo-random test-pattern source the paper's
//!   random baseline models.
//!
//! # Examples
//!
//! ```
//! use musa_prng::{Prng, SplitMix64};
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//!
//! // Same seed, same stream.
//! let mut rng2 = SplitMix64::new(42);
//! assert_eq!(rng2.next_u64(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lfsr;
mod splitmix;
mod xorshift;

pub use lfsr::{Lfsr, LfsrError};
pub use splitmix::SplitMix64;
pub use xorshift::XorShift64Star;

/// A deterministic stream of pseudo-random `u64` values.
///
/// The trait deliberately mirrors the tiny core of `rand::RngCore` without
/// depending on it: EDA reproducibility requires the stream definition to
/// live in this workspace, pinned by these implementations' tests.
///
/// # Examples
///
/// ```
/// use musa_prng::{Prng, XorShift64Star};
///
/// let mut rng = XorShift64Star::new(7);
/// let dice = rng.below(6) + 1;
/// assert!((1..=6).contains(&dice));
/// ```
pub trait Prng {
    /// Returns the next 64 uniformly distributed pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a pseudo-random value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection so the result
    /// is unbiased for every `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire 2019: unbiased bounded integers via 128-bit multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a pseudo-random `f64` uniformly distributed in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a pseudo-random value masked to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > 64`.
    fn bits(&mut self, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "bit width must be in 1..=64");
        if width == 64 {
            self.next_u64()
        } else {
            self.next_u64() & ((1u64 << width) - 1)
        }
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir sampling).
    ///
    /// The result is sorted ascending. If `k >= n` all indices are
    /// returned.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }

    /// Picks a reference to a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range() {
        let mut rng = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 7, 64, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.below(0);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = XorShift64Star::new(99);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bits_masks_width() {
        let mut rng = SplitMix64::new(3);
        for width in 1..=64u32 {
            let v = rng.bits(width);
            if width < 64 {
                assert!(v < (1u64 << width));
            }
        }
    }

    #[test]
    #[should_panic]
    fn bits_zero_width_panics() {
        let mut rng = SplitMix64::new(3);
        let _ = rng.bits(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = SplitMix64::new(11);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        for w in sample.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*sample.last().unwrap() < 1000);
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut rng = SplitMix64::new(11);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(rng.sample_indices(5, 99), vec![0, 1, 2, 3, 4]);
        assert_eq!(rng.sample_indices(0, 0), Vec::<usize>::new());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SplitMix64::new(2);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SplitMix64::new(23);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
