//! SplitMix64 — the canonical 64-bit seeding generator.

use crate::Prng;

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Period 2⁶⁴; every seed, including 0, is valid. It is used throughout the
/// workspace both as a general-purpose stream and to expand a single `u64`
/// experiment seed into independent sub-seeds for each pipeline stage.
///
/// # Examples
///
/// ```
/// use musa_prng::{Prng, SplitMix64};
///
/// let mut seeder = SplitMix64::new(0xDEADBEEF);
/// let stage_a_seed = seeder.next_u64();
/// let stage_b_seed = seeder.next_u64();
/// assert_ne!(stage_a_seed, stage_b_seed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current internal state (useful for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the next value of this stream, so calling
    /// `split()` repeatedly yields statistically independent generators.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Prng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the public-domain C implementation
    /// (Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>).
    #[test]
    fn matches_reference_vectors() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);

        // Pinned from this implementation after validating the seed-0
        // stream against the reference; guards against regressions.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn split_children_are_independent_streams() {
        let mut parent = SplitMix64::new(7);
        let mut a = parent.split();
        let mut b = parent.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn default_equals_seed_zero() {
        assert_eq!(SplitMix64::default(), SplitMix64::new(0));
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = SplitMix64::new(99);
        let _ = rng.next_u64();
        let snapshot = rng.state();
        let mut restored = SplitMix64::new(0);
        restored.state = snapshot;
        // Direct state restoration is private; rebuild via new + skip.
        let mut replay = SplitMix64::new(99);
        let _ = replay.next_u64();
        assert_eq!(replay.next_u64(), rng.next_u64());
        let _ = restored;
    }
}
