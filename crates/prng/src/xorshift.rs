//! XorShift64* — a fast inner-loop generator.

use crate::{Prng, SplitMix64};

/// XorShift64* pseudo-random generator (Vigna, 2016).
///
/// Period 2⁶⁴ − 1 over its non-zero states; faster than [`SplitMix64`] in
/// tight simulation loops. A zero seed is remapped through SplitMix64 so
/// every `u64` is a valid seed.
///
/// # Examples
///
/// ```
/// use musa_prng::{Prng, XorShift64Star};
///
/// let mut rng = XorShift64Star::new(2024);
/// let sample: Vec<u64> = (0..4).map(|_| rng.below(100)).collect();
/// assert!(sample.iter().all(|&x| x < 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. All seeds (including 0) are valid:
    /// the raw seed is conditioned through one SplitMix64 step and the rare
    /// all-zero state is replaced by a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        let conditioned = SplitMix64::new(seed).next_u64();
        Self {
            state: if conditioned == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                conditioned
            },
        }
    }
}

impl Default for XorShift64Star {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Prng for XorShift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_valid_and_nonconstant() {
        let mut rng = XorShift64Star::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = XorShift64Star::new(31337);
        let mut b = XorShift64Star::new(31337);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_never_becomes_zero() {
        // xorshift state 0 is a fixed point; ensure conditioning avoids it.
        let mut rng = XorShift64Star::new(0xFFFF_FFFF_FFFF_FFFF);
        for _ in 0..10_000 {
            let _ = rng.next_u64();
            assert_ne!(rng.state, 0);
        }
    }
}
