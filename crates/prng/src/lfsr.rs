//! External-feedback linear-feedback shift register.
//!
//! LFSRs are the canonical hardware pseudo-random pattern source used for
//! logic built-in self-test and as the “pseudo-random test sets generally
//! used as initial test sets” that the paper's random baseline models
//! (paper §3).

use crate::Prng;

/// Maximal-length feedback polynomials (taps) for LFSR widths 2..=64.
///
/// Entry `i` holds the tap mask for a width-`i` register; index 0 and 1 are
/// unused. Taps from the standard Xilinx/“taps table” listings; each mask
/// includes the feedback from the most significant stage.
const TAPS: [u64; 65] = {
    let mut t = [0u64; 65];
    // tap positions given as 1-based bit indices of a Fibonacci LFSR.
    // mask = OR of (1 << (pos-1)).
    t[2] = (1 << 1) | 1; // x^2 + x + 1
    t[3] = (1 << 2) | (1 << 1); // 3,2
    t[4] = (1 << 3) | (1 << 2); // 4,3
    t[5] = (1 << 4) | (1 << 2); // 5,3
    t[6] = (1 << 5) | (1 << 4); // 6,5
    t[7] = (1 << 6) | (1 << 5); // 7,6
    t[8] = (1 << 7) | (1 << 5) | (1 << 4) | (1 << 3); // 8,6,5,4
    t[9] = (1 << 8) | (1 << 4); // 9,5
    t[10] = (1 << 9) | (1 << 6); // 10,7
    t[11] = (1 << 10) | (1 << 8); // 11,9
    t[12] = (1 << 11) | (1 << 5) | (1 << 3) | 1; // 12,6,4,1
    t[13] = (1 << 12) | (1 << 3) | (1 << 2) | 1; // 13,4,3,1
    t[14] = (1 << 13) | (1 << 4) | (1 << 2) | 1; // 14,5,3,1
    t[15] = (1 << 14) | (1 << 13); // 15,14
    t[16] = (1 << 15) | (1 << 14) | (1 << 12) | (1 << 3); // 16,15,13,4
    t[17] = (1 << 16) | (1 << 13); // 17,14
    t[18] = (1 << 17) | (1 << 10); // 18,11
    t[19] = (1 << 18) | (1 << 5) | (1 << 1) | 1; // 19,6,2,1
    t[20] = (1 << 19) | (1 << 16); // 20,17
    t[21] = (1 << 20) | (1 << 18); // 21,19
    t[22] = (1 << 21) | (1 << 20); // 22,21
    t[23] = (1 << 22) | (1 << 17); // 23,18
    t[24] = (1 << 23) | (1 << 22) | (1 << 21) | (1 << 16); // 24,23,22,17
    t[25] = (1 << 24) | (1 << 21); // 25,22
    t[26] = (1 << 25) | (1 << 5) | (1 << 1) | 1; // 26,6,2,1
    t[27] = (1 << 26) | (1 << 4) | (1 << 1) | 1; // 27,5,2,1
    t[28] = (1 << 27) | (1 << 24); // 28,25
    t[29] = (1 << 28) | (1 << 26); // 29,27
    t[30] = (1 << 29) | (1 << 5) | (1 << 3) | 1; // 30,6,4,1
    t[31] = (1 << 30) | (1 << 27); // 31,28
    t[32] = (1 << 31) | (1 << 21) | (1 << 1) | 1; // 32,22,2,1
    t[33] = (1 << 32) | (1 << 19); // 33,20
    t[34] = (1 << 33) | (1 << 26) | (1 << 1) | 1; // 34,27,2,1
    t[35] = (1 << 34) | (1 << 32); // 35,33
    t[36] = (1 << 35) | (1 << 24); // 36,25
    t[37] = (1 << 36) | (1 << 4) | (1 << 3) | (1 << 2) | (1 << 1) | 1; // 37,5,4,3,2,1
    t[38] = (1 << 37) | (1 << 5) | (1 << 4) | 1; // 38,6,5,1
    t[39] = (1 << 38) | (1 << 34); // 39,35
    t[40] = (1 << 39) | (1 << 37) | (1 << 20) | (1 << 18); // 40,38,21,19
    t[41] = (1 << 40) | (1 << 37); // 41,38
    t[42] = (1 << 41) | (1 << 40) | (1 << 19) | (1 << 18); // 42,41,20,19
    t[43] = (1 << 42) | (1 << 41) | (1 << 37) | (1 << 36); // 43,42,38,37
    t[44] = (1 << 43) | (1 << 42) | (1 << 17) | (1 << 16); // 44,43,18,17
    t[45] = (1 << 44) | (1 << 43) | (1 << 41) | (1 << 40); // 45,44,42,41
    t[46] = (1 << 45) | (1 << 44) | (1 << 25) | (1 << 24); // 46,45,26,25
    t[47] = (1 << 46) | (1 << 41); // 47,42
    t[48] = (1 << 47) | (1 << 46) | (1 << 20) | (1 << 19); // 48,47,21,20
    t[49] = (1 << 48) | (1 << 39); // 49,40
    t[50] = (1 << 49) | (1 << 48) | (1 << 23) | (1 << 22); // 50,49,24,23
    t[51] = (1 << 50) | (1 << 49) | (1 << 35) | (1 << 34); // 51,50,36,35
    t[52] = (1 << 51) | (1 << 48); // 52,49
    t[53] = (1 << 52) | (1 << 51) | (1 << 37) | (1 << 36); // 53,52,38,37
    t[54] = (1 << 53) | (1 << 52) | (1 << 17) | (1 << 16); // 54,53,18,17
    t[55] = (1 << 54) | (1 << 30); // 55,31
    t[56] = (1 << 55) | (1 << 54) | (1 << 34) | (1 << 33); // 56,55,35,34
    t[57] = (1 << 56) | (1 << 49); // 57,50
    t[58] = (1 << 57) | (1 << 38); // 58,39
    t[59] = (1 << 58) | (1 << 57) | (1 << 37) | (1 << 36); // 59,58,38,37
    t[60] = (1 << 59) | (1 << 58); // 60,59
    t[61] = (1 << 60) | (1 << 59) | (1 << 45) | (1 << 44); // 61,60,46,45
    t[62] = (1 << 61) | (1 << 60) | (1 << 5) | (1 << 4); // 62,61,6,5
    t[63] = (1 << 62) | (1 << 61); // 63,62
    t[64] = (1 << 63) | (1 << 62) | (1 << 60) | (1 << 59); // 64,63,61,60
    t
};

/// A Fibonacci (external-feedback) linear-feedback shift register.
///
/// A width-`w` maximal-length LFSR cycles through all `2^w − 1` non-zero
/// states. [`Lfsr::next_u64`] shifts 64 times per call so the LFSR can also
/// serve as a generic [`Prng`], while [`Lfsr::step`] exposes the per-cycle
/// hardware behaviour used by the pseudo-random pattern generator.
///
/// # Examples
///
/// ```
/// use musa_prng::Lfsr;
///
/// let mut lfsr = Lfsr::new(8, 0b1)?;
/// // A maximal 8-bit LFSR visits all 255 non-zero states.
/// let start = lfsr.state();
/// let mut period = 0u32;
/// loop {
///     lfsr.step();
///     period += 1;
///     if lfsr.state() == start { break; }
/// }
/// assert_eq!(period, 255);
/// # Ok::<(), musa_prng::LfsrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: u32,
    taps: u64,
    state: u64,
}

/// Error constructing an [`Lfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfsrError {
    /// Width outside the supported `2..=64` range.
    UnsupportedWidth(u32),
    /// An all-zero seed would lock the register.
    ZeroSeed,
}

impl std::fmt::Display for LfsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LfsrError::UnsupportedWidth(w) => {
                write!(f, "unsupported LFSR width {w}, expected 2..=64")
            }
            LfsrError::ZeroSeed => write!(f, "LFSR seed must be non-zero"),
        }
    }
}

impl std::error::Error for LfsrError {}

impl Lfsr {
    /// Creates a maximal-length LFSR of the given width.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::UnsupportedWidth`] for widths outside `2..=64`
    /// and [`LfsrError::ZeroSeed`] when the masked seed is zero (an LFSR in
    /// the all-zero state never leaves it).
    pub fn new(width: u32, seed: u64) -> Result<Self, LfsrError> {
        if !(2..=64).contains(&width) {
            return Err(LfsrError::UnsupportedWidth(width));
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let state = seed & mask;
        if state == 0 {
            return Err(LfsrError::ZeroSeed);
        }
        Ok(Self {
            width,
            taps: TAPS[width as usize],
            state,
        })
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register contents (low `width` bits).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the register one clock cycle and returns the new state.
    pub fn step(&mut self) -> u64 {
        let feedback = (self.state & self.taps).count_ones() as u64 & 1;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        self.state = ((self.state << 1) | feedback) & mask;
        self.state
    }
}

impl Prng for Lfsr {
    fn next_u64(&mut self) -> u64 {
        // Collect one output bit (the MSB of the register) per clock.
        let mut out = 0u64;
        for _ in 0..64 {
            self.step();
            out = (out << 1) | (self.state >> (self.width - 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn period(width: u32) -> u64 {
        let mut lfsr = Lfsr::new(width, 1).unwrap();
        let start = lfsr.state();
        let mut n = 0u64;
        loop {
            lfsr.step();
            n += 1;
            if lfsr.state() == start {
                return n;
            }
            assert!(n <= 1 << width, "period overflow at width {width}");
        }
    }

    #[test]
    fn small_widths_are_maximal_length() {
        for width in 2..=16u32 {
            assert_eq!(period(width), (1u64 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn medium_widths_are_maximal_length() {
        for width in [17u32, 18, 19, 20] {
            assert_eq!(period(width), (1u64 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn zero_seed_rejected() {
        assert_eq!(Lfsr::new(8, 0), Err(LfsrError::ZeroSeed));
        // Seed with only high garbage bits masks down to zero.
        assert_eq!(Lfsr::new(8, 0xFF00), Err(LfsrError::ZeroSeed));
    }

    #[test]
    fn unsupported_widths_rejected() {
        assert_eq!(Lfsr::new(0, 1), Err(LfsrError::UnsupportedWidth(0)));
        assert_eq!(Lfsr::new(1, 1), Err(LfsrError::UnsupportedWidth(1)));
        assert_eq!(Lfsr::new(65, 1), Err(LfsrError::UnsupportedWidth(65)));
    }

    #[test]
    fn state_never_zero() {
        for width in [2u32, 3, 8, 16, 32, 64] {
            let mut lfsr = Lfsr::new(width, 0xABCD_EF12_3456_789A).unwrap();
            for _ in 0..10_000 {
                lfsr.step();
                assert_ne!(lfsr.state(), 0, "width {width}");
            }
        }
    }

    #[test]
    fn prng_interface_produces_varied_output() {
        let mut lfsr = Lfsr::new(32, 1).unwrap();
        let a = lfsr.next_u64();
        let b = lfsr.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            LfsrError::UnsupportedWidth(65).to_string(),
            "unsupported LFSR width 65, expected 2..=64"
        );
        assert_eq!(LfsrError::ZeroSeed.to_string(), "LFSR seed must be non-zero");
    }
}
