//! Differential tests for dominance fault-list reduction.
//!
//! The contract under test: reduced simulation reports the **same
//! detected/undetected verdict for every collapsed fault** as full
//! simulation — hence identical coverage, Table 1/2 numbers and
//! reports — while strictly fewer faults occupy simulation lanes on
//! the benches with reducible structure (the acceptance names b03 and
//! c432).

use musa_circuits::Benchmark;
use musa_core::{ExperimentConfig, Table1, Table2};
use musa_mutation::MutationOperator;
use musa_netlist::{
    collapsed_faults, fault_simulate_sessions, fault_simulate_sessions_reduced, reduce_faults,
    FaultPlan, Pattern,
};
use musa_testgen::testbench_patterns;
use proptest::prelude::*;

/// Compares reduced against full simulation on one bench and vector
/// set; returns `faults_simulated` from the reduced run.
fn assert_reduced_matches_full(bench: Benchmark, sessions: &[Vec<Pattern>]) -> (usize, usize) {
    let circuit = bench.load().unwrap();
    let nl = &circuit.netlist;
    let faults = collapsed_faults(nl);
    let full = fault_simulate_sessions(nl, &faults, sessions);
    let reduction = reduce_faults(nl, &faults);
    let reduced = fault_simulate_sessions_reduced(nl, &reduction, sessions);

    assert_eq!(reduced.detected_count(), full.detected_count(), "{bench}");
    assert_eq!(
        reduced.coverage().to_bits(),
        full.coverage().to_bits(),
        "{bench}: coverage must be bit-identical"
    );
    for (i, (r, f)) in reduced
        .first_detected
        .iter()
        .zip(&full.first_detected)
        .enumerate()
    {
        match reduction.plan(i) {
            FaultPlan::Simulate | FaultPlan::Observe { .. } => assert_eq!(
                r,
                f,
                "{bench}: {} must be time-exact",
                faults[i].describe(nl)
            ),
            FaultPlan::Credit(_) => match (r, f) {
                (Some(rt), Some(ft)) => assert!(rt >= ft, "{bench}: credit is an upper bound"),
                (None, None) => {}
                _ => panic!(
                    "{bench}: verdict mismatch on {}: reduced {r:?} vs full {f:?}",
                    faults[i].describe(nl)
                ),
            },
        }
    }
    (reduced.faults_simulated, faults.len())
}

fn lfsr_sessions(bench: Benchmark, len: usize, seed: u64) -> Vec<Vec<Pattern>> {
    let circuit = bench.load().unwrap();
    let patterns = testbench_patterns(&circuit.netlist, len, seed);
    let half = patterns.len() / 2;
    vec![patterns[..half].to_vec(), patterns[half..].to_vec()]
}

#[test]
fn reduced_simulation_matches_full_on_every_bundled_bench() {
    for bench in Benchmark::all() {
        let sessions = lfsr_sessions(bench, 48, 0xD0_1234 ^ bench.name().len() as u64);
        let (simulated, total) = assert_reduced_matches_full(bench, &sessions);
        assert!(simulated <= total, "{bench}");
    }
}

#[test]
fn b03_and_c432_strictly_reduce_the_simulated_lane_count() {
    // The acceptance criterion: coverage identical (asserted inside the
    // helper) while fewer faults occupy lanes on b03 and c432.
    for bench in [Benchmark::B03, Benchmark::C432] {
        let sessions = lfsr_sessions(bench, 64, 0xACCE97);
        let (simulated, total) = assert_reduced_matches_full(bench, &sessions);
        assert!(
            simulated < total,
            "{bench}: expected a strict reduction, got {simulated} of {total}"
        );
    }
    // And the reduction itself drops faults statically on both.
    for bench in [Benchmark::B03, Benchmark::C432] {
        let circuit = bench.load().unwrap();
        let faults = collapsed_faults(&circuit.netlist);
        let reduction = reduce_faults(&circuit.netlist, &faults);
        assert!(reduction.dropped_count() > 0, "{bench}");
    }
}

#[test]
fn table1_is_bit_identical_with_reduction_on_and_off() {
    let operators = [MutationOperator::Lor, MutationOperator::Vr];
    let config = ExperimentConfig::fast(0x7AB1E);
    let on = Table1::measure(
        &[Benchmark::C17, Benchmark::B01],
        &operators,
        &config.with_fault_reduce(true),
    )
    .unwrap();
    let off = Table1::measure(
        &[Benchmark::C17, Benchmark::B01],
        &operators,
        &config.with_fault_reduce(false),
    )
    .unwrap();
    // Everything except the lane-occupancy report must match bitwise
    // (Debug round-trips f64 exactly).
    assert_eq!(format!("{:?}", on.rows), format!("{:?}", off.rows));
    assert_eq!(on.render(), off.render());
    // The occupancy report itself differs: reduction found lanes to drop.
    let simulated =
        |t: &Table1| -> usize { t.profiles.iter().flat_map(|p| &p.rows).map(|r| r.fault_sim.faults_simulated).sum() };
    assert!(simulated(&on) < simulated(&off));
}

#[test]
fn table2_is_bit_identical_with_reduction_on_and_off_on_b03_and_c432() {
    // A deliberately small custom config keeps the debug-build cost
    // sane; the identity claim is config-independent.
    let mut config = ExperimentConfig::fast(0x7AB2E);
    config.repetitions = 1;
    let on = Table2::measure(
        &[Benchmark::B03, Benchmark::C432],
        0.25,
        &config.with_fault_reduce(true),
    )
    .unwrap();
    let off = Table2::measure(
        &[Benchmark::B03, Benchmark::C432],
        0.25,
        &config.with_fault_reduce(false),
    )
    .unwrap();
    for (row_on, row_off) in on.rows.iter().zip(&off.rows) {
        assert_eq!(row_on.circuit, row_off.circuit);
        assert_eq!(row_on.sampled, row_off.sampled);
        for (a, b) in [
            (&row_on.test_oriented, &row_off.test_oriented),
            (&row_on.random, &row_off.random),
        ] {
            assert_eq!(
                a.mutation_score_pct.to_bits(),
                b.mutation_score_pct.to_bits(),
                "{}", row_on.circuit
            );
            assert_eq!(a.nlfce.to_bits(), b.nlfce.to_bits(), "{}", row_on.circuit);
            assert_eq!(
                a.metrics.delta_fc_pct.to_bits(),
                b.metrics.delta_fc_pct.to_bits(),
                "{}", row_on.circuit
            );
            assert_eq!(
                a.metrics.delta_l_pct.to_bits(),
                b.metrics.delta_l_pct.to_bits(),
                "{}", row_on.circuit
            );
            assert_eq!(a.fault_sim.faults_total, b.fault_sim.faults_total);
            assert!(a.fault_sim.faults_simulated <= b.fault_sim.faults_simulated);
        }
        assert!(
            row_on.test_oriented.fault_sim.faults_simulated
                < row_off.test_oriented.fault_sim.faults_simulated,
            "{}: reduction must actually drop lanes",
            row_on.circuit
        );
    }
    assert_eq!(on.render(), off.render(), "rendered tables must not drift");
}

proptest! {
    /// Random vectors over bundled circuits: reduced-list simulation
    /// yields the same coverage and detected count as full
    /// collapsed-list simulation.
    #[test]
    fn reduced_coverage_equals_full_on_random_vectors(
        bench_pick in 0usize..4,
        len in 1usize..24,
        seed in proptest::any::<u64>(),
    ) {
        let bench = [Benchmark::C17, Benchmark::B01, Benchmark::B02, Benchmark::B06]
            [bench_pick];
        let circuit = bench.load().unwrap();
        let nl = &circuit.netlist;
        let faults = collapsed_faults(nl);
        let patterns = testbench_patterns(nl, len, seed);
        let half = patterns.len() / 2;
        let sessions = vec![patterns[..half].to_vec(), patterns[half..].to_vec()];
        let full = fault_simulate_sessions(nl, &faults, &sessions);
        let reduction = reduce_faults(nl, &faults);
        let reduced = fault_simulate_sessions_reduced(nl, &reduction, &sessions);
        prop_assert_eq!(reduced.detected_count(), full.detected_count());
        prop_assert_eq!(reduced.coverage().to_bits(), full.coverage().to_bits());
        for (r, f) in reduced.first_detected.iter().zip(&full.first_detected) {
            prop_assert_eq!(r.is_some(), f.is_some());
        }
    }
}
