//! Shared plumbing: behavioral test data → gate-level coverage curves.

use musa_circuits::Circuit;
use musa_metrics::CoverageCurve;
use musa_mutation::TestSequence;
use musa_netlist::{collapsed_faults, fault_simulate_sessions, Fault, Pattern};
use musa_synth::flatten_sequence;
use musa_testgen::testbench_patterns;

/// The gate-level fault universe of a circuit (collapsed single
/// stuck-at list).
pub fn fault_universe(circuit: &Circuit) -> Vec<Fault> {
    collapsed_faults(&circuit.netlist)
}

/// Flattens behavioral test sessions into gate-level pattern sessions.
pub fn sessions_to_patterns(circuit: &Circuit, sessions: &[TestSequence]) -> Vec<Vec<Pattern>> {
    let info = circuit.info();
    sessions
        .iter()
        .map(|s| flatten_sequence(info, s))
        .collect()
}

/// Fault-simulates behavioral sessions on the synthesized netlist and
/// returns the cumulative coverage curve.
pub fn coverage_of_sessions(
    circuit: &Circuit,
    faults: &[Fault],
    sessions: &[TestSequence],
) -> CoverageCurve {
    let patterns = sessions_to_patterns(circuit, sessions);
    let result = fault_simulate_sessions(&circuit.netlist, faults, &patterns);
    CoverageCurve::new(result.coverage_curve())
}

/// Fault-simulates an LFSR pseudo-random baseline of the given length
/// and returns its coverage curve (paper §3's `RFC`).
pub fn random_baseline_curve(
    circuit: &Circuit,
    faults: &[Fault],
    len: usize,
    seed: u64,
) -> CoverageCurve {
    let patterns = testbench_patterns(&circuit.netlist, len, seed);
    let result = fault_simulate_sessions(&circuit.netlist, faults, &[patterns]);
    CoverageCurve::new(result.coverage_curve())
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_circuits::Benchmark;
    use musa_hdl::Bits;

    #[test]
    fn universe_is_nonempty_and_stable() {
        let c17 = Benchmark::C17.load().unwrap();
        let u1 = fault_universe(&c17);
        let u2 = fault_universe(&c17);
        assert!(!u1.is_empty());
        assert_eq!(u1, u2);
    }

    #[test]
    fn coverage_of_exhaustive_c17_sessions_is_full() {
        let c17 = Benchmark::C17.load().unwrap();
        let faults = fault_universe(&c17);
        // All 32 patterns as one behavioral session.
        let session: TestSequence = (0..32u64)
            .map(|p| (0..5).map(|i| Bits::new(1, (p >> i) & 1)).collect())
            .collect();
        let curve = coverage_of_sessions(&c17, &faults, &[session]);
        assert!((curve.final_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(curve.len(), 32);
    }

    #[test]
    fn random_baseline_improves_with_length() {
        let c17 = Benchmark::C17.load().unwrap();
        let faults = fault_universe(&c17);
        let short = random_baseline_curve(&c17, &faults, 4, 9);
        let long = random_baseline_curve(&c17, &faults, 64, 9);
        assert!(long.final_coverage() >= short.final_coverage());
        assert!(long.final_coverage() > 0.9, "64 LFSR patterns saturate c17");
    }

    #[test]
    fn sequential_sessions_flatten_correctly() {
        let b01 = Benchmark::B01.load().unwrap();
        let faults = fault_universe(&b01);
        let session: TestSequence = (0..16u64)
            .map(|i| {
                vec![
                    Bits::new(1, u64::from(i == 0)), // reset pulse first
                    Bits::new(1, i & 1),
                    Bits::new(1, (i >> 1) & 1),
                ]
            })
            .collect();
        let curve = coverage_of_sessions(&b01, &faults, &[session.clone(), session]);
        assert_eq!(curve.len(), 32);
        assert!(curve.final_coverage() > 0.0);
    }
}
