//! Shared plumbing: behavioral test data → gate-level coverage curves.

use musa_circuits::Circuit;
use musa_metrics::CoverageCurve;
use musa_mutation::TestSequence;
use musa_netlist::{
    collapsed_faults, fault_simulate_sessions, fault_simulate_sessions_reduced, reduce_faults,
    Fault, FaultReduction, Pattern,
};
use musa_synth::flatten_sequence;
use musa_testgen::testbench_patterns;

/// The gate-level fault universe of a circuit (collapsed single
/// stuck-at list).
pub fn fault_universe(circuit: &Circuit) -> Vec<Fault> {
    collapsed_faults(&circuit.netlist)
}

/// Lane occupancy of one fault-simulation measurement: how many faults
/// actually occupied simulation lanes versus the full collapsed list.
/// `faults_simulated == faults_total` whenever dominance reduction is
/// off (or credit never landed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSimStats {
    /// Faults that occupied simulation lanes (representatives plus
    /// residuals).
    pub faults_simulated: usize,
    /// Size of the full collapsed fault list the coverage numbers are
    /// quoted against.
    pub faults_total: usize,
}

impl FaultSimStats {
    /// Stats for a full (unreduced) run over `total` faults.
    pub fn full(total: usize) -> Self {
        Self {
            faults_simulated: total,
            faults_total: total,
        }
    }
}

/// The dominance reduction of a circuit's fault universe (see
/// [`musa_netlist::reduce_faults`]).
pub fn reduced_universe(circuit: &Circuit, faults: &[Fault]) -> FaultReduction {
    reduce_faults(&circuit.netlist, faults)
}

/// Flattens behavioral test sessions into gate-level pattern sessions.
pub fn sessions_to_patterns(circuit: &Circuit, sessions: &[TestSequence]) -> Vec<Vec<Pattern>> {
    let info = circuit.info();
    sessions
        .iter()
        .map(|s| flatten_sequence(info, s))
        .collect()
}

/// Fault-simulates behavioral sessions on the synthesized netlist and
/// returns the cumulative coverage curve.
pub fn coverage_of_sessions(
    circuit: &Circuit,
    faults: &[Fault],
    sessions: &[TestSequence],
) -> CoverageCurve {
    let patterns = sessions_to_patterns(circuit, sessions);
    let result = fault_simulate_sessions(&circuit.netlist, faults, &patterns);
    CoverageCurve::new(result.coverage_curve())
}

/// [`coverage_of_sessions`] over a dominance-reduced fault list: only
/// representatives (and residuals) occupy lanes. Final coverage — the
/// only curve point the ΔFC/ΔL metrics read from the *mutation* curve —
/// is exactly the full-simulation value; credited faults' interior
/// indices are upper bounds (see
/// [`musa_netlist::fault_simulate_sessions_reduced`]).
pub fn coverage_of_sessions_reduced(
    circuit: &Circuit,
    reduction: &FaultReduction,
    sessions: &[TestSequence],
) -> (CoverageCurve, FaultSimStats) {
    let patterns = sessions_to_patterns(circuit, sessions);
    let result = fault_simulate_sessions_reduced(&circuit.netlist, reduction, &patterns);
    let stats = FaultSimStats {
        faults_simulated: result.faults_simulated,
        faults_total: reduction.total(),
    };
    (CoverageCurve::new(result.coverage_curve()), stats)
}

/// Fault-simulates an LFSR pseudo-random baseline of the given length
/// and returns its coverage curve (paper §3's `RFC`).
///
/// Always full simulation, regardless of
/// [`crate::ExperimentConfig::fault_reduce`]: the ΔFC/ΔL metrics read
/// this curve's *interior* (coverage at the mutation length, shortest
/// prefix reaching a target), which dominance credit does not preserve
/// bit-exactly.
pub fn random_baseline_curve(
    circuit: &Circuit,
    faults: &[Fault],
    len: usize,
    seed: u64,
) -> CoverageCurve {
    let patterns = testbench_patterns(&circuit.netlist, len, seed);
    let result = fault_simulate_sessions(&circuit.netlist, faults, &[patterns]);
    CoverageCurve::new(result.coverage_curve())
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_circuits::Benchmark;
    use musa_hdl::Bits;

    #[test]
    fn universe_is_nonempty_and_stable() {
        let c17 = Benchmark::C17.load().unwrap();
        let u1 = fault_universe(&c17);
        let u2 = fault_universe(&c17);
        assert!(!u1.is_empty());
        assert_eq!(u1, u2);
    }

    #[test]
    fn coverage_of_exhaustive_c17_sessions_is_full() {
        let c17 = Benchmark::C17.load().unwrap();
        let faults = fault_universe(&c17);
        // All 32 patterns as one behavioral session.
        let session: TestSequence = (0..32u64)
            .map(|p| (0..5).map(|i| Bits::new(1, (p >> i) & 1)).collect())
            .collect();
        let curve = coverage_of_sessions(&c17, &faults, &[session]);
        assert!((curve.final_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(curve.len(), 32);
    }

    #[test]
    fn random_baseline_improves_with_length() {
        let c17 = Benchmark::C17.load().unwrap();
        let faults = fault_universe(&c17);
        let short = random_baseline_curve(&c17, &faults, 4, 9);
        let long = random_baseline_curve(&c17, &faults, 64, 9);
        assert!(long.final_coverage() >= short.final_coverage());
        assert!(long.final_coverage() > 0.9, "64 LFSR patterns saturate c17");
    }

    #[test]
    fn sequential_sessions_flatten_correctly() {
        let b01 = Benchmark::B01.load().unwrap();
        let faults = fault_universe(&b01);
        let session: TestSequence = (0..16u64)
            .map(|i| {
                vec![
                    Bits::new(1, u64::from(i == 0)), // reset pulse first
                    Bits::new(1, i & 1),
                    Bits::new(1, (i >> 1) & 1),
                ]
            })
            .collect();
        let curve = coverage_of_sessions(&b01, &faults, &[session.clone(), session]);
        assert_eq!(curve.len(), 32);
        assert!(curve.final_coverage() > 0.0);
    }
}
