//! Drivers that regenerate the paper's two tables.

use crate::config::ExperimentConfig;
use crate::experiment::{run_sampling_experiment_on, SamplingOutcome};
use crate::profile::OperatorProfile;
use musa_circuits::{Benchmark, CircuitError};
use musa_metrics::{f2, signed0, Align, Table};
use musa_mutation::{generate_mutants, GenerateOptions, MutationError, MutationOperator};
use musa_testgen::SamplingStrategy;
use std::fmt;

/// Errors from the table drivers.
#[derive(Debug)]
pub enum TableError {
    /// A benchmark failed to load (packaging bug).
    Circuit(CircuitError),
    /// Mutation analysis failed.
    Mutation(MutationError),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Circuit(e) => write!(f, "table driver: {e}"),
            TableError::Mutation(e) => write!(f, "table driver: {e}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<CircuitError> for TableError {
    fn from(e: CircuitError) -> Self {
        TableError::Circuit(e)
    }
}

impl From<MutationError> for TableError {
    fn from(e: MutationError) -> Self {
        TableError::Mutation(e)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: String,
    /// Operator acronym.
    pub operator: MutationOperator,
    /// `ΔFC%`.
    pub delta_fc_pct: f64,
    /// `ΔL%`.
    pub delta_l_pct: f64,
    /// `NLFCE`.
    pub nlfce: f64,
}

/// The full Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in circuit-major, operator-minor order.
    pub rows: Vec<Table1Row>,
    /// The per-circuit profiles (reusable for Table 2 weights).
    pub profiles: Vec<OperatorProfile>,
}

impl Table1 {
    /// Measures operator efficiency on the given circuits (paper:
    /// b01, b03, c432, c499 with operators LOR/VR/CVR/CR).
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] if a circuit fails to load or mutation
    /// execution fails.
    pub fn measure(
        benchmarks: &[Benchmark],
        operators: &[MutationOperator],
        config: &ExperimentConfig,
    ) -> Result<Self, TableError> {
        let mut rows = Vec::new();
        let mut profiles = Vec::new();
        for &bench in benchmarks {
            let circuit = bench.load()?;
            let profile = OperatorProfile::measure(&circuit, operators, config)?;
            for r in &profile.rows {
                rows.push(Table1Row {
                    circuit: circuit.name.clone(),
                    operator: r.operator,
                    delta_fc_pct: r.metrics.delta_fc_pct,
                    delta_l_pct: r.metrics.delta_l_pct,
                    nlfce: r.metrics.nlfce,
                });
            }
            profiles.push(profile);
        }
        Ok(Self { rows, profiles })
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            ("Circuit", Align::Left),
            ("Operator", Align::Left),
            ("dFC%", Align::Right),
            ("dL%", Align::Right),
            ("NLFCE", Align::Right),
        ]);
        for row in &self.rows {
            table.row(vec![
                row.circuit.clone(),
                row.operator.acronym().to_string(),
                f2(row.delta_fc_pct),
                f2(row.delta_l_pct),
                signed0(row.nlfce),
            ]);
        }
        table.render()
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// Number of mutants both strategies selected.
    pub sampled: usize,
    /// Test-oriented sampling outcome.
    pub test_oriented: SamplingOutcome,
    /// Random sampling outcome.
    pub random: SamplingOutcome,
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per circuit.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Compares the two sampling strategies at the given fraction
    /// (paper: 10 %), deriving test-oriented weights from a fresh
    /// operator profile per circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] if a circuit fails to load or mutation
    /// execution fails.
    pub fn measure(
        benchmarks: &[Benchmark],
        fraction: f64,
        config: &ExperimentConfig,
    ) -> Result<Self, TableError> {
        let mut rows = Vec::new();
        for &bench in benchmarks {
            let circuit = bench.load()?;
            let profile =
                OperatorProfile::measure(&circuit, &MutationOperator::all(), config)?;
            let weights = profile.weights();
            let population = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let test_oriented = run_sampling_experiment_on(
                &circuit,
                &population,
                SamplingStrategy::test_oriented(fraction, weights),
                config,
            )?;
            let random = run_sampling_experiment_on(
                &circuit,
                &population,
                SamplingStrategy::random(fraction),
                config,
            )?;
            rows.push(Table2Row {
                circuit: circuit.name.clone(),
                sampled: test_oriented.sampled,
                test_oriented,
                random,
            });
        }
        Ok(Self { rows })
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            ("Circuit", Align::Left),
            ("Mutants", Align::Right),
            ("TO MS%", Align::Right),
            ("TO NLFCE", Align::Right),
            ("RS MS%", Align::Right),
            ("RS NLFCE", Align::Right),
        ]);
        for row in &self.rows {
            table.row(vec![
                row.circuit.clone(),
                row.sampled.to_string(),
                f2(row.test_oriented.mutation_score_pct),
                signed0(row.test_oriented.nlfce),
                f2(row.random.mutation_score_pct),
                signed0(row.random.nlfce),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_fast_on_c17() {
        let t = Table1::measure(
            &[Benchmark::C17],
            &[MutationOperator::Lor, MutationOperator::Vr],
            &ExperimentConfig::fast(0x71),
        )
        .unwrap();
        assert!(!t.rows.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("c17"));
        assert!(rendered.contains("LOR"));
        assert!(rendered.contains("NLFCE"));
    }

    #[test]
    fn table2_fast_on_c17() {
        let t = Table2::measure(&[Benchmark::C17], 0.5, &ExperimentConfig::fast(0x72)).unwrap();
        assert_eq!(t.rows.len(), 1);
        let row = &t.rows[0];
        assert_eq!(row.test_oriented.sampled, row.random.sampled);
        let rendered = t.render();
        assert!(rendered.contains("TO MS%"));
        assert!(rendered.contains("c17"));
    }
}
