//! Extension experiments E1–E4 (see `DESIGN.md` §1).
//!
//! The paper's own motivation (§1: validation-data reuse should cut
//! ATPG effort; §5: "further experiments must be conducted") defines
//! these follow-ups:
//!
//! * **E1** — sampling-fraction sweep: MS and NLFCE of both strategies
//!   as the sample grows from 5 % to 100 %.
//! * **E2** — the coverage-versus-length curves behind `ΔFC`/`ΔL`.
//! * **E3** — ATPG top-up: deterministic test generation effort with and
//!   without re-used validation data.
//! * **E4** — equivalence-budget ablation: sensitivity of the Mutation
//!   Score to the equivalent-mutant presumption budget.

use crate::config::ExperimentConfig;
use crate::data::{coverage_of_sessions, fault_universe, random_baseline_curve};
use crate::experiment::{
    classify_survivors, kills_over_sessions, run_sampling_experiment_on, SamplingOutcome,
};
use crate::tables::TableError;
use musa_circuits::{Benchmark, Circuit};
use musa_mutation::{
    generate_mutants, EquivalencePolicy, GenerateOptions, MutationScore,
};
use musa_netlist::{fault_simulate_sessions, Fault, Pattern};
use musa_prng::{Prng, SplitMix64};
use musa_testgen::{
    atpg_all, lfsr_patterns, mutation_guided_tests, MgConfig, OperatorWeights, PodemResult,
    SamplingStrategy,
};

// ---------------------------------------------------------------------
// E1 — sampling-fraction sweep
// ---------------------------------------------------------------------

/// One sweep point: both strategies at one fraction.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sampling fraction.
    pub fraction: f64,
    /// Test-oriented outcome.
    pub test_oriented: SamplingOutcome,
    /// Random outcome.
    pub random: SamplingOutcome,
}

/// Runs E1 on one benchmark.
///
/// # Errors
///
/// Returns a [`TableError`] on load or mutation failures.
pub fn sweep_fractions(
    bench: Benchmark,
    fractions: &[f64],
    config: &ExperimentConfig,
) -> Result<Vec<SweepPoint>, TableError> {
    let circuit = bench.load()?;
    let profile = crate::profile::OperatorProfile::measure(
        &circuit,
        &musa_mutation::MutationOperator::all(),
        config,
    )?;
    let weights = profile.weights();
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let mut points = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let test_oriented = run_sampling_experiment_on(
            &circuit,
            &population,
            SamplingStrategy::test_oriented(fraction, weights_clone(&weights)),
            config,
        )?;
        let random = run_sampling_experiment_on(
            &circuit,
            &population,
            SamplingStrategy::random(fraction),
            config,
        )?;
        points.push(SweepPoint {
            fraction,
            test_oriented,
            random,
        });
    }
    Ok(points)
}

fn weights_clone(w: &OperatorWeights) -> OperatorWeights {
    w.clone()
}

// ---------------------------------------------------------------------
// E2 — coverage-versus-length curves
// ---------------------------------------------------------------------

/// The two curves behind one circuit's ΔFC/ΔL computation.
#[derive(Debug, Clone)]
pub struct CurvePair {
    /// Circuit name.
    pub circuit: String,
    /// `(length, coverage)` samples of the mutation-data curve (MFC).
    pub mutation: Vec<(usize, f64)>,
    /// `(length, coverage)` samples of the pseudo-random curve (RFC).
    pub random: Vec<(usize, f64)>,
}

/// Runs E2 on one benchmark: generates validation data from the whole
/// mutant population and samples both coverage curves.
///
/// # Errors
///
/// Returns a [`TableError`] on load or mutation failures.
pub fn coverage_curves(
    bench: Benchmark,
    points: usize,
    config: &ExperimentConfig,
) -> Result<CurvePair, TableError> {
    let circuit = bench.load()?;
    let faults = fault_universe(&circuit);
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let mg = MgConfig {
        seed: config.seed ^ 0xE2,
        ..config.mg
    };
    let generated = mutation_guided_tests(&circuit.checked, &circuit.name, &population, &mg)
        .map_err(TableError::from)?;
    let mutation = coverage_of_sessions(&circuit, &faults, &generated.sessions);
    let random = random_baseline_curve(
        &circuit,
        &faults,
        config.baseline_len(mutation.len()),
        config.seed ^ 0xE2E2,
    );
    Ok(CurvePair {
        circuit: circuit.name.clone(),
        mutation: mutation.sample(points),
        random: random.sample(points),
    })
}

// ---------------------------------------------------------------------
// E3 — ATPG top-up
// ---------------------------------------------------------------------

/// The initial test set handed to the ATPG stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopUpMode {
    /// No initial data: ATPG targets every fault.
    Scratch,
    /// A pseudo-random prefix (the industry default the paper cites).
    RandomFirst,
    /// Re-used mutation validation data (the paper's proposal).
    ValidationFirst,
}

impl TopUpMode {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            TopUpMode::Scratch => "scratch",
            TopUpMode::RandomFirst => "random-first",
            TopUpMode::ValidationFirst => "validation-first",
        }
    }
}

/// Result of one E3 run.
#[derive(Debug, Clone)]
pub struct TopUpOutcome {
    /// Which initial data was used.
    pub mode: TopUpMode,
    /// Vectors applied before ATPG.
    pub initial_vectors: usize,
    /// Faults still undetected after the initial data (= ATPG targets).
    pub atpg_targets: usize,
    /// PODEM backtracks spent (the paper's "test generation effort").
    pub backtracks: u64,
    /// Deterministic vectors ATPG added.
    pub atpg_vectors: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Final fault coverage over the whole universe.
    pub final_coverage: f64,
}

/// Runs E3 on one *combinational* benchmark for all three modes.
///
/// # Errors
///
/// Returns a [`TableError`] on load or mutation failures.
///
/// # Panics
///
/// Panics if the benchmark is sequential (PODEM is combinational; the
/// paper's c432/c499 are the E3 targets).
pub fn atpg_topup(
    bench: Benchmark,
    backtrack_limit: u64,
    config: &ExperimentConfig,
) -> Result<Vec<TopUpOutcome>, TableError> {
    let circuit = bench.load()?;
    atpg_topup_on(&circuit, backtrack_limit, config)
}

/// [`atpg_topup`] over an already-loaded circuit (spares the re-load
/// when the caller has checked combinationality itself).
///
/// # Errors
///
/// Returns a [`TableError`] on mutation failures.
///
/// # Panics
///
/// Panics if the circuit is sequential (PODEM is combinational; the
/// paper's c432/c499 are the E3 targets).
pub fn atpg_topup_on(
    circuit: &Circuit,
    backtrack_limit: u64,
    config: &ExperimentConfig,
) -> Result<Vec<TopUpOutcome>, TableError> {
    assert!(
        circuit.is_combinational(),
        "E3 targets combinational circuits"
    );
    let faults = fault_universe(circuit);
    let mut seeder = SplitMix64::new(config.seed ^ 0xE3);

    // Validation data from the full mutant population.
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let mg = MgConfig {
        seed: seeder.next_u64(),
        ..config.mg
    };
    let generated = mutation_guided_tests(&circuit.checked, &circuit.name, &population, &mg)
        .map_err(TableError::from)?;
    let validation_patterns: Vec<Pattern> = crate::data::sessions_to_patterns(
        circuit,
        &generated.sessions,
    )
    .into_iter()
    .flatten()
    .collect();
    let random_patterns = lfsr_patterns(
        circuit.netlist.inputs().len(),
        validation_patterns.len().max(1),
        seeder.next_u64(),
    );

    let modes: [(TopUpMode, Vec<Pattern>); 3] = [
        (TopUpMode::Scratch, Vec::new()),
        (TopUpMode::RandomFirst, random_patterns),
        (TopUpMode::ValidationFirst, validation_patterns),
    ];
    let mut outcomes = Vec::with_capacity(3);
    for (mode, initial) in modes {
        outcomes.push(top_up_once(circuit, &faults, mode, initial, backtrack_limit));
    }
    Ok(outcomes)
}

fn top_up_once(
    circuit: &Circuit,
    faults: &[Fault],
    mode: TopUpMode,
    initial: Vec<Pattern>,
    backtrack_limit: u64,
) -> TopUpOutcome {
    let nl = &circuit.netlist;
    let initial_vectors = initial.len();
    let after_initial = fault_simulate_sessions(nl, faults, &[initial]);
    let mut undetected: Vec<Fault> = after_initial.undetected();
    let atpg_targets = undetected.len();

    let mut backtracks = 0u64;
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut atpg_vectors = 0usize;
    let mut detected_total = after_initial.detected_count();

    while let Some(fault) = undetected.first().copied() {
        let (results, stats) = atpg_all(nl, &[fault], backtrack_limit);
        backtracks += stats.backtracks;
        match &results[0] {
            PodemResult::Test(pattern) => {
                atpg_vectors += 1;
                // Fault-drop the new pattern against everything pending.
                let drop = fault_simulate_sessions(nl, &undetected, &[vec![pattern.clone()]]);
                let still: Vec<Fault> = drop.undetected();
                detected_total += undetected.len() - still.len();
                undetected = still;
            }
            PodemResult::Untestable => {
                untestable += 1;
                undetected.remove(0);
            }
            PodemResult::Aborted => {
                aborted += 1;
                undetected.remove(0);
            }
        }
    }
    TopUpOutcome {
        mode,
        initial_vectors,
        atpg_targets,
        backtracks,
        atpg_vectors,
        untestable,
        aborted,
        final_coverage: detected_total as f64 / faults.len().max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// E4 — equivalence-budget ablation
// ---------------------------------------------------------------------

/// One E4 point: the Mutation Score under a given equivalence budget.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Random-simulation budget used for the presumption.
    pub budget: usize,
    /// Mutants classified equivalent under this budget.
    pub equivalent: usize,
    /// The resulting score.
    pub score: MutationScore,
}

/// Runs E4 on one benchmark: fixed validation data (random 10 % sample),
/// varying equivalence budget.
///
/// # Errors
///
/// Returns a [`TableError`] on load or mutation failures.
pub fn equivalence_ablation(
    bench: Benchmark,
    budgets: &[usize],
    config: &ExperimentConfig,
) -> Result<Vec<AblationPoint>, TableError> {
    let circuit = bench.load()?;
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let mut seeder = SplitMix64::new(config.seed ^ 0xE4);
    let selected = musa_testgen::sample_mutants(
        &population,
        &SamplingStrategy::random(0.10),
        seeder.next_u64(),
    );
    let subset: Vec<_> = selected.iter().map(|&i| population[i].clone()).collect();
    let mg = MgConfig {
        seed: seeder.next_u64(),
        ..config.mg
    };
    let generated = mutation_guided_tests(&circuit.checked, &circuit.name, &subset, &mg)
        .map_err(TableError::from)?;
    // The ablation varies the *classification budget*; screening would
    // remove exactly the mutants whose class the budget decides, so the
    // whole population runs unscreened here.
    let kills = kills_over_sessions(
        &circuit,
        &population,
        &generated.sessions,
        config.jobs,
        config.engine,
        config.opt,
        None,
    )?;

    let mut points = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let mut cfg = *config;
        cfg.equivalence = EquivalencePolicy {
            budget,
            ..config.equivalence
        };
        let classes = classify_survivors(&circuit, &population, &kills, &cfg, None)?;
        let score = MutationScore::from_results(&kills, &classes);
        points.push(AblationPoint {
            budget,
            equivalent: score.equivalent,
            score,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_sweep_runs_and_counts_scale() {
        let points = sweep_fractions(
            Benchmark::C17,
            &[0.2, 1.0],
            &ExperimentConfig::fast(0xE1),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].test_oriented.sampled < points[1].test_oriented.sampled);
        assert_eq!(points[1].test_oriented.sampled, points[1].random.sampled);
    }

    #[test]
    fn e2_curves_have_samples() {
        let pair = coverage_curves(Benchmark::C17, 16, &ExperimentConfig::fast(0xE2)).unwrap();
        assert_eq!(pair.circuit, "c17");
        assert!(!pair.mutation.is_empty());
        assert!(!pair.random.is_empty());
        // Random baseline is longer than the mutation data.
        assert!(pair.random.last().unwrap().0 >= pair.mutation.last().unwrap().0);
    }

    #[test]
    fn e3_validation_first_reduces_effort() {
        let outcomes =
            atpg_topup(Benchmark::C17, 10_000, &ExperimentConfig::fast(0xE3)).unwrap();
        assert_eq!(outcomes.len(), 3);
        let scratch = &outcomes[0];
        let validation = &outcomes[2];
        assert_eq!(scratch.mode, TopUpMode::Scratch);
        assert_eq!(validation.mode, TopUpMode::ValidationFirst);
        // Everything ends at (near) full coverage on c17.
        for o in &outcomes {
            assert!(o.final_coverage > 0.99, "{:?}", o);
        }
        // Re-used data leaves fewer ATPG targets than starting from
        // scratch.
        assert!(validation.atpg_targets < scratch.atpg_targets);
    }

    #[test]
    fn e4_ablation_is_monotone_in_budget() {
        let points = equivalence_ablation(
            Benchmark::C17,
            &[10, 500],
            &ExperimentConfig::fast(0xE4),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        // More budget can only reduce (or keep) the equivalent count:
        // survivors get more chances to be killed in classification.
        assert!(points[1].equivalent <= points[0].equivalent);
    }
}
