//! Experiment configuration shared by every pipeline stage.

use musa_mutation::{Engine, EquivalencePolicy, OptLevel};
use musa_testgen::{MgConfig, Selection};

/// Knobs of the end-to-end experiments.
///
/// Two presets exist: [`ExperimentConfig::paper`] approximates the
/// paper's conditions and is used by the bench binaries;
/// [`ExperimentConfig::fast`] is a scaled-down version for unit tests
/// and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Master seed; every stage derives its own sub-seed from it.
    pub seed: u64,
    /// Mutation-guided test-generation knobs.
    pub mg: MgConfig,
    /// Equivalent-mutant policy.
    pub equivalence: EquivalencePolicy,
    /// Pseudo-random baseline length = `baseline_multiple ×` mutation
    /// data length, but at least `baseline_floor` vectors.
    pub baseline_multiple: usize,
    /// Minimum baseline length.
    pub baseline_floor: usize,
    /// Independent repetitions averaged per measurement (different
    /// derived seeds). Small NLFCE values are noisy single-shot; the
    /// mean stabilises operator orderings.
    pub repetitions: usize,
    /// Worker threads for the parallel experiment paths (`0` = one per
    /// available CPU). Results are bit-identical for every value — see
    /// [`crate::parallel`] — so this is purely a wall-clock knob.
    pub jobs: usize,
    /// Mutant-execution engine for every differential-simulation stage
    /// (population grading and mutation-guided generation). `lanes`
    /// packs up to 63 mutants plus the reference machine into one
    /// simulation pass; outcomes are bit-identical across engines, so
    /// like `jobs` this is purely a wall-clock knob — and the two
    /// compose multiplicatively.
    pub engine: Engine,
    /// Dominance fault-list reduction for the mutation-data fault
    /// simulation (the Table 1/2 hot path): dominating faults are
    /// dropped from the lanes and credited from the representatives
    /// they dominate, with an exact residual pass for anything credit
    /// cannot resolve. Detected/undetected verdicts — hence every
    /// reported coverage number — are identical with the knob on or
    /// off; on is the default. The pseudo-random baseline (whose curve
    /// interior the ΔFC/ΔL metrics read) always uses full simulation.
    pub fault_reduce: bool,
    /// Static equivalent-mutant pre-screening (`musa_analysis`): mutants
    /// proven unkillable by dataflow analysis — dead mutation sites or
    /// local rewrites that constant-fold to the original — skip
    /// simulation entirely and fold straight into the `E` term of
    /// `MS = K/(M−E)` with the exact class full execution would report.
    /// Every reported number is bit-identical with the knob on or off;
    /// on is the default.
    pub screen: bool,
    /// Lane-tape optimizer level for every lane-engine stage: `full`
    /// (the default) runs the compile → optimize → execute pipeline
    /// (pass framework, constant pooling, superinstruction fusion);
    /// `off` executes the raw compiler tapes. Outcomes are bit-identical
    /// either way — like `jobs` and `engine`, purely a wall-clock knob.
    pub opt: OptLevel,
}

impl ExperimentConfig {
    /// Paper-scale preset (bench binaries; release builds).
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            // Generation effort is deliberately bounded: the paper's
            // premise is that mutation analysis is the expensive resource
            // being economised, and its Table 2 Mutation Scores (64–94 %)
            // show an *unsaturated* regime. An unbounded generator drives
            // every strategy to ≈100 % MS and erases the comparison.
            mg: MgConfig {
                pool_size: 32,
                subseq_len: 16,
                max_rounds: 2,
                selection: Selection::FirstCome,
                seed,
                engine: Engine::default(),
                opt: OptLevel::default(),
            },
            equivalence: EquivalencePolicy {
                budget: 2_000,
                sequences: 8,
                exhaustive_limit: 14,
                seed,
            },
            baseline_multiple: 20,
            baseline_floor: 512,
            repetitions: 15,
            jobs: 0,
            engine: Engine::default(),
            fault_reduce: true,
            screen: true,
            opt: OptLevel::default(),
        }
    }

    /// Scaled-down preset for tests and examples.
    pub fn fast(seed: u64) -> Self {
        Self {
            seed,
            mg: MgConfig::fast(seed),
            equivalence: EquivalencePolicy::fast(seed),
            baseline_multiple: 8,
            baseline_floor: 128,
            repetitions: 2,
            jobs: 0,
            engine: Engine::default(),
            fault_reduce: true,
            screen: true,
            opt: OptLevel::default(),
        }
    }

    /// Returns a copy with the given worker-thread count (`0` = auto).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns a copy running every mutant-execution stage — population
    /// grading *and* mutation-guided generation — on `engine`.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.mg.engine = engine;
        self
    }

    /// Returns a copy with the given lane-tape optimizer level, for
    /// population grading *and* mutation-guided generation.
    #[must_use]
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self.mg.opt = opt;
        self
    }

    /// Returns a copy with dominance fault-list reduction on or off.
    #[must_use]
    pub fn with_fault_reduce(mut self, fault_reduce: bool) -> Self {
        self.fault_reduce = fault_reduce;
        self
    }

    /// Returns a copy with static equivalent-mutant pre-screening on or
    /// off.
    #[must_use]
    pub fn with_screen(mut self, screen: bool) -> Self {
        self.screen = screen;
        self
    }

    /// The baseline length for a given mutation-data length.
    pub fn baseline_len(&self, mutation_len: usize) -> usize {
        (self.baseline_multiple * mutation_len).max(self.baseline_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_effort() {
        let fast = ExperimentConfig::fast(1);
        let paper = ExperimentConfig::paper(1);
        // The paper preset spends more on statistics and classification;
        // its *generation* pool is deliberately bounded (see the preset's
        // regime comment), so repetitions and budget are the axis.
        assert!(fast.repetitions < paper.repetitions);
        assert!(fast.equivalence.budget < paper.equivalence.budget);
        assert!(fast.baseline_floor < paper.baseline_floor);
    }

    #[test]
    fn baseline_len_has_floor() {
        let c = ExperimentConfig::fast(1);
        assert_eq!(c.baseline_len(0), c.baseline_floor);
        assert_eq!(c.baseline_len(1000), 8 * 1000);
    }

    #[test]
    fn seed_propagates() {
        let c = ExperimentConfig::paper(77);
        assert_eq!(c.seed, 77);
        assert_eq!(c.mg.seed, 77);
        assert_eq!(c.equivalence.seed, 77);
    }

    #[test]
    fn engine_propagates_to_generation() {
        // Lanes is the workspace default (promoted after soaking behind
        // `--engine lanes`); `scalar` remains selectable.
        let c = ExperimentConfig::fast(1);
        assert_eq!(c.engine, Engine::Lanes);
        assert_eq!(c.mg.engine, Engine::Lanes);
        let c = c.with_engine(Engine::Scalar);
        assert_eq!(c.engine, Engine::Scalar);
        assert_eq!(c.mg.engine, Engine::Scalar, "MG generation must follow the knob");
    }

    #[test]
    fn opt_propagates_to_generation() {
        let c = ExperimentConfig::fast(1);
        assert_eq!(c.opt, OptLevel::Full);
        assert_eq!(c.mg.opt, OptLevel::Full);
        let c = c.with_opt(OptLevel::Off);
        assert_eq!(c.opt, OptLevel::Off);
        assert_eq!(c.mg.opt, OptLevel::Off, "MG generation must follow the knob");
    }
}
