//! Sinks for collected trace data.
//!
//! A [`crate::campaign::Report`] produced by a campaign with
//! [`crate::campaign::Campaign::trace`] enabled carries the raw
//! [`musa_trace::TraceData`] out-of-band (it never appears in the text
//! or `musa.campaign.v1` outputs, preserving bit-identity with
//! trace-off runs). This module renders that data three ways:
//!
//! * [`trace_json`] — the `musa.trace.v1` document, emitted with the
//!   same hand-rolled [`crate::json`] writer every other schema uses,
//!   so it round-trips through [`crate::json::parse`].
//! * [`chrome_json`] — Chrome `trace_event`-format export (an object
//!   with a `traceEvents` array of `ph: "X"` complete events), loadable
//!   in Perfetto / `chrome://tracing`. Each distinct context path maps
//!   to its own track (`tid`).
//! * [`render_profile`] — the `--profile` text table: per-phase span
//!   count, *busy* (self) time, and a wall-scaled estimate whose column
//!   sums to the run's `wall_ms` even when phases overlapped across
//!   worker threads.
//!
//! [`validate_trace_document`] is the read side: it parses a
//! `musa.trace.v1` document and checks the required keys, and backs the
//! CI trace-smoke job.

use crate::campaign::Report;
use crate::json::{self, Json, JsonValue};
use musa_trace::{SpanRecord, TraceData};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the trace document.
pub const TRACE_SCHEMA: &str = "musa.trace.v1";

// ---------------------------------------------------------------------
// musa.trace.v1
// ---------------------------------------------------------------------

/// Renders the report's trace as a `musa.trace.v1` document, or `None`
/// if the campaign ran without tracing.
pub fn trace_json(report: &Report) -> Option<String> {
    trace_json_with(report, false)
}

/// [`trace_json`] with an option to zero every time-dependent field
/// (`start_ns`, `dur_ns`, meta `wall_ms`). The golden structure test
/// uses this so the document is byte-stable across machines while still
/// pinning span names, paths, sequence numbers, and counters.
pub fn trace_json_with(report: &Report, normalize_times: bool) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let wall_ms = if normalize_times {
        0
    } else {
        report.meta.wall.as_millis() as usize
    };
    let spans = trace
        .spans
        .iter()
        .map(|span| span_json(span, normalize_times))
        .collect();
    let counters = trace
        .counters
        .iter()
        .map(|&(name, value)| (name, Json::UInt(value)))
        .collect();
    Some(
        Json::Obj(vec![
            ("schema", Json::str(TRACE_SCHEMA)),
            (
                "meta",
                Json::Obj(vec![
                    ("task", Json::str(report.task.slug())),
                    (
                        "benches",
                        Json::Arr(report.meta.benches.iter().map(Json::str).collect()),
                    ),
                    ("seed", Json::UInt(report.meta.seed)),
                    ("jobs", Json::count(report.meta.jobs)),
                    ("wall_ms", Json::count(wall_ms)),
                ]),
            ),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Obj(counters)),
        ])
        .render(),
    )
}

fn span_json(span: &SpanRecord, normalize_times: bool) -> Json {
    let (start_ns, dur_ns) = if normalize_times {
        (0, 0)
    } else {
        (span.start_ns, span.dur_ns)
    };
    Json::Obj(vec![
        ("name", Json::str(span.name)),
        (
            "detail",
            span.detail.as_deref().map_or(Json::Null, Json::str),
        ),
        (
            "path",
            Json::Arr(span.path.iter().map(|&p| Json::count(p as usize)).collect()),
        ),
        ("seq", Json::count(span.seq as usize)),
        ("depth", Json::count(span.depth as usize)),
        (
            "parent_seq",
            Json::opt_count(span.parent_seq.map(|s| s as usize)),
        ),
        ("start_ns", Json::UInt(start_ns)),
        ("dur_ns", Json::UInt(dur_ns)),
    ])
}

/// Parses a `musa.trace.v1` document and checks its required keys
/// (schema tag, meta, well-formed span records, counters object).
///
/// # Errors
///
/// Returns a human-readable description of the first problem found —
/// either a JSON parse error or a missing/mistyped key.
pub fn validate_trace_document(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(TRACE_SCHEMA) => {}
        Some(other) => return Err(format!("schema is {other:?}, expected {TRACE_SCHEMA:?}")),
        None => return Err("missing string key \"schema\"".into()),
    }
    let meta = doc.get("meta").ok_or("missing key \"meta\"")?;
    for key in ["task"] {
        if meta.get(key).and_then(JsonValue::as_str).is_none() {
            return Err(format!("meta is missing string key {key:?}"));
        }
    }
    for key in ["seed", "jobs", "wall_ms"] {
        if meta.get(key).and_then(JsonValue::as_u64).is_none() {
            return Err(format!("meta is missing integer key {key:?}"));
        }
    }
    let spans = doc
        .get("spans")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array key \"spans\"")?;
    for (i, span) in spans.iter().enumerate() {
        if span.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("span {i} is missing string key \"name\""));
        }
        for key in ["seq", "depth", "start_ns", "dur_ns"] {
            if span.get(key).and_then(JsonValue::as_u64).is_none() {
                return Err(format!("span {i} is missing integer key {key:?}"));
            }
        }
        if span.get("path").and_then(JsonValue::as_arr).is_none() {
            return Err(format!("span {i} is missing array key \"path\""));
        }
    }
    match doc.get("counters") {
        Some(JsonValue::Obj(_)) => Ok(()),
        _ => Err("missing object key \"counters\"".into()),
    }
}

// ---------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------

/// Renders the report's trace in Chrome `trace_event` format (one
/// `ph: "X"` complete event per span, microsecond timestamps), or
/// `None` if the campaign ran without tracing.
///
/// Each distinct context path becomes its own track: `tid` is the
/// path's index in sorted path order, and a `thread_name` metadata
/// event labels the track with the path itself, so forked work lines up
/// as parallel lanes in Perfetto / `chrome://tracing`.
pub fn chrome_json(report: &Report) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let mut tids: BTreeMap<&[u32], usize> = BTreeMap::new();
    for span in &trace.spans {
        let next = tids.len();
        tids.entry(&span.path).or_insert(next);
    }
    let mut events = Vec::with_capacity(tids.len() + trace.spans.len() + 1);
    for (path, tid) in &tids {
        events.push(Json::Obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::count(1)),
            ("tid", Json::count(*tid)),
            (
                "args",
                Json::Obj(vec![("name", Json::str(path_label(path)))]),
            ),
        ]));
    }
    for span in &trace.spans {
        let name = match &span.detail {
            Some(detail) => format!("{} ({detail})", span.name),
            None => span.name.to_string(),
        };
        events.push(Json::Obj(vec![
            ("name", Json::str(name)),
            ("cat", Json::str("musa")),
            ("ph", Json::str("X")),
            ("ts", Json::Float(span.start_ns as f64 / 1000.0)),
            ("dur", Json::Float(span.dur_ns as f64 / 1000.0)),
            ("pid", Json::count(1)),
            ("tid", Json::count(tids[span.path.as_slice()])),
        ]));
    }
    for &(name, value) in &trace.counters {
        events.push(Json::Obj(vec![
            ("name", Json::str(name)),
            ("ph", Json::str("C")),
            ("ts", Json::Float(0.0)),
            ("pid", Json::count(1)),
            ("args", Json::Obj(vec![("total", Json::UInt(value))])),
        ]));
    }
    Some(Json::Obj(vec![("traceEvents", Json::Arr(events))]).render())
}

fn path_label(path: &[u32]) -> String {
    if path.is_empty() {
        return "root".to_string();
    }
    let mut label = String::from("fork");
    for pair in path.chunks(2) {
        // Paths grow by [fork_id, item_index] per nesting level; the
        // item index is the half a reader cares about.
        let _ = write!(label, " {}", pair.last().unwrap());
    }
    label
}

// ---------------------------------------------------------------------
// --profile table
// ---------------------------------------------------------------------

/// One aggregated row of the profile table.
struct PhaseRow {
    name: &'static str,
    count: u64,
    self_ns: u64,
}

/// Renders the `--profile` per-phase breakdown, or `None` if the
/// campaign ran without tracing.
///
/// `busy ms` is each phase's *self* time — span duration minus the
/// durations of its child spans (children in forked contexts are
/// attributed through their `parent_seq` link) — summed over every
/// span with that name across all worker threads. Busy time measures
/// thread-occupancy, so with `--jobs N` it can exceed wall time; the
/// `wall ms` column scales each phase's busy share to the run's
/// measured wall clock, which is why that column sums to `wall_ms`
/// (the property the acceptance check pins).
pub fn render_profile(report: &Report) -> Option<String> {
    let trace = report.trace.as_ref()?;
    Some(render_profile_data(trace, report.meta.wall))
}

/// [`render_profile`] over raw trace data plus an externally measured
/// wall clock — for front ends (like the `musa` binary's non-campaign
/// subcommands) that host a [`musa_trace::Tracer`] themselves instead
/// of going through a [`crate::campaign::Campaign`].
pub fn render_profile_data(trace: &TraceData, wall: std::time::Duration) -> String {
    let wall_ms = wall.as_secs_f64() * 1e3;
    let rows = aggregate_self_time(trace);
    let total_self: u64 = rows.iter().map(|r| r.self_ns).sum();

    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(["phase".len(), "total".len()])
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>10}  {:>6}  {:>9}",
        "phase", "count", "busy ms", "%", "wall ms"
    );
    for row in &rows {
        let busy_ms = row.self_ns as f64 / 1e6;
        let share = if total_self == 0 {
            0.0
        } else {
            row.self_ns as f64 / total_self as f64
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>10.2}  {:>5.1}%  {:>9.1}",
            row.name,
            row.count,
            busy_ms,
            share * 100.0,
            share * wall_ms
        );
    }
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>10.2}  {:>5.1}%  {:>9.1}",
        "total",
        rows.iter().map(|r| r.count).sum::<u64>(),
        total_self as f64 / 1e6,
        100.0,
        wall_ms
    );
    if !trace.counters.is_empty() {
        let counter_w = trace
            .counters
            .iter()
            .map(|(name, _)| name.len())
            .chain(["counter".len()])
            .max()
            .unwrap_or(7);
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<counter_w$}  {:>12}", "counter", "total");
        for &(name, value) in &trace.counters {
            let _ = writeln!(out, "{name:<counter_w$}  {value:>12}");
        }
    }
    out
}

/// Aggregates per-name span counts and self time (duration minus child
/// durations), sorted by self time descending then name.
fn aggregate_self_time(trace: &TraceData) -> Vec<PhaseRow> {
    // Key every span by (context path, seq) — unique by construction —
    // and charge each span's duration to its parent, whether the parent
    // sits in the same context (depth > 0) or two path elements up (a
    // forked context's top-level span).
    let mut child_ns: BTreeMap<(&[u32], u32), u64> = BTreeMap::new();
    for span in &trace.spans {
        let Some(parent_seq) = span.parent_seq else {
            continue;
        };
        let parent_path = if span.depth > 0 {
            span.path.as_slice()
        } else {
            &span.path[..span.path.len().saturating_sub(2)]
        };
        *child_ns.entry((parent_path, parent_seq)).or_insert(0) += span.dur_ns;
    }
    let mut by_name: BTreeMap<&'static str, PhaseRow> = BTreeMap::new();
    for span in &trace.spans {
        let children = child_ns
            .get(&(span.path.as_slice(), span.seq))
            .copied()
            .unwrap_or(0);
        let row = by_name.entry(span.name).or_insert(PhaseRow {
            name: span.name,
            count: 0,
            self_ns: 0,
        });
        row.count += 1;
        // Children that ran in parallel can out-sum their parent's
        // wall duration; clamp so busy time never goes negative.
        row.self_ns += span.dur_ns.saturating_sub(children);
    }
    let mut rows: Vec<PhaseRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Preset, Report, ReportData, RunMeta, Task};
    use musa_mutation::Engine;
    use std::time::Duration;

    fn record(
        name: &'static str,
        path: &[u32],
        seq: u32,
        depth: u32,
        parent_seq: Option<u32>,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            name,
            detail: None,
            path: path.to_vec(),
            seq,
            depth,
            parent_seq,
            start_ns,
            dur_ns,
        }
    }

    fn report_with(trace: TraceData) -> Report {
        Report {
            meta: RunMeta {
                benches: vec!["b01".to_string()],
                seed: 7,
                jobs: 1,
                engine: Engine::Lanes,
                fault_reduce: true,
                screen: true,
                opt: musa_mutation::OptLevel::Full,
                preset: Preset::Fast,
                wall: Duration::from_millis(100),
            },
            task: Task::MutationGuided,
            data: ReportData::MutationGuided(vec![]),
            trace: Some(trace),
        }
    }

    fn sample_trace() -> TraceData {
        TraceData {
            spans: vec![
                record("campaign", &[], 0, 0, None, 0, 100_000_000),
                record("bench", &[], 1, 1, Some(0), 1_000, 90_000_000),
                // Two forked children of the bench span, overlapping in
                // time as parallel workers would.
                record("work", &[2, 0], 0, 0, Some(1), 2_000, 60_000_000),
                record("work", &[2, 1], 0, 0, Some(1), 2_000, 60_000_000),
            ],
            counters: vec![("lane_passes", 12), ("screened", 3)],
        }
    }

    #[test]
    fn trace_document_round_trips_and_validates() {
        let report = report_with(sample_trace());
        let text = trace_json(&report).unwrap();
        validate_trace_document(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(TRACE_SCHEMA)
        );
        assert_eq!(
            doc.get("spans").and_then(JsonValue::as_arr).unwrap().len(),
            4
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("lane_passes").and_then(JsonValue::as_u64),
            Some(12)
        );
    }

    #[test]
    fn normalized_document_zeroes_every_clock_field() {
        let report = report_with(sample_trace());
        let text = trace_json_with(&report, true).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("wall_ms"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
        for span in doc.get("spans").and_then(JsonValue::as_arr).unwrap() {
            assert_eq!(span.get("start_ns").and_then(JsonValue::as_u64), Some(0));
            assert_eq!(span.get("dur_ns").and_then(JsonValue::as_u64), Some(0));
        }
    }

    #[test]
    fn validator_rejects_wrong_schema_and_truncated_spans() {
        assert!(validate_trace_document("{}").is_err());
        assert!(validate_trace_document("not json").is_err());
        let wrong = "{\"schema\": \"musa.bench.v1\"}";
        assert!(validate_trace_document(wrong)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn chrome_export_assigns_one_tid_per_path() {
        let report = report_with(sample_trace());
        let text = chrome_json(&report).unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .unwrap();
        // 3 distinct paths ([], [2,0], [2,1]) → 3 thread_name metadata
        // events + 4 span events + 2 counter events.
        assert_eq!(events.len(), 9);
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .map(|e| e.get("tid").and_then(JsonValue::as_u64).unwrap())
            .collect();
        assert_eq!(tids, vec![0, 0, 1, 2]);
    }

    #[test]
    fn profile_self_time_subtracts_children_across_forks() {
        let report = report_with(sample_trace());
        let rows = aggregate_self_time(report.trace.as_ref().unwrap());
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        // campaign: 100ms minus its 90ms child.
        assert_eq!(get("campaign").self_ns, 10_000_000);
        // bench: 90ms minus 2×60ms of forked children, clamped at 0.
        assert_eq!(get("bench").self_ns, 0);
        // work: two leaves, 60ms each.
        assert_eq!(get("work").self_ns, 120_000_000);
        assert_eq!(get("work").count, 2);
    }

    #[test]
    fn profile_wall_column_sums_to_wall_ms() {
        let report = report_with(sample_trace());
        let table = render_profile(&report).unwrap();
        // The total row closes the phase table at exactly wall_ms.
        assert!(table.contains("total"), "{table}");
        let total_line = table
            .lines()
            .find(|l| l.starts_with("total"))
            .unwrap();
        assert!(total_line.trim_end().ends_with("100.0"), "{total_line}");
        assert!(table.contains("lane_passes"), "{table}");
    }

    #[test]
    fn every_sink_is_none_without_trace_data() {
        let mut report = report_with(TraceData::default());
        report.trace = None;
        assert!(trace_json(&report).is_none());
        assert!(chrome_json(&report).is_none());
        assert!(render_profile(&report).is_none());
    }
}
