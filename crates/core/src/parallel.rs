//! Deterministic parallel execution layer.
//!
//! Every experiment in this workspace is a loop over *independent,
//! pre-seeded* work items (sampling repetitions, `(operator, repetition)`
//! profile cells, mutants in a population). This module shards such
//! loops across OS threads with [`std::thread::scope`] — the container
//! has no external crates, so no rayon — under one invariant:
//!
//! > **The result is bit-identical to the serial loop, whatever the
//! > thread count.**
//!
//! Two properties make that hold:
//!
//! 1. **Seeds are assigned before any thread starts.** Callers draw
//!    every item's seeds from their PRNG stream in serial order first,
//!    then hand the fully seeded items over; no worker ever touches a
//!    shared PRNG.
//! 2. **Merging is index-ordered.** Workers pull items off a shared
//!    atomic counter (dynamic load balancing — item costs vary wildly
//!    between mutants/circuits) and record `(index, result)` pairs; the
//!    caller's thread re-assembles the output by item index, so
//!    reduction order never depends on scheduling.
//!
//! Floating-point reductions built on top (e.g. the sampling-repetition
//! averages) stay deterministic because they always fold in index
//! order, never arrival order.
//!
//! `musa_mutation::execute_mutants_jobs` re-implements this contract
//! for the mutant-population shard (that crate sits *below* this one
//! in the dependency graph) — changes here must be kept in sync there.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the machine supports, used when a job count
/// of `0` (= "auto") is requested.
///
/// Falls back to 1 when the platform cannot report its parallelism.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested job count: `0` means "use [`available_jobs`]",
/// anything else is taken literally.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `jobs` threads, returning results in
/// item order.
///
/// `jobs` is resolved via [`resolve_jobs`]; a resolved count of 1 (or
/// fewer than 2 items) runs inline with no thread spawned. `f` receives
/// `(index, &item)` so callers can pick up pre-assigned seeds.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map(jobs, items, |i, t| Ok::<R, Never>(f(i, t))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Uninhabited error type backing the infallible [`par_map`] wrapper.
enum Never {}

/// Fallible version of [`par_map`]: maps `f` over `items` and returns
/// either every result in item order, or the error of the *lowest
/// failing index* — the same error the serial loop would have surfaced
/// first — regardless of which worker hit an error when.
///
/// # Errors
///
/// Returns the lowest-index error produced by `f`.
pub fn try_par_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    // Trace fork point: captured serially before any worker exists, so
    // child contexts are identified by *item index*, never by which
    // worker thread happens to pull the item — the recorded structure
    // is identical for every job count (and inert when tracing is off).
    let fork = musa_trace::ForkScope::capture();
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _trace = fork.enter(i);
                f(i, item)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    // One pre-sized slot per item so workers never contend on a growing
    // collection; a worker locks only to deposit its own slot.
    let slots: Vec<Mutex<Option<Result<R, E>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = {
                    let _trace = fork.enter(i);
                    f(i, item)
                };
                *slots[i].lock().expect("no panics while depositing") = Some(result);
            });
        }
    });

    // Index-ordered reduction: the first error reported is the one the
    // serial loop would have hit.
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("worker deposited without panic") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("scope joins every worker; all slots filled"),
        }
    }
    Ok(out)
}

/// Splits `jobs` threads between an outer loop of `outer_items` and the
/// loops nested inside each item: the outer level gets
/// `min(jobs, outer_items)` and each inner loop shares the remainder,
/// so total concurrency never exceeds `jobs`.
///
/// Returns `(outer_jobs, inner_jobs)`, both ≥ 1. `jobs` is resolved via
/// [`resolve_jobs`] first.
pub fn split_jobs(jobs: usize, outer_items: usize) -> (usize, usize) {
    let jobs = resolve_jobs(jobs).max(1);
    let outer = jobs.min(outer_items.max(1));
    (outer, (jobs / outer).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_serial_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37).rotate_left(7)).collect();
        for jobs in [0, 1, 2, 5, 16, 1000] {
            let parallel = par_map(jobs, &items, |_, &x| x.wrapping_mul(0x9E37).rotate_left(7));
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 4, 16] {
            let err = try_par_map(jobs, &items, |_, &x| {
                if x % 7 == 3 {
                    Err(x) // fails at 3, 10, 17, ...
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, 3, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[42u8], |_, &x| x), vec![42]);
    }

    #[test]
    fn resolve_jobs_zero_is_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn split_jobs_never_oversubscribes() {
        for jobs in 1..=16usize {
            for outer in 1..=20usize {
                let (o, i) = split_jobs(jobs, outer);
                assert!(o >= 1 && i >= 1);
                assert!(o * i <= jobs.max(1), "jobs={jobs} outer={outer}: {o}x{i}");
                assert!(o <= outer.max(1));
            }
        }
        assert_eq!(split_jobs(8, 2), (2, 4));
        assert_eq!(split_jobs(8, 100), (8, 1));
    }
}
