//! Operator-efficiency profiling — the machinery behind Table 1.
//!
//! For each mutation operator, validation data is generated from that
//! operator's mutants alone, fault-simulated at gate level and compared
//! against the pseudo-random baseline, yielding `ΔFC%`, `ΔL%` and
//! `NLFCE` (paper §3). The resulting profile drives the test-oriented
//! sampling weights (paper §4).

use crate::config::ExperimentConfig;
use crate::data::{
    coverage_of_sessions, coverage_of_sessions_reduced, fault_universe, random_baseline_curve,
    reduced_universe, FaultSimStats,
};
use crate::experiment::SamplingAggregate;
use crate::parallel::try_par_map;
use musa_circuits::Circuit;
use musa_metrics::{Nlfce, NlfceInputs};
use musa_mutation::{generate_mutants, GenerateOptions, Mutant, MutationError, MutationOperator};
use musa_prng::{Prng, SplitMix64};
use musa_testgen::{mutation_guided_tests, MgConfig, OperatorWeights};

/// One operator's measured efficiency on one circuit.
#[derive(Debug, Clone)]
pub struct OperatorEfficiency {
    /// The operator.
    pub operator: MutationOperator,
    /// Number of (valid) mutants the operator produced.
    pub mutants: usize,
    /// Length of the validation data generated from those mutants.
    pub data_len: usize,
    /// Gate-level coverage achieved by that data.
    pub mutation_fault_coverage: f64,
    /// The paper's three metrics versus the pseudo-random baseline.
    pub metrics: Nlfce,
    /// Lane occupancy of the mutation-data fault simulation (see
    /// [`ExperimentConfig::fault_reduce`]).
    pub fault_sim: FaultSimStats,
}

/// A per-circuit operator-efficiency profile (Table 1 rows for one
/// circuit).
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Circuit name.
    pub circuit: String,
    /// Rows for each operator that produced at least one mutant.
    pub rows: Vec<OperatorEfficiency>,
}

impl OperatorProfile {
    /// Measures the given operators on a circuit.
    ///
    /// Operators with an empty mutant population are omitted — the paper
    /// notes "all mutation operators are not necessarily applied on
    /// every benchmark circuit" (e.g. CR needs a constant declaration).
    ///
    /// # Errors
    ///
    /// Propagates [`MutationError`] from mutant execution.
    pub fn measure(
        circuit: &Circuit,
        operators: &[MutationOperator],
        config: &ExperimentConfig,
    ) -> Result<Self, MutationError> {
        let faults = fault_universe(circuit);
        let reduction = config
            .fault_reduce
            .then(|| reduced_universe(circuit, &faults));
        let mut seeder = SplitMix64::new(config.seed ^ 0x9E3779B97F4A7C15);
        let repetitions = config.repetitions.max(1);

        // Enumerate mutants serially, then pre-draw every repetition's
        // (data, baseline) seed pair in exactly the order the serial
        // loop consumed them — operator-major, repetition-minor, empty
        // operators drawing nothing. The flattened (operator ×
        // repetition) cells are then embarrassingly parallel.
        struct Cell {
            op_slot: usize,
            mg_seed: u64,
            baseline_seed: u64,
        }
        let mut populations: Vec<(MutationOperator, Vec<Mutant>)> = Vec::new();
        let mut cells: Vec<Cell> = Vec::new();
        for &operator in operators {
            let mutants = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::only(operator),
            );
            if mutants.is_empty() {
                continue;
            }
            for _ in 0..repetitions {
                cells.push(Cell {
                    op_slot: populations.len(),
                    mg_seed: seeder.next_u64(),
                    baseline_seed: seeder.next_u64(),
                });
            }
            populations.push((operator, mutants));
        }

        struct RepMeasurement {
            metrics: Nlfce,
            data_len: usize,
            coverage: f64,
            fault_sim: FaultSimStats,
        }
        let measurements = try_par_map(config.jobs, &cells, |_, cell| {
            let (_, mutants) = &populations[cell.op_slot];
            let mg = MgConfig {
                seed: cell.mg_seed,
                ..config.mg
            };
            let generated =
                mutation_guided_tests(&circuit.checked, &circuit.name, mutants, &mg)?;
            let (mutation_curve, fault_sim) = match &reduction {
                Some(reduction) => {
                    coverage_of_sessions_reduced(circuit, reduction, &generated.sessions)
                }
                None => (
                    coverage_of_sessions(circuit, &faults, &generated.sessions),
                    FaultSimStats::full(faults.len()),
                ),
            };
            let baseline_len = config.baseline_len(mutation_curve.len());
            let random_curve =
                random_baseline_curve(circuit, &faults, baseline_len, cell.baseline_seed);
            let metrics = NlfceInputs {
                mutation: &mutation_curve,
                random: &random_curve,
            }
            .compute();
            Ok::<RepMeasurement, MutationError>(RepMeasurement {
                metrics,
                data_len: generated.total_len(),
                coverage: mutation_curve.final_coverage(),
                fault_sim,
            })
        })?;

        // Index-ordered reduction per operator: cells arrive back in
        // (operator, repetition) order, so the float sums fold exactly
        // as the serial loop's did. Averaged integer lengths follow the
        // workspace rounding policy (`SamplingAggregate::mean_rounded`);
        // the saturation length is kept only when every repetition
        // reports one.
        let mut rows = Vec::with_capacity(populations.len());
        for (slot, (operator, mutants)) in populations.iter().enumerate() {
            let reps: Vec<&RepMeasurement> = cells
                .iter()
                .zip(&measurements)
                .filter(|(cell, _)| cell.op_slot == slot)
                .map(|(_, m)| m)
                .collect();
            let n = reps.len() as f64;
            let data_len = SamplingAggregate::mean_rounded(
                reps.iter().map(|r| r.data_len).sum(),
                reps.len(),
            );
            let random_len_at_equal_fc = reps
                .iter()
                .map(|r| r.metrics.random_len_at_equal_fc)
                .collect::<Option<Vec<usize>>>()
                .map(|lens| SamplingAggregate::mean_rounded(lens.iter().sum(), reps.len()));
            let mean = Nlfce {
                delta_fc_pct: reps.iter().map(|r| r.metrics.delta_fc_pct).sum::<f64>() / n,
                delta_l_pct: reps.iter().map(|r| r.metrics.delta_l_pct).sum::<f64>() / n,
                nlfce: reps.iter().map(|r| r.metrics.nlfce).sum::<f64>() / n,
                mutation_len: data_len,
                random_len_at_equal_fc,
            };
            rows.push(OperatorEfficiency {
                operator: *operator,
                mutants: mutants.len(),
                data_len,
                mutation_fault_coverage: reps.iter().map(|r| r.coverage).sum::<f64>() / n,
                metrics: mean,
                fault_sim: FaultSimStats {
                    faults_simulated: SamplingAggregate::mean_rounded(
                        reps.iter().map(|r| r.fault_sim.faults_simulated).sum(),
                        reps.len(),
                    ),
                    faults_total: faults.len(),
                },
            });
        }
        Ok(Self {
            circuit: circuit.name.clone(),
            rows,
        })
    }

    /// The row for one operator, if present.
    pub fn row(&self, operator: MutationOperator) -> Option<&OperatorEfficiency> {
        self.rows.iter().find(|r| r.operator == operator)
    }

    /// Derives test-oriented sampling weights from the measured NLFCE
    /// values (clamped to a small positive floor so no operator is shut
    /// out entirely).
    pub fn weights(&self) -> OperatorWeights {
        OperatorWeights::from_pairs(
            self.rows
                .iter()
                .map(|r| (r.operator, r.metrics.nlfce.max(1.0))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_circuits::Benchmark;

    #[test]
    fn profile_covers_applicable_operators() {
        let c17 = Benchmark::C17.load().unwrap();
        let profile = OperatorProfile::measure(
            &c17,
            &MutationOperator::all(),
            &ExperimentConfig::fast(0xAB),
        )
        .unwrap();
        assert_eq!(profile.circuit, "c17");
        // c17 has NAND logic and variables, but no relational/arith ops
        // and no constant declarations: LOR/VR/UOI… apply, ROR/AOR don't.
        assert!(profile.row(MutationOperator::Lor).is_some());
        assert!(profile.row(MutationOperator::Ror).is_none());
        assert!(profile.row(MutationOperator::Aor).is_none());
        for row in &profile.rows {
            assert!(row.mutants > 0);
            assert!(row.data_len > 0, "{}: empty data", row.operator);
            assert!(row.mutation_fault_coverage > 0.0);
        }
    }

    #[test]
    fn weights_are_positive_and_reflect_nlfce() {
        let c17 = Benchmark::C17.load().unwrap();
        let profile = OperatorProfile::measure(
            &c17,
            &[MutationOperator::Lor, MutationOperator::Vr],
            &ExperimentConfig::fast(0xCD),
        )
        .unwrap();
        let weights = profile.weights();
        for row in &profile.rows {
            assert!(weights.weight(row.operator) >= 1.0);
        }
    }

    #[test]
    fn profile_is_deterministic() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x11);
        let p1 = OperatorProfile::measure(&c17, &[MutationOperator::Lor], &config).unwrap();
        let p2 = OperatorProfile::measure(&c17, &[MutationOperator::Lor], &config).unwrap();
        assert_eq!(p1.rows[0].data_len, p2.rows[0].data_len);
        assert_eq!(p1.rows[0].metrics.nlfce, p2.rows[0].metrics.nlfce);
    }

    #[test]
    fn profile_is_bit_identical_across_engines() {
        use musa_mutation::Engine;
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x3C);
        let operators = [MutationOperator::Lor, MutationOperator::Vr];
        let scalar = OperatorProfile::measure(&c17, &operators, &config).unwrap();
        let lanes =
            OperatorProfile::measure(&c17, &operators, &config.with_engine(Engine::Lanes))
                .unwrap();
        assert_eq!(
            format!("{:?}", scalar.rows),
            format!("{:?}", lanes.rows),
            "scalar vs lanes"
        );
    }

    #[test]
    fn profile_is_bit_identical_for_every_job_count() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x2B);
        let operators = [MutationOperator::Lor, MutationOperator::Vr];
        let serial =
            OperatorProfile::measure(&c17, &operators, &config.with_jobs(1)).unwrap();
        for jobs in [2, 8] {
            let parallel =
                OperatorProfile::measure(&c17, &operators, &config.with_jobs(jobs)).unwrap();
            assert_eq!(
                format!("{:?}", serial.rows),
                format!("{:?}", parallel.rows),
                "jobs={jobs}"
            );
        }
    }
}
