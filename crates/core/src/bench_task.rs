//! The benchmark-trajectory task: timed workloads, the `musa.bench.v1`
//! report, and the regression detector behind `musa bench --baseline`.
//!
//! Every performance claim in this repo used to live only in commit
//! messages. This module turns them into a **measured trajectory**: a
//! fixed grid of timed workloads per benchmark —
//!
//! * `mutant_exec` — full-population differential mutant execution over
//!   a fixed random sequence, per engine (`scalar`, `lanes`) × jobs
//!   (`1`, `auto`); the workload behind the lane engine's 9.2× claim;
//! * `fault_sim` — stuck-at fault simulation of the full collapsed
//!   fault universe over a fixed LFSR testbench, with dominance
//!   reduction off and on (planning **included** in the timed region,
//!   exactly like the `--fault-reduce` CLI path pays for it);
//!
//! each cell warmed up and sampled repeatedly, summarized with robust
//! statistics ([`RobustStats`]: median + MAD + min), and emitted as a
//! schema'd [`BenchReport`] (`musa.bench.v1`) through the hand-rolled
//! [`crate::json`] layer — written as `BENCH_<n>.json` at the repo root
//! to seed the committed trajectory.
//!
//! Alongside the timings, every cell records **non-timing invariants**
//! (population and kill counts, lane passes, `faults_simulated` /
//! `faults_total`, detected faults). These are bit-stable across runs
//! and machines — the run itself asserts per-sample stability — so the
//! regression detector ([`compare`]) can gate a noisy 1-CPU CI
//! container on exact invariant equality and the scalar/lanes
//! **engine ratio** rather than absolute wall time, while local runs
//! additionally gate absolute medians behind a MAD noise band.

use crate::campaign::{CampaignError, DEFAULT_SEED};
use crate::json::{self, Json, JsonValue};
use crate::parallel::available_jobs;
use crate::tables::TableError;
use musa_circuits::Benchmark;
use musa_metrics::RobustStats;
use musa_mutation::{
    execute_mutants_jobs, generate_mutants, Engine, GenerateOptions, LaneOptions,
    LanePlan, OptLevel,
};
use musa_netlist::{
    collapsed_faults, fault_simulate_sessions, fault_simulate_sessions_reduced,
    reduce_faults,
};
use musa_testgen::{random_sequence, testbench_patterns};
use std::fmt;
use std::time::Instant;

/// The schema tag every benchmark report carries.
pub const BENCH_SCHEMA: &str = "musa.bench.v1";

/// Sequence length of the `mutant_exec` workload. Part of the schema:
/// changing it changes the invariants, which breaks every committed
/// baseline.
pub const MUTANT_VECTORS: usize = 32;

/// Testbench length of the `fault_sim` workload (same caveat).
pub const FSIM_VECTORS: usize = 64;

/// The default benchmark set a bench campaign measures: one small
/// sequential circuit, one small combinational circuit, and the
/// largest combinational circuit the lane-engine claims were made on.
pub const DEFAULT_BENCHES: [Benchmark; 3] =
    [Benchmark::B01, Benchmark::C17, Benchmark::C432];

/// The timed workload of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchWorkload {
    /// Full-population differential mutant execution.
    MutantExec,
    /// Full-universe stuck-at fault simulation.
    FaultSim,
}

impl BenchWorkload {
    /// The JSON/cell-id spelling.
    pub fn slug(self) -> &'static str {
        match self {
            BenchWorkload::MutantExec => "mutant_exec",
            BenchWorkload::FaultSim => "fault_sim",
        }
    }
}

/// Non-timing measurements of one cell. Every populated field is
/// **bit-stable** across runs, job counts and machines — the run
/// asserts per-sample stability, and [`compare`] gates on exact
/// equality against the baseline. Fields that don't apply to a
/// workload stay `None` (and render as `null`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellInvariants {
    /// Mutant-population size (`mutant_exec`).
    pub population: Option<usize>,
    /// Mutants the sequence kills (`mutant_exec`).
    pub killed: Option<usize>,
    /// Lane-engine simulation passes (`mutant_exec` on `lanes`).
    pub lane_passes: Option<usize>,
    /// Collapsed fault-universe size (`fault_sim`).
    pub faults_total: Option<usize>,
    /// Faults that occupied simulation lanes (`fault_sim`; below
    /// `faults_total` when dominance reduction credits).
    pub faults_simulated: Option<usize>,
    /// Detected faults (`fault_sim`; identical with reduction on or
    /// off — that bit-identity is itself a gated invariant).
    pub detected: Option<usize>,
}

impl CellInvariants {
    /// Compact one-line rendering for text tables, e.g.
    /// `pop=408 killed=301 passes=7` or `sim=310/398 det=371`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = self.population {
            parts.push(format!("pop={p}"));
        }
        if let Some(k) = self.killed {
            parts.push(format!("killed={k}"));
        }
        if let Some(p) = self.lane_passes {
            parts.push(format!("passes={p}"));
        }
        if let (Some(sim), Some(total)) = (self.faults_simulated, self.faults_total) {
            parts.push(format!("sim={sim}/{total}"));
        }
        if let Some(d) = self.detected {
            parts.push(format!("det={d}"));
        }
        parts.join(" ")
    }

    /// `(field name, baseline, current)` triples for the detector.
    fn fields(&self) -> [(&'static str, Option<usize>); 6] {
        [
            ("population", self.population),
            ("killed", self.killed),
            ("lane_passes", self.lane_passes),
            ("faults_total", self.faults_total),
            ("faults_simulated", self.faults_simulated),
            ("detected", self.detected),
        ]
    }
}

/// One grid cell: a workload on a benchmark under one knob setting,
/// with its timing summary and invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// The timed workload.
    pub workload: BenchWorkload,
    /// Benchmark name.
    pub bench: String,
    /// Mutant-execution engine (`mutant_exec` only).
    pub engine: Option<Engine>,
    /// Lane-tape optimizer level (`mutant_exec` on `lanes` only; the
    /// scalar engine has no tapes to optimize). `None` also covers
    /// reports committed before the optimizer existed.
    pub opt: Option<OptLevel>,
    /// Worker threads, `0` = auto (`mutant_exec` only).
    pub jobs: Option<usize>,
    /// Dominance reduction on/off (`fault_sim` only).
    pub fault_reduce: Option<bool>,
    /// Robust wall-clock summary in nanoseconds.
    pub wall: RobustStats,
    /// The cell's bit-stable measurements.
    pub invariants: CellInvariants,
}

impl BenchCell {
    /// The stable cell identifier baselines are matched on, e.g.
    /// `mutant_exec/c432/lanes-opt/jobs=1` or `fault_sim/b01/reduce=on`.
    /// Lane cells carry their optimizer level (`lanes-opt` /
    /// `lanes-noopt`); a plain `lanes` id only arises from reports
    /// committed before the optimizer existed.
    pub fn id(&self) -> String {
        match self.workload {
            BenchWorkload::MutantExec => format!(
                "mutant_exec/{}/{}/jobs={}",
                self.bench,
                match (self.engine.unwrap_or_default(), self.opt) {
                    (Engine::Lanes, Some(OptLevel::Full)) => "lanes-opt",
                    (Engine::Lanes, Some(OptLevel::Off)) => "lanes-noopt",
                    (engine, _) => engine.name(),
                },
                match self.jobs.unwrap_or(1) {
                    0 => "auto".to_string(),
                    n => n.to_string(),
                },
            ),
            BenchWorkload::FaultSim => format!(
                "fault_sim/{}/reduce={}",
                self.bench,
                if self.fault_reduce.unwrap_or(false) { "on" } else { "off" },
            ),
        }
    }
}

/// Machine and configuration metadata stamped into every report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeta {
    /// Available CPUs on the measuring machine.
    pub cpus: usize,
    /// Whether the binary was built with debug assertions.
    pub debug: bool,
    /// `git describe --always --dirty` of the measured tree, when a
    /// git binary and repository were reachable.
    pub git: Option<String>,
    /// Quick mode (fewer warmup passes and samples; same grid).
    pub quick: bool,
    /// Master seed the workloads derive their inputs from.
    pub seed: u64,
    /// [`MUTANT_VECTORS`] at measurement time.
    pub mutant_vectors: usize,
    /// [`FSIM_VECTORS`] at measurement time.
    pub fsim_vectors: usize,
    /// Warmup passes per cell.
    pub warmup: usize,
    /// Timed samples per cell.
    pub samples: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: u64,
}

/// A complete `musa.bench.v1` benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Machine and configuration metadata.
    pub meta: BenchMeta,
    /// Every measured grid cell, in grid order.
    pub cells: Vec<BenchCell>,
}

/// Options of one benchmark-trajectory run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Quick mode: 1 warmup pass + 3 samples per cell instead of
    /// 3 + 9. The grid and every invariant are identical — quick runs
    /// compare against full baselines and vice versa.
    pub quick: bool,
    /// Master seed for the workload inputs.
    pub seed: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self { quick: false, seed: DEFAULT_SEED }
    }
}

impl BenchOptions {
    fn warmup(&self) -> usize {
        if self.quick { 1 } else { 3 }
    }

    fn samples(&self) -> usize {
        if self.quick { 3 } else { 9 }
    }
}

/// `git describe --always --dirty` of the current tree, if git works
/// here; `None` (rendered `null`) otherwise — a report must never fail
/// because it was measured from an export tarball.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let trimmed = text.trim();
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// Times `samples` invocations of `f` after `warmup` untimed passes,
/// returning the robust summary plus every invocation's result (the
/// caller asserts the results are bit-stable).
fn measure<T>(
    warmup: usize,
    samples: usize,
    mut f: impl FnMut() -> Result<T, CampaignError>,
) -> Result<(RobustStats, Vec<T>), CampaignError> {
    for _ in 0..warmup {
        std::hint::black_box(f()?);
    }
    let mut times = Vec::with_capacity(samples);
    let mut results = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = Instant::now();
        let out = std::hint::black_box(f()?);
        times.push(started.elapsed().as_nanos() as f64);
        results.push(out);
    }
    Ok((RobustStats::of(&times), results))
}

/// Asserts all sampled invariants agree and returns the shared value.
fn stable(id: &str, results: Vec<CellInvariants>) -> CellInvariants {
    let first = results[0];
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            *r, first,
            "{id}: invariants drifted between sample 0 and sample {i} — \
             the workload is nondeterministic",
        );
    }
    first
}

/// Runs the benchmark grid over `benches` and returns the report.
///
/// # Errors
///
/// [`CampaignError::Run`] naming the failing benchmark when a circuit
/// fails to load or a mutant fails to execute.
pub fn run_bench(
    benches: &[Benchmark],
    opts: &BenchOptions,
) -> Result<BenchReport, CampaignError> {
    let started = Instant::now();
    let (warmup, samples) = (opts.warmup(), opts.samples());
    let mut cells = Vec::new();
    for &bench in benches {
        let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
        let per_bench = |e: TableError| CampaignError::Run {
            bench: bench.name().to_string(),
            source: e,
        };
        let circuit = bench.load().map_err(|e| per_bench(e.into()))?;
        let mutants = generate_mutants(
            &circuit.checked,
            &circuit.name,
            &GenerateOptions::default(),
        );
        let sequence = random_sequence(circuit.info(), MUTANT_VECTORS, opts.seed);

        // -- mutant_exec: engine (× opt on lanes) × jobs --------------
        let configs = [
            (Engine::Scalar, None),
            (Engine::Lanes, Some(OptLevel::Full)),
            (Engine::Lanes, Some(OptLevel::Off)),
        ];
        for (engine, opt) in configs {
            for jobs in [1usize, 0] {
                let mut cell = BenchCell {
                    workload: BenchWorkload::MutantExec,
                    bench: circuit.name.clone(),
                    engine: Some(engine),
                    opt,
                    jobs: Some(jobs),
                    fault_reduce: None,
                    wall: RobustStats::of(&[0.0]),
                    invariants: CellInvariants::default(),
                };
                // Compile + optimize happen once, outside the timed
                // region: the cell measures execution throughput, so an
                // optimizer that trades compile time for run time shows
                // its run-time side here (compile cost is bounded by the
                // plan step and amortized over the whole campaign).
                let plan = match engine {
                    Engine::Scalar => None,
                    Engine::Lanes => Some(
                        LanePlan::new(
                            &circuit.checked,
                            &circuit.name,
                            &mutants,
                            &LaneOptions::default()
                                .with_jobs(jobs)
                                .with_opt(opt.unwrap_or_default()),
                        )
                        .map_err(|e| per_bench(e.into()))?,
                    ),
                };
                let (wall, results) = measure(warmup, samples, || {
                    let (kills, lane_passes) = match &plan {
                        None => (
                            execute_mutants_jobs(
                                &circuit.checked,
                                &circuit.name,
                                &mutants,
                                &sequence,
                                jobs,
                            )
                            .map_err(|e| per_bench(e.into()))?,
                            None,
                        ),
                        Some(plan) => {
                            let (kills, stats) = plan
                                .first_kills(&sequence)
                                .map_err(|e| per_bench(e.into()))?;
                            (kills, Some(stats.passes))
                        }
                    };
                    Ok(CellInvariants {
                        population: Some(mutants.len()),
                        killed: Some(kills.killed_count()),
                        lane_passes,
                        ..CellInvariants::default()
                    })
                })?;
                cell.wall = wall;
                cell.invariants = stable(&cell.id(), results);
                musa_trace::progress(|| format!("bench cell {} done", cell.id()));
                cells.push(cell);
            }
        }

        // -- fault_sim: reduction off/on ------------------------------
        let faults = collapsed_faults(&circuit.netlist);
        let patterns = testbench_patterns(&circuit.netlist, FSIM_VECTORS, opts.seed);
        let sessions = [patterns];
        for reduce in [false, true] {
            let mut cell = BenchCell {
                workload: BenchWorkload::FaultSim,
                bench: circuit.name.clone(),
                engine: None,
                opt: None,
                jobs: None,
                fault_reduce: Some(reduce),
                wall: RobustStats::of(&[0.0]),
                invariants: CellInvariants::default(),
            };
            let (wall, results) = measure(warmup, samples, || {
                let result = if reduce {
                    // Plan + simulate: the timed region pays for
                    // dominance planning exactly like the CLI path.
                    let reduction = reduce_faults(&circuit.netlist, &faults);
                    fault_simulate_sessions_reduced(
                        &circuit.netlist,
                        &reduction,
                        &sessions,
                    )
                } else {
                    fault_simulate_sessions(&circuit.netlist, &faults, &sessions)
                };
                Ok(CellInvariants {
                    faults_total: Some(faults.len()),
                    faults_simulated: Some(result.faults_simulated),
                    detected: Some(result.detected_count()),
                    ..CellInvariants::default()
                })
            })?;
            cell.wall = wall;
            cell.invariants = stable(&cell.id(), results);
            musa_trace::progress(|| format!("bench cell {} done", cell.id()));
            cells.push(cell);
        }
    }

    // The lane-tape optimizer must not change any outcome — pin the
    // opt/noopt invariant identity right in the report run.
    for bench in benches {
        let by_opt: Vec<&BenchCell> = cells
            .iter()
            .filter(|c| {
                c.workload == BenchWorkload::MutantExec
                    && c.bench == bench.name()
                    && c.engine == Some(Engine::Lanes)
            })
            .collect();
        for pair in by_opt.windows(2) {
            assert_eq!(
                pair[0].invariants, pair[1].invariants,
                "{}: lane invariants differ across opt/jobs settings ({} vs {})",
                bench.name(),
                pair[0].id(),
                pair[1].id(),
            );
        }
    }

    // Reduction must not change detection verdicts — pin the on/off
    // bit-identity right in the report run.
    for bench in benches {
        let detected: Vec<Option<usize>> = cells
            .iter()
            .filter(|c| {
                c.workload == BenchWorkload::FaultSim && c.bench == bench.name()
            })
            .map(|c| c.invariants.detected)
            .collect();
        assert!(
            detected.windows(2).all(|w| w[0] == w[1]),
            "{}: fault_sim detected counts differ across reduce settings: {detected:?}",
            bench.name(),
        );
    }

    Ok(BenchReport {
        meta: BenchMeta {
            cpus: available_jobs(),
            debug: cfg!(debug_assertions),
            git: git_describe(),
            quick: opts.quick,
            seed: opts.seed,
            mutant_vectors: MUTANT_VECTORS,
            fsim_vectors: FSIM_VECTORS,
            warmup,
            samples,
            wall_ms: started.elapsed().as_millis() as u64,
        },
        cells,
    })
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

impl BenchReport {
    /// Renders the report as `musa.bench.v1` JSON (the format of the
    /// committed `BENCH_<n>.json` files; pinned by the golden test).
    pub fn to_json(&self) -> String {
        self.json().render()
    }

    /// The report as a JSON tree (the document [`Self::to_json`]
    /// renders).
    pub fn json(&self) -> Json {
        Json::Obj(vec![
            ("schema", Json::str(BENCH_SCHEMA)),
            (
                "meta",
                Json::Obj(vec![
                    ("cpus", Json::count(self.meta.cpus)),
                    ("debug", Json::Bool(self.meta.debug)),
                    (
                        "git",
                        self.meta.git.as_deref().map_or(Json::Null, Json::str),
                    ),
                    ("quick", Json::Bool(self.meta.quick)),
                    ("seed", Json::UInt(self.meta.seed)),
                    ("mutant_vectors", Json::count(self.meta.mutant_vectors)),
                    ("fsim_vectors", Json::count(self.meta.fsim_vectors)),
                    ("warmup", Json::count(self.meta.warmup)),
                    ("samples", Json::count(self.meta.samples)),
                    ("wall_ms", Json::UInt(self.meta.wall_ms)),
                ]),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            ),
        ])
    }

    /// Parses a `musa.bench.v1` document (e.g. a committed
    /// `BENCH_<n>.json`).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed or missing field
    /// (or the JSON syntax error).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing `schema`")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "schema mismatch: expected `{BENCH_SCHEMA}`, found `{schema}`"
            ));
        }
        let meta = doc.get("meta").ok_or("missing `meta`")?;
        let meta_usize = |key: &str| {
            meta.get(key)
                .and_then(JsonValue::as_usize)
                .ok_or(format!("missing or non-integer `meta.{key}`"))
        };
        let cells = doc
            .get("cells")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `cells` array")?;
        Ok(BenchReport {
            meta: BenchMeta {
                cpus: meta_usize("cpus")?,
                debug: meta
                    .get("debug")
                    .and_then(JsonValue::as_bool)
                    .ok_or("missing `meta.debug`")?,
                git: meta
                    .get("git")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
                quick: meta
                    .get("quick")
                    .and_then(JsonValue::as_bool)
                    .ok_or("missing `meta.quick`")?,
                seed: meta
                    .get("seed")
                    .and_then(JsonValue::as_u64)
                    .ok_or("missing `meta.seed`")?,
                mutant_vectors: meta_usize("mutant_vectors")?,
                fsim_vectors: meta_usize("fsim_vectors")?,
                warmup: meta_usize("warmup")?,
                samples: meta_usize("samples")?,
                wall_ms: meta
                    .get("wall_ms")
                    .and_then(JsonValue::as_u64)
                    .ok_or("missing `meta.wall_ms`")?,
            },
            cells: cells
                .iter()
                .enumerate()
                .map(|(i, c)| cell_from_json(c).map_err(|e| format!("cells[{i}]: {e}")))
                .collect::<Result<Vec<_>, String>>()?,
        })
    }
}

fn cell_json(cell: &BenchCell) -> Json {
    let opt_usize = |v: Option<usize>| v.map_or(Json::Null, Json::count);
    Json::Obj(vec![
        ("id", Json::str(cell.id())),
        ("workload", Json::str(cell.workload.slug())),
        ("bench", Json::str(&cell.bench)),
        (
            "engine",
            cell.engine.map_or(Json::Null, |e| Json::str(e.name())),
        ),
        ("opt", cell.opt.map_or(Json::Null, |o| Json::str(o.name()))),
        ("jobs", opt_usize(cell.jobs)),
        (
            "fault_reduce",
            cell.fault_reduce
                .map_or(Json::Null, |r| Json::str(if r { "on" } else { "off" })),
        ),
        (
            "wall",
            Json::Obj(vec![
                ("median_ns", Json::Float(cell.wall.median)),
                ("mad_ns", Json::Float(cell.wall.mad)),
                ("min_ns", Json::Float(cell.wall.min)),
                ("samples", Json::count(cell.wall.samples)),
            ]),
        ),
        (
            "invariants",
            Json::Obj(vec![
                ("population", opt_usize(cell.invariants.population)),
                ("killed", opt_usize(cell.invariants.killed)),
                ("lane_passes", opt_usize(cell.invariants.lane_passes)),
                ("faults_total", opt_usize(cell.invariants.faults_total)),
                (
                    "faults_simulated",
                    opt_usize(cell.invariants.faults_simulated),
                ),
                ("detected", opt_usize(cell.invariants.detected)),
            ]),
        ),
    ])
}

fn cell_from_json(value: &JsonValue) -> Result<BenchCell, String> {
    let workload = match value.get("workload").and_then(JsonValue::as_str) {
        Some("mutant_exec") => BenchWorkload::MutantExec,
        Some("fault_sim") => BenchWorkload::FaultSim,
        other => return Err(format!("unknown workload {other:?}")),
    };
    let bench = value
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or("missing `bench`")?
        .to_string();
    let engine = match value.get("engine").and_then(JsonValue::as_str) {
        Some(name) => Some(name.parse::<Engine>()?),
        None => None,
    };
    let opt = match value.get("opt").and_then(JsonValue::as_str) {
        Some("full") => Some(OptLevel::Full),
        Some("off") => Some(OptLevel::Off),
        Some(other) => return Err(format!("bad opt `{other}`")),
        // Reports committed before the optimizer existed have no
        // `opt` key; their lane cells keep the legacy `lanes` id.
        None => None,
    };
    let fault_reduce = match value.get("fault_reduce").and_then(JsonValue::as_str) {
        Some("on") => Some(true),
        Some("off") => Some(false),
        Some(other) => return Err(format!("bad fault_reduce `{other}`")),
        None => None,
    };
    let wall = value.get("wall").ok_or("missing `wall`")?;
    let wall_f64 = |key: &str| {
        wall.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("missing or non-numeric `wall.{key}`"))
    };
    let inv = value.get("invariants").ok_or("missing `invariants`")?;
    let inv_opt = |key: &str| -> Result<Option<usize>, String> {
        match inv.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => v
                .as_usize()
                .map(Some)
                .ok_or(format!("non-integer `invariants.{key}`")),
        }
    };
    Ok(BenchCell {
        workload,
        bench,
        engine,
        opt,
        jobs: match value.get("jobs") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(v.as_usize().ok_or("non-integer `jobs`")?),
        },
        fault_reduce,
        wall: RobustStats {
            median: wall_f64("median_ns")?,
            mad: wall_f64("mad_ns")?,
            min: wall_f64("min_ns")?,
            samples: wall
                .get("samples")
                .and_then(JsonValue::as_usize)
                .ok_or("missing `wall.samples`")?,
        },
        invariants: CellInvariants {
            population: inv_opt("population")?,
            killed: inv_opt("killed")?,
            lane_passes: inv_opt("lane_passes")?,
            faults_total: inv_opt("faults_total")?,
            faults_simulated: inv_opt("faults_simulated")?,
            detected: inv_opt("detected")?,
        },
    })
}

// ---------------------------------------------------------------------
// Regression detection
// ---------------------------------------------------------------------

/// What the regression gate tolerates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparePolicy {
    /// Maximum tolerated relative increase of a cell's wall-clock
    /// median before the (guarded) wall gate fires.
    pub max_wall_regression: f64,
    /// Maximum tolerated relative drop of the scalar/lanes speedup
    /// ratio before the (machine-independent) ratio gate fires.
    pub max_ratio_regression: f64,
    /// Cells whose baseline median is below this many nanoseconds are
    /// too fast to gate on wall time or to anchor a ratio: timer
    /// resolution and scheduler noise dominate.
    pub min_gate_ns: f64,
    /// The wall gate additionally requires the median shift to exceed
    /// this multiple of the summed MADs (a per-machine noise band).
    pub mad_guard: f64,
    /// Whether absolute wall-clock medians gate at all. Off for quick
    /// runs: a 1-CPU CI container gates on invariants + engine ratio
    /// only.
    pub gate_wall: bool,
}

impl ComparePolicy {
    /// The full-run policy: invariants, engine ratio **and** guarded
    /// absolute wall medians (>30 % median growth beyond 4 MADs of
    /// noise, cells ≥ 5 ms only).
    pub fn full() -> Self {
        Self {
            max_wall_regression: 0.30,
            max_ratio_regression: 0.30,
            min_gate_ns: 5_000_000.0,
            mad_guard: 4.0,
            gate_wall: true,
        }
    }

    /// The quick/CI policy: identical thresholds, but absolute wall
    /// time never gates — only invariants and the engine ratio do.
    pub fn quick() -> Self {
        Self { gate_wall: false, ..Self::full() }
    }
}

/// One gated regression found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub enum Regression {
    /// A baseline cell is absent from the current run — the grid
    /// drifted, so the trajectory is no longer comparable.
    MissingCell {
        /// The baseline cell id.
        id: String,
    },
    /// A bit-stable invariant changed.
    Invariant {
        /// The cell id.
        id: String,
        /// The invariant field.
        field: &'static str,
        /// Baseline value.
        baseline: Option<usize>,
        /// Current value.
        current: Option<usize>,
    },
    /// A cell's wall-clock median regressed beyond threshold + noise
    /// band.
    Wall {
        /// The cell id.
        id: String,
        /// Baseline median, nanoseconds.
        baseline_ns: f64,
        /// Current median, nanoseconds.
        current_ns: f64,
        /// Relative change, percent (positive = slower).
        change_pct: f64,
    },
    /// The scalar/lanes speedup ratio dropped beyond threshold.
    EngineRatio {
        /// `(workload, bench, jobs)` key, e.g. `mutant_exec/c432/jobs=1`.
        key: String,
        /// Baseline scalar÷lanes median ratio.
        baseline: f64,
        /// Current scalar÷lanes median ratio.
        current: f64,
    },
    /// The lane-tape optimizer's noopt÷opt speedup ratio dropped
    /// beyond threshold — the optimizer stopped paying for itself.
    OptRatio {
        /// `(workload, bench, jobs)` key, e.g. `mutant_exec/c432/jobs=1`.
        key: String,
        /// Baseline noopt÷opt median ratio.
        baseline: f64,
        /// Current noopt÷opt median ratio.
        current: f64,
    },
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regression::MissingCell { id } => {
                write!(f, "{id}: missing from the current run (grid drift)")
            }
            Regression::Invariant { id, field, baseline, current } => write!(
                f,
                "{id}: invariant `{field}` changed: baseline {baseline:?}, current {current:?}"
            ),
            Regression::Wall { id, baseline_ns, current_ns, change_pct } => write!(
                f,
                "{id}: median wall {:.3} ms -> {:.3} ms ({change_pct:+.1} %)",
                baseline_ns / 1e6,
                current_ns / 1e6,
            ),
            Regression::EngineRatio { key, baseline, current } => write!(
                f,
                "{key}: scalar/lanes speedup ratio fell {baseline:.2}x -> {current:.2}x"
            ),
            Regression::OptRatio { key, baseline, current } => write!(
                f,
                "{key}: lane-opt noopt/opt speedup ratio fell {baseline:.2}x -> {current:.2}x"
            ),
        }
    }
}

/// Scalar÷lanes median ratios per `(workload, bench, jobs)` key, for
/// cell pairs whose lanes median clears the gate floor.
fn engine_ratios(report: &BenchReport, min_gate_ns: f64) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for cell in &report.cells {
        if cell.engine != Some(Engine::Scalar) {
            continue;
        }
        // The lanes partner is the production configuration: optimizer
        // on, or a pre-optimizer report with no recorded level.
        let Some(partner) = report.cells.iter().find(|c| {
            c.workload == cell.workload
                && c.bench == cell.bench
                && c.jobs == cell.jobs
                && c.engine == Some(Engine::Lanes)
                && c.opt != Some(OptLevel::Off)
        }) else {
            continue;
        };
        if partner.wall.median < min_gate_ns || cell.wall.median < min_gate_ns {
            continue;
        }
        let key = format!(
            "{}/{}/jobs={}",
            cell.workload.slug(),
            cell.bench,
            match cell.jobs.unwrap_or(1) {
                0 => "auto".to_string(),
                n => n.to_string(),
            },
        );
        out.push((key, cell.wall.median / partner.wall.median));
    }
    out
}

/// Noopt÷opt median ratios per `(workload, bench, jobs)` key — the
/// lane-tape optimizer's machine-independent speedup, for cell pairs
/// whose optimized median clears the gate floor. Empty for reports
/// committed before the optimizer existed (no `lanes-noopt` cells).
fn opt_ratios(report: &BenchReport, min_gate_ns: f64) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for cell in &report.cells {
        if cell.engine != Some(Engine::Lanes) || cell.opt != Some(OptLevel::Off) {
            continue;
        }
        let Some(partner) = report.cells.iter().find(|c| {
            c.workload == cell.workload
                && c.bench == cell.bench
                && c.jobs == cell.jobs
                && c.engine == Some(Engine::Lanes)
                && c.opt == Some(OptLevel::Full)
        }) else {
            continue;
        };
        if partner.wall.median < min_gate_ns || cell.wall.median < min_gate_ns {
            continue;
        }
        let key = format!(
            "{}/{}/jobs={}",
            cell.workload.slug(),
            cell.bench,
            match cell.jobs.unwrap_or(1) {
                0 => "auto".to_string(),
                n => n.to_string(),
            },
        );
        out.push((key, cell.wall.median / partner.wall.median));
    }
    out
}

/// Diffs `current` against `baseline` under `policy` and returns every
/// gated regression (empty = gate passes). Improvements and
/// within-threshold noise return nothing; cells present only in
/// `current` (grid growth) are allowed.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    policy: &ComparePolicy,
) -> Vec<Regression> {
    let mut findings = Vec::new();
    for base_cell in &baseline.cells {
        let id = base_cell.id();
        let Some(cur_cell) = current.cells.iter().find(|c| c.id() == id) else {
            findings.push(Regression::MissingCell { id });
            continue;
        };
        // Invariants: exact equality on every field the baseline
        // populated (a field the baseline lacks may be a later schema
        // addition; one the current run dropped is drift).
        for ((field, base), (_, cur)) in base_cell
            .invariants
            .fields()
            .iter()
            .zip(cur_cell.invariants.fields().iter())
        {
            if base.is_some() && base != cur {
                findings.push(Regression::Invariant {
                    id: id.clone(),
                    field,
                    baseline: *base,
                    current: *cur,
                });
            }
        }
        // Wall gate: median growth beyond the relative threshold AND
        // the MAD noise band, for cells big enough to time reliably.
        if policy.gate_wall && base_cell.wall.median >= policy.min_gate_ns {
            let delta = cur_cell.wall.median - base_cell.wall.median;
            let band = (policy.max_wall_regression * base_cell.wall.median)
                .max(policy.mad_guard * (base_cell.wall.mad + cur_cell.wall.mad));
            if delta > band {
                findings.push(Regression::Wall {
                    id,
                    baseline_ns: base_cell.wall.median,
                    current_ns: cur_cell.wall.median,
                    change_pct: 100.0 * delta / base_cell.wall.median,
                });
            }
        }
    }
    // Engine-ratio gate: machine-independent, so it always runs.
    let current_ratios = engine_ratios(current, policy.min_gate_ns);
    for (key, base_ratio) in engine_ratios(baseline, policy.min_gate_ns) {
        let Some((_, cur_ratio)) =
            current_ratios.iter().find(|(k, _)| *k == key)
        else {
            // Cell pair fell under the gate floor on this machine (or
            // went missing — already reported above).
            continue;
        };
        if *cur_ratio < base_ratio * (1.0 - policy.max_ratio_regression) {
            findings.push(Regression::EngineRatio {
                key,
                baseline: base_ratio,
                current: *cur_ratio,
            });
        }
    }
    // Optimizer-ratio gate: same machine-independence argument as the
    // engine ratio — noopt and opt run the same work on the same box,
    // so their quotient transfers across machines.
    let current_opt = opt_ratios(current, policy.min_gate_ns);
    for (key, base_ratio) in opt_ratios(baseline, policy.min_gate_ns) {
        let Some((_, cur_ratio)) = current_opt.iter().find(|(k, _)| *k == key)
        else {
            continue;
        };
        if *cur_ratio < base_ratio * (1.0 - policy.max_ratio_regression) {
            findings.push(Regression::OptRatio {
                key,
                baseline: base_ratio,
                current: *cur_ratio,
            });
        }
    }
    findings
}

/// The next free `BENCH_<n>.json` path in `dir` (max committed index
/// plus one — gaps are not reused).
pub fn next_bench_path(dir: &std::path::Path) -> std::path::PathBuf {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                max = max.max(n);
            }
        }
    }
    dir.join(format!("BENCH_{}.json", max + 1))
}

// ---------------------------------------------------------------------
// `musa bench --history` — trajectory over committed reports
// ---------------------------------------------------------------------

/// Schema tag of the `musa bench --history` JSON document.
pub const BENCH_HISTORY_SCHEMA: &str = "musa.bench.history.v1";

/// One cell's median wall-time trajectory across the committed
/// `BENCH_<n>.json` sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// The stable cell id ([`BenchCell::id`]).
    pub id: String,
    /// Median wall time in milliseconds per report (oldest first);
    /// `None` where the report has no such cell.
    pub median_ms: Vec<Option<f64>>,
}

impl HistoryRow {
    /// Relative change (%) from the first to the last report that
    /// carries this cell; `None` with fewer than two data points.
    pub fn delta_pct(&self) -> Option<f64> {
        let mut present = self.median_ms.iter().flatten();
        let first = *present.next()?;
        let last = *present.last()?;
        (first > 0.0).then(|| 100.0 * (last - first) / first)
    }
}

/// Builds the per-cell median trajectory over `reports` (oldest
/// first). Rows keep first-appearance order, so the output is the grid
/// order of the oldest report with later additions appended.
pub fn bench_history(reports: &[BenchReport]) -> Vec<HistoryRow> {
    let mut rows: Vec<HistoryRow> = Vec::new();
    let mut index: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (i, report) in reports.iter().enumerate() {
        for cell in &report.cells {
            let id = cell.id();
            let at = *index.entry(id.clone()).or_insert_with(|| {
                rows.push(HistoryRow { id, median_ms: vec![None; reports.len()] });
                rows.len() - 1
            });
            rows[at].median_ms[i] = Some(cell.wall.median / 1e6);
        }
    }
    rows
}

/// Renders the `musa bench --history` text table: one row per cell,
/// one median-wall-ms column per committed report (`-` where a report
/// lacks the cell), and a trailing first→last Δ% column.
pub fn render_bench_history(labels: &[String], reports: &[BenchReport]) -> String {
    use std::fmt::Write as _;
    assert_eq!(labels.len(), reports.len(), "one label per report");
    let rows = bench_history(reports);
    let id_w = rows
        .iter()
        .map(|r| r.id.len())
        .chain(["cell".len()])
        .max()
        .unwrap_or(4);
    let col_ws: Vec<usize> = labels.iter().map(|l| l.len().max(8)).collect();
    let mut out = String::new();
    let _ = write!(out, "{:<id_w$}", "cell");
    for (label, w) in labels.iter().zip(&col_ws) {
        let _ = write!(out, "  {label:>w$}");
    }
    out.push_str("      Δ%\n");
    for row in &rows {
        let _ = write!(out, "{:<id_w$}", row.id);
        for (median, w) in row.median_ms.iter().zip(&col_ws) {
            match median {
                Some(ms) => {
                    let _ = write!(out, "  {ms:>w$.2}");
                }
                None => {
                    let _ = write!(out, "  {:>w$}", "-");
                }
            }
        }
        match row.delta_pct() {
            Some(delta) => {
                let _ = writeln!(out, "  {delta:>+6.1}");
            }
            None => {
                let _ = writeln!(out, "  {:>6}", "-");
            }
        }
    }
    let _ = writeln!(
        out,
        "{} report(s), {} cell(s); medians in ms",
        reports.len(),
        rows.len()
    );
    out
}

/// Renders the `musa bench --history` JSON document
/// (`musa.bench.history.v1`): the report labels plus every
/// [`HistoryRow`] with its nullable per-report medians and Δ%.
pub fn bench_history_json(labels: &[String], reports: &[BenchReport]) -> String {
    assert_eq!(labels.len(), reports.len(), "one label per report");
    let cells = bench_history(reports)
        .into_iter()
        .map(|row| {
            let delta = row.delta_pct();
            Json::Obj(vec![
                ("id", Json::str(row.id)),
                (
                    "median_ms",
                    Json::Arr(
                        row.median_ms
                            .iter()
                            .map(|m| m.map_or(Json::Null, Json::Float))
                            .collect(),
                    ),
                ),
                ("delta_pct", delta.map_or(Json::Null, Json::Float)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema", Json::str(BENCH_HISTORY_SCHEMA)),
        ("reports", Json::Arr(labels.iter().map(Json::str).collect())),
        ("cells", Json::Arr(cells)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_cell(
        bench: &str,
        engine: Engine,
        jobs: usize,
        median_ms: f64,
        killed: usize,
    ) -> BenchCell {
        BenchCell {
            workload: BenchWorkload::MutantExec,
            bench: bench.to_string(),
            engine: Some(engine),
            opt: (engine == Engine::Lanes).then_some(OptLevel::Full),
            jobs: Some(jobs),
            fault_reduce: None,
            wall: RobustStats {
                median: median_ms * 1e6,
                mad: 0.02 * median_ms * 1e6,
                min: 0.9 * median_ms * 1e6,
                samples: 9,
            },
            invariants: CellInvariants {
                population: Some(408),
                killed: Some(killed),
                lane_passes: (engine == Engine::Lanes).then_some(7),
                ..CellInvariants::default()
            },
        }
    }

    fn fsim_cell(bench: &str, reduce: bool, median_ms: f64) -> BenchCell {
        BenchCell {
            workload: BenchWorkload::FaultSim,
            bench: bench.to_string(),
            engine: None,
            opt: None,
            jobs: None,
            fault_reduce: Some(reduce),
            wall: RobustStats {
                median: median_ms * 1e6,
                mad: 0.02 * median_ms * 1e6,
                min: 0.9 * median_ms * 1e6,
                samples: 9,
            },
            invariants: CellInvariants {
                faults_total: Some(398),
                faults_simulated: Some(if reduce { 310 } else { 398 }),
                detected: Some(371),
                ..CellInvariants::default()
            },
        }
    }

    fn report(cells: Vec<BenchCell>) -> BenchReport {
        BenchReport {
            meta: BenchMeta {
                cpus: 1,
                debug: false,
                git: Some("deadbee".into()),
                quick: false,
                seed: DEFAULT_SEED,
                mutant_vectors: MUTANT_VECTORS,
                fsim_vectors: FSIM_VECTORS,
                warmup: 3,
                samples: 9,
                wall_ms: 1000,
            },
            cells,
        }
    }

    fn grid() -> Vec<BenchCell> {
        vec![
            exec_cell("c432", Engine::Scalar, 1, 92.0, 301),
            exec_cell("c432", Engine::Lanes, 1, 10.0, 301),
            fsim_cell("c432", false, 8.0),
            fsim_cell("c432", true, 7.4),
        ]
    }

    #[test]
    fn cell_ids_are_stable() {
        assert_eq!(
            exec_cell("c432", Engine::Lanes, 0, 1.0, 5).id(),
            "mutant_exec/c432/lanes-opt/jobs=auto"
        );
        let mut noopt = exec_cell("c432", Engine::Lanes, 1, 1.0, 5);
        noopt.opt = Some(OptLevel::Off);
        assert_eq!(noopt.id(), "mutant_exec/c432/lanes-noopt/jobs=1");
        // Pre-optimizer reports (no recorded level) keep the legacy id.
        let mut legacy = exec_cell("c432", Engine::Lanes, 1, 1.0, 5);
        legacy.opt = None;
        assert_eq!(legacy.id(), "mutant_exec/c432/lanes/jobs=1");
        assert_eq!(
            exec_cell("b01", Engine::Scalar, 1, 1.0, 5).id(),
            "mutant_exec/b01/scalar/jobs=1"
        );
        assert_eq!(fsim_cell("b01", true, 1.0).id(), "fault_sim/b01/reduce=on");
    }

    #[test]
    fn identical_reports_pass_both_policies() {
        let r = report(grid());
        assert_eq!(compare(&r, &r, &ComparePolicy::full()), vec![]);
        assert_eq!(compare(&r, &r, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn improvement_passes() {
        let baseline = report(grid());
        let mut current = report(grid());
        for cell in &mut current.cells {
            cell.wall.median *= 0.5;
            cell.wall.min *= 0.5;
        }
        assert_eq!(compare(&baseline, &current, &ComparePolicy::full()), vec![]);
    }

    #[test]
    fn within_threshold_noise_passes() {
        let baseline = report(grid());
        let mut current = report(grid());
        for cell in &mut current.cells {
            cell.wall.median *= 1.10; // +10 % < 30 % threshold
        }
        assert_eq!(compare(&baseline, &current, &ComparePolicy::full()), vec![]);
    }

    #[test]
    fn regression_in_exactly_one_cell_is_pinned_to_that_cell() {
        let baseline = report(grid());
        let mut current = report(grid());
        current.cells[0].wall.median *= 2.0; // scalar c432: 92 -> 184 ms
        let findings = compare(&baseline, &current, &ComparePolicy::full());
        assert_eq!(findings.len(), 1, "{findings:?}");
        let Regression::Wall { id, change_pct, .. } = &findings[0] else {
            panic!("{findings:?}");
        };
        assert_eq!(id, "mutant_exec/c432/scalar/jobs=1");
        assert!((change_pct - 100.0).abs() < 1e-9);
        // The same doubling is invisible to the quick policy (wall gate
        // off) — a slower scalar *raises* the scalar/lanes ratio.
        assert_eq!(compare(&baseline, &current, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn tiny_cells_never_gate_on_wall() {
        let baseline = report(vec![exec_cell("c17", Engine::Scalar, 1, 0.5, 9)]);
        let mut current = report(vec![exec_cell("c17", Engine::Scalar, 1, 4.0, 9)]);
        current.cells[0].wall.mad = 0.0;
        // 8x slower but under the 5 ms floor: timer noise, not a gate.
        assert_eq!(compare(&baseline, &current, &ComparePolicy::full()), vec![]);
    }

    #[test]
    fn missing_cell_is_grid_drift() {
        let baseline = report(grid());
        let mut current = report(grid());
        current.cells.remove(1);
        let findings = compare(&baseline, &current, &ComparePolicy::quick());
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Regression::MissingCell { id } if id == "mutant_exec/c432/lanes-opt/jobs=1")),
            "{findings:?}"
        );
        // Extra cells in the current run are fine (grid growth).
        let mut grown = report(grid());
        grown.cells.push(exec_cell("b05", Engine::Scalar, 1, 50.0, 77));
        assert_eq!(compare(&baseline, &grown, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn invariant_drift_gates_even_in_quick_mode() {
        let baseline = report(grid());
        let mut current = report(grid());
        current.cells[0].invariants.killed = Some(300);
        let findings = compare(&baseline, &current, &ComparePolicy::quick());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            matches!(
                &findings[0],
                Regression::Invariant { field: "killed", baseline: Some(301), current: Some(300), .. }
            ),
            "{findings:?}"
        );
    }

    #[test]
    fn engine_ratio_regression_gates_in_quick_mode() {
        let baseline = report(grid()); // scalar 92 ms / lanes 10 ms = 9.2x
        let mut current = report(grid());
        current.cells[1].wall.median = 46.0 * 1e6; // lanes now only 2x
        let findings = compare(&baseline, &current, &ComparePolicy::quick());
        assert_eq!(findings.len(), 1, "{findings:?}");
        let Regression::EngineRatio { key, baseline: b, current: c } = &findings[0]
        else {
            panic!("{findings:?}");
        };
        assert_eq!(key, "mutant_exec/c432/jobs=1");
        assert!((b - 9.2).abs() < 1e-9);
        assert!((c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn opt_ratio_regression_gates_in_quick_mode() {
        let noopt_cell = |median_ms: f64| {
            let mut cell = exec_cell("c432", Engine::Lanes, 1, median_ms, 301);
            cell.opt = Some(OptLevel::Off);
            cell
        };
        // opt 10 ms vs noopt 20 ms: the optimizer earns 2.0x.
        let mut baseline = report(grid());
        baseline.cells.push(noopt_cell(20.0));
        // The optimizer decays to 1.1x: ratio falls past the 30 % gate.
        let mut current = report(grid());
        current.cells.push(noopt_cell(11.0));
        let findings = compare(&baseline, &current, &ComparePolicy::quick());
        assert_eq!(findings.len(), 1, "{findings:?}");
        let Regression::OptRatio { key, baseline: b, current: c } = &findings[0]
        else {
            panic!("{findings:?}");
        };
        assert_eq!(key, "mutant_exec/c432/jobs=1");
        assert!((b - 2.0).abs() < 1e-9);
        assert!((c - 1.1).abs() < 1e-9);
        // A noopt cell that speeds up alongside opt passes (ratio held),
        // and pre-optimizer baselines (no noopt cells) never gate.
        let mut faster = report(grid());
        faster.cells.push(noopt_cell(19.0));
        assert_eq!(compare(&baseline, &faster, &ComparePolicy::quick()), vec![]);
        assert_eq!(compare(&report(grid()), &current, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn sub_floor_ratios_are_skipped() {
        // b01-sized cells (lanes < 5 ms) must not anchor a ratio gate.
        let baseline = report(vec![
            exec_cell("b01", Engine::Scalar, 1, 9.0, 44),
            exec_cell("b01", Engine::Lanes, 1, 1.0, 44),
        ]);
        let mut current = report(vec![
            exec_cell("b01", Engine::Scalar, 1, 9.0, 44),
            exec_cell("b01", Engine::Lanes, 1, 4.0, 44),
        ]);
        current.cells[1].wall.mad = 0.0;
        assert_eq!(compare(&baseline, &current, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn json_round_trips() {
        let original = report(grid());
        let parsed = BenchReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        // And a null git survives too.
        let mut anonymous = report(grid());
        anonymous.meta.git = None;
        assert_eq!(
            BenchReport::from_json(&anonymous.to_json()).unwrap().meta.git,
            None
        );
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for (text, fragment) in [
            ("{", "invalid JSON"),
            ("{}", "missing `schema`"),
            (r#"{"schema": "musa.campaign.v1"}"#, "schema mismatch"),
            (r#"{"schema": "musa.bench.v1"}"#, "missing `meta`"),
        ] {
            let err = BenchReport::from_json(text).unwrap_err();
            assert!(err.contains(fragment), "{text}: {err}");
        }
        // A broken cell names its index.
        let mut doc = report(grid()).to_json();
        doc = doc.replace("\"workload\": \"fault_sim\"", "\"workload\": \"fault_simx\"");
        let err = BenchReport::from_json(&doc).unwrap_err();
        assert!(err.contains("cells[2]"), "{err}");
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn next_bench_path_skips_committed_indices() {
        let dir = std::env::temp_dir().join(format!(
            "musa-bench-path-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            next_bench_path(&dir).file_name().unwrap().to_str().unwrap(),
            "BENCH_1.json"
        );
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        assert_eq!(
            next_bench_path(&dir).file_name().unwrap().to_str().unwrap(),
            "BENCH_8.json"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quick_and_full_share_the_grid() {
        let quick = BenchOptions { quick: true, seed: 1 };
        let full = BenchOptions::default();
        assert_eq!(quick.warmup(), 1);
        assert_eq!(quick.samples(), 3);
        assert_eq!(full.warmup(), 3);
        assert_eq!(full.samples(), 9);
    }

    #[test]
    fn run_bench_on_the_smallest_circuit_produces_the_full_grid() {
        let report =
            run_bench(&[Benchmark::C17], &BenchOptions { quick: true, seed: 7 })
                .unwrap();
        // (scalar + lanes-opt + lanes-noopt) x 2 jobs + 2 reduce settings.
        assert_eq!(report.cells.len(), 8);
        let ids: Vec<String> = report.cells.iter().map(BenchCell::id).collect();
        assert_eq!(
            ids,
            [
                "mutant_exec/c17/scalar/jobs=1",
                "mutant_exec/c17/scalar/jobs=auto",
                "mutant_exec/c17/lanes-opt/jobs=1",
                "mutant_exec/c17/lanes-opt/jobs=auto",
                "mutant_exec/c17/lanes-noopt/jobs=1",
                "mutant_exec/c17/lanes-noopt/jobs=auto",
                "fault_sim/c17/reduce=off",
                "fault_sim/c17/reduce=on",
            ]
        );
        // Invariants are engine-, opt- and jobs-independent...
        let killed: Vec<Option<usize>> = report.cells[..6]
            .iter()
            .map(|c| c.invariants.killed)
            .collect();
        assert!(killed[0].unwrap() > 0);
        assert!(killed.windows(2).all(|w| w[0] == w[1]), "{killed:?}");
        // ...lane cells report their pass count, scalar cells don't...
        assert_eq!(report.cells[0].invariants.lane_passes, None);
        assert!(report.cells[2].invariants.lane_passes.unwrap() > 0);
        assert_eq!(
            report.cells[2].invariants.lane_passes,
            report.cells[4].invariants.lane_passes,
            "optimization must not change the pass structure"
        );
        // ...and the fsim pair detects identically while reduction
        // frees lanes.
        let off = &report.cells[6].invariants;
        let on = &report.cells[7].invariants;
        assert_eq!(off.detected, on.detected);
        assert_eq!(off.faults_simulated, off.faults_total);
        assert!(on.faults_simulated.unwrap() <= on.faults_total.unwrap());
        assert_eq!(report.meta.samples, 3);
        assert!(report.cells.iter().all(|c| c.wall.samples == 3));
        // A fresh identical run is invariant-identical: self-compare
        // under the quick policy passes.
        let again =
            run_bench(&[Benchmark::C17], &BenchOptions { quick: true, seed: 7 })
                .unwrap();
        assert_eq!(compare(&report, &again, &ComparePolicy::quick()), vec![]);
    }

    #[test]
    fn history_tracks_cell_medians_across_reports() {
        let r1 = report(vec![exec_cell("c17", Engine::Scalar, 1, 0.50, 100)]);
        let r2 = report(vec![
            exec_cell("c17", Engine::Scalar, 1, 0.40, 100),
            exec_cell("b01", Engine::Lanes, 1, 1.25, 80),
        ]);
        let rows = bench_history(&[r1.clone(), r2.clone()]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "mutant_exec/c17/scalar/jobs=1");
        assert_eq!(rows[0].median_ms, vec![Some(0.50), Some(0.40)]);
        let delta = rows[0].delta_pct().unwrap();
        assert!((delta + 20.0).abs() < 1e-9, "{delta}");
        // A cell appearing only in the newest report has no trajectory.
        assert_eq!(rows[1].median_ms, vec![None, Some(1.25)]);
        assert_eq!(rows[1].delta_pct(), None);

        let labels = vec!["BENCH_1".to_string(), "BENCH_2".to_string()];
        let text = render_bench_history(&labels, &[r1.clone(), r2.clone()]);
        assert!(text.contains("BENCH_1"), "{text}");
        assert!(text.contains("mutant_exec/c17/scalar/jobs=1"), "{text}");
        assert!(text.contains("2 report(s), 2 cell(s)"), "{text}");

        let doc = json::parse(&bench_history_json(&labels, &[r1, r2])).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(BENCH_HISTORY_SCHEMA)
        );
        let cells = doc.get("cells").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        let medians = cells[0].get("median_ms").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[1].as_f64(), Some(0.40));
    }
}
