//! The sampling experiment — the machinery behind Table 2.
//!
//! Paper §4: sample a fixed fraction of the mutant population (10 %),
//! generate validation data from the *sampled* mutants only, then
//! measure (a) the Mutation Score of that data against the **entire**
//! population and (b) its gate-level NLFCE versus the pseudo-random
//! baseline.

use crate::config::ExperimentConfig;
use crate::data::{coverage_of_sessions, fault_universe, random_baseline_curve};
use musa_circuits::Circuit;
use musa_metrics::{Nlfce, NlfceInputs};
use musa_mutation::{
    classify_mutants, execute_mutants, generate_mutants, EquivalenceClass, GenerateOptions,
    KillResult, Mutant, MutationError, MutationScore,
};
use musa_prng::{Prng, SplitMix64};
use musa_testgen::{mutation_guided_tests, sample_mutants, MgConfig, SamplingStrategy};

/// Outcome of one sampling experiment (one Table 2 cell pair).
#[derive(Debug, Clone)]
pub struct SamplingOutcome {
    /// Strategy label (`random` / `test-oriented`).
    pub strategy: &'static str,
    /// Total mutant population size (`M`).
    pub population: usize,
    /// Number of sampled mutants the data was generated from.
    pub sampled: usize,
    /// Mutation Score of the generated data on the full population, in
    /// percent (paper's `MS%`).
    pub mutation_score_pct: f64,
    /// The full score breakdown.
    pub score: MutationScore,
    /// Gate-level metrics of the generated data vs the random baseline.
    pub metrics: Nlfce,
    /// NLFCE convenience copy (`metrics.nlfce`).
    pub nlfce: f64,
    /// Total validation-data length.
    pub data_len: usize,
}

/// Runs one sampling experiment on a circuit.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant execution.
pub fn run_sampling_experiment(
    circuit: &Circuit,
    strategy: SamplingStrategy,
    config: &ExperimentConfig,
) -> Result<SamplingOutcome, MutationError> {
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    run_sampling_experiment_on(circuit, &population, strategy, config)
}

/// Same as [`run_sampling_experiment`] but over a pre-generated
/// population (avoids re-enumeration when comparing strategies).
///
/// Averages `config.repetitions` independent repetitions (fresh sample,
/// data and baseline seeds each time): single 10 % samples are noisy.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant execution.
pub fn run_sampling_experiment_on(
    circuit: &Circuit,
    population: &[Mutant],
    strategy: SamplingStrategy,
    config: &ExperimentConfig,
) -> Result<SamplingOutcome, MutationError> {
    let mut seeder = SplitMix64::new(config.seed ^ 0xA5A5_5A5A_1234_4321);
    let repetitions = config.repetitions.max(1);
    let mut outcomes = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        outcomes.push(run_sampling_once(
            circuit,
            population,
            &strategy,
            config,
            seeder.next_u64(),
            seeder.next_u64(),
            seeder.next_u64(),
        )?);
    }
    let n = outcomes.len() as f64;
    let mut mean = outcomes.last().cloned().expect("repetitions >= 1");
    mean.mutation_score_pct = outcomes.iter().map(|o| o.mutation_score_pct).sum::<f64>() / n;
    mean.nlfce = outcomes.iter().map(|o| o.nlfce).sum::<f64>() / n;
    mean.metrics.delta_fc_pct =
        outcomes.iter().map(|o| o.metrics.delta_fc_pct).sum::<f64>() / n;
    mean.metrics.delta_l_pct =
        outcomes.iter().map(|o| o.metrics.delta_l_pct).sum::<f64>() / n;
    mean.metrics.nlfce = mean.nlfce;
    mean.data_len =
        (outcomes.iter().map(|o| o.data_len).sum::<usize>() as f64 / n).round() as usize;
    Ok(mean)
}

#[allow(clippy::too_many_arguments)]
fn run_sampling_once(
    circuit: &Circuit,
    population: &[Mutant],
    strategy: &SamplingStrategy,
    config: &ExperimentConfig,
    sample_seed: u64,
    mg_seed: u64,
    baseline_seed: u64,
) -> Result<SamplingOutcome, MutationError> {
    // 1. Sample the population.
    let selected = sample_mutants(population, strategy, sample_seed);
    let subset: Vec<Mutant> = selected.iter().map(|&i| population[i].clone()).collect();

    // 2. Validation data from the sampled mutants only.
    let mg = MgConfig {
        seed: mg_seed,
        ..config.mg
    };
    let generated = mutation_guided_tests(&circuit.checked, &circuit.name, &subset, &mg)?;

    // 3. Mutation Score on the FULL population.
    let kills = kills_over_sessions(circuit, population, &generated.sessions)?;
    let classes = classify_survivors(circuit, population, &kills, config)?;
    let score = MutationScore::from_results(&kills, &classes);

    // 4. Gate-level efficiency of the same data.
    let faults = fault_universe(circuit);
    let mutation_curve = coverage_of_sessions(circuit, &faults, &generated.sessions);
    let baseline_len = config.baseline_len(mutation_curve.len());
    let random_curve = random_baseline_curve(circuit, &faults, baseline_len, baseline_seed);
    let metrics = NlfceInputs {
        mutation: &mutation_curve,
        random: &random_curve,
    }
    .compute();

    Ok(SamplingOutcome {
        strategy: strategy.label(),
        population: population.len(),
        sampled: subset.len(),
        mutation_score_pct: score.percent(),
        score,
        metrics,
        nlfce: metrics.nlfce,
        data_len: generated.total_len(),
    })
}

/// Executes the whole population against multi-session data with fault
/// dropping across sessions.
pub(crate) fn kills_over_sessions(
    circuit: &Circuit,
    population: &[Mutant],
    sessions: &[Vec<Vec<musa_hdl::Bits>>],
) -> Result<KillResult, MutationError> {
    let mut first_kill: Vec<Option<usize>> = vec![None; population.len()];
    let mut base = 0usize;
    for session in sessions {
        let live: Vec<usize> = (0..population.len())
            .filter(|&i| first_kill[i].is_none())
            .collect();
        if live.is_empty() {
            base += session.len();
            continue;
        }
        let subset: Vec<Mutant> = live.iter().map(|&i| population[i].clone()).collect();
        let result = execute_mutants(&circuit.checked, &circuit.name, &subset, session)?;
        for (slot, &mi) in live.iter().enumerate() {
            if let Some(t) = result.first_kill[slot] {
                first_kill[mi] = Some(base + t);
            }
        }
        base += session.len();
    }
    Ok(KillResult { first_kill })
}

/// Classifies only the surviving mutants (killed ones are trivially
/// non-equivalent), sparing the bulk of the equivalence budget.
pub(crate) fn classify_survivors(
    circuit: &Circuit,
    population: &[Mutant],
    kills: &KillResult,
    config: &ExperimentConfig,
) -> Result<Vec<EquivalenceClass>, MutationError> {
    let survivors: Vec<usize> = kills.alive();
    let subset: Vec<Mutant> = survivors.iter().map(|&i| population[i].clone()).collect();
    let survivor_classes = classify_mutants(
        &circuit.checked,
        &circuit.name,
        &subset,
        &config.equivalence,
    )?;
    let mut classes = vec![EquivalenceClass::Killable; population.len()];
    for (slot, &mi) in survivors.iter().enumerate() {
        classes[mi] = survivor_classes[slot];
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_circuits::Benchmark;
    use musa_testgen::OperatorWeights;

    #[test]
    fn random_sampling_experiment_runs_on_c17() {
        let c17 = Benchmark::C17.load().unwrap();
        let outcome = run_sampling_experiment(
            &c17,
            SamplingStrategy::random(0.5),
            &ExperimentConfig::fast(0x21),
        )
        .unwrap();
        assert_eq!(outcome.strategy, "random");
        assert!(outcome.population > 0);
        assert_eq!(
            outcome.sampled,
            ((outcome.population as f64 * 0.5).round() as usize).max(1)
        );
        assert!(outcome.mutation_score_pct > 0.0);
        assert!(outcome.mutation_score_pct <= 100.0);
        assert!(outcome.data_len > 0);
    }

    #[test]
    fn full_fraction_scores_at_least_any_subset() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x33);
        let population = generate_mutants(
            &c17.checked,
            &c17.name,
            &GenerateOptions::default(),
        );
        let all = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(1.0),
            &config,
        )
        .unwrap();
        let tenth = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(0.10),
            &config,
        )
        .unwrap();
        assert!(
            all.mutation_score_pct + 1e-9 >= tenth.mutation_score_pct,
            "all={} tenth={}",
            all.mutation_score_pct,
            tenth.mutation_score_pct
        );
    }

    #[test]
    fn strategies_share_the_population_and_budget() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x44);
        let population = generate_mutants(
            &c17.checked,
            &c17.name,
            &GenerateOptions::default(),
        );
        let random = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(0.25),
            &config,
        )
        .unwrap();
        let oriented = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::test_oriented(0.25, OperatorWeights::new()),
            &config,
        )
        .unwrap();
        assert_eq!(random.population, oriented.population);
        assert_eq!(random.sampled, oriented.sampled);
    }

    #[test]
    fn sequential_circuit_experiment_runs() {
        let b01 = Benchmark::B01.load().unwrap();
        let outcome = run_sampling_experiment(
            &b01,
            SamplingStrategy::random(0.3),
            &ExperimentConfig::fast(0x55),
        )
        .unwrap();
        assert!(outcome.mutation_score_pct > 0.0);
        assert!(outcome.data_len > 0);
    }
}
