//! The sampling experiment — the machinery behind Table 2.
//!
//! Paper §4: sample a fixed fraction of the mutant population (10 %),
//! generate validation data from the *sampled* mutants only, then
//! measure (a) the Mutation Score of that data against the **entire**
//! population and (b) its gate-level NLFCE versus the pseudo-random
//! baseline.

use crate::config::ExperimentConfig;
use crate::data::{
    coverage_of_sessions, coverage_of_sessions_reduced, fault_universe, random_baseline_curve,
    reduced_universe, FaultSimStats,
};
use crate::parallel::{split_jobs, try_par_map};
use musa_circuits::Circuit;
use musa_metrics::{Nlfce, NlfceInputs};
use musa_analysis::screen_population;
use musa_mutation::{
    classify_mutants, execute_mutants_engine_opt, generate_mutants, survivor_class, Engine,
    EquivalenceClass, GenerateOptions, KillResult, Mutant, MutationError, MutationScore,
    OptLevel,
};
use musa_prng::{Prng, SplitMix64};
use musa_testgen::{mutation_guided_tests, sample_mutants, MgConfig, SamplingStrategy};

/// Outcome of one sampling experiment (one Table 2 cell pair).
#[derive(Debug, Clone)]
pub struct SamplingOutcome {
    /// Strategy label (`random` / `test-oriented`).
    pub strategy: &'static str,
    /// Total mutant population size (`M`).
    pub population: usize,
    /// Number of sampled mutants the data was generated from.
    pub sampled: usize,
    /// Mutation Score of the generated data on the full population, in
    /// percent (paper's `MS%`).
    pub mutation_score_pct: f64,
    /// The full score breakdown.
    pub score: MutationScore,
    /// Gate-level metrics of the generated data vs the random baseline.
    pub metrics: Nlfce,
    /// NLFCE convenience copy (`metrics.nlfce`).
    pub nlfce: f64,
    /// Total validation-data length.
    pub data_len: usize,
    /// Lane occupancy of the mutation-data fault simulation:
    /// `faults_simulated < faults_total` when dominance reduction
    /// ([`ExperimentConfig::fault_reduce`]) credited faults out of the
    /// lanes. Coverage numbers are identical either way.
    pub fault_sim: FaultSimStats,
    /// Mutants the static pre-screen ([`ExperimentConfig::screen`])
    /// proved equivalent without simulation. They skip every execution
    /// stage and fold into the `E` term with the class full execution
    /// would report, so every score is identical with screening off.
    pub screened: usize,
}

/// Runs one sampling experiment on a circuit.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant execution.
pub fn run_sampling_experiment(
    circuit: &Circuit,
    strategy: SamplingStrategy,
    config: &ExperimentConfig,
) -> Result<SamplingOutcome, MutationError> {
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    run_sampling_experiment_on(circuit, &population, strategy, config)
}

/// Same as [`run_sampling_experiment`] but over a pre-generated
/// population (avoids re-enumeration when comparing strategies).
///
/// Averages `config.repetitions` independent repetitions (fresh sample,
/// data and baseline seeds each time): single 10 % samples are noisy.
/// Every repetition's three seeds are pre-drawn from the `SplitMix64`
/// stream in serial order and the repetitions are then sharded across
/// `config.jobs` worker threads, so the returned aggregate is
/// bit-identical for every thread count (see [`crate::parallel`]).
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant execution.
pub fn run_sampling_experiment_on(
    circuit: &Circuit,
    population: &[Mutant],
    strategy: SamplingStrategy,
    config: &ExperimentConfig,
) -> Result<SamplingOutcome, MutationError> {
    let seeds = repetition_seed_schedule(config);
    let repetitions = seeds.len();
    // The fault universe and its dominance reduction are pure netlist
    // analyses: compute them once, not once per repetition.
    let faults = fault_universe(circuit);
    let reduction = config
        .fault_reduce
        .then(|| reduced_universe(circuit, &faults));
    // The static pre-screen is likewise a pure analysis of the checked
    // design and the population — one pass serves every repetition.
    let screened = screen_mask(circuit, population, config);
    if let Some(mask) = &screened {
        let proven = mask.iter().filter(|&&s| s).count();
        musa_trace::count("screened", proven as u64);
    }
    // Repetitions get the outer share of the thread budget; each
    // repetition's mutant executions split what remains.
    let (outer_jobs, inner_jobs) = split_jobs(config.jobs, repetitions);
    let _trace = musa_trace::span_detail("repetitions", || circuit.name.clone());
    let outcomes = try_par_map(outer_jobs, &seeds, |rep, &[sample, mg, baseline]| {
        let outcome = run_sampling_once(
            circuit,
            population,
            &strategy,
            config,
            &faults,
            reduction.as_ref(),
            screened.as_deref(),
            sample,
            mg,
            baseline,
            inner_jobs,
        );
        musa_trace::progress(|| {
            format!(
                "{}: repetition {}/{} done",
                circuit.name,
                rep + 1,
                repetitions
            )
        });
        outcome
    })?;
    let mut aggregate = SamplingAggregate::new();
    for (repetition, outcome) in outcomes.into_iter().enumerate() {
        aggregate.push(repetition, outcome);
    }
    Ok(aggregate.finish())
}

/// The repetition seed schedule: triple `i` — `[sample, mg, baseline]`
/// — is exactly what serial repetition `i` draws from the `SplitMix64`
/// stream. Seed assignment is position-based and drawn before any
/// worker exists, so every scheduler (serial, threaded, out-of-process)
/// hands repetition `i` identical seeds.
fn repetition_seed_schedule(config: &ExperimentConfig) -> Vec<[u64; 3]> {
    let mut seeder = SplitMix64::new(config.seed ^ 0xA5A5_5A5A_1234_4321);
    (0..config.repetitions.max(1))
        .map(|_| [seeder.next_u64(), seeder.next_u64(), seeder.next_u64()])
        .collect()
}

/// The static pre-screen mask (`Some` only when screening is on):
/// `mask[i]` flags mutant `i` as statically proven equivalent.
fn screen_mask(
    circuit: &Circuit,
    population: &[Mutant],
    config: &ExperimentConfig,
) -> Option<Vec<bool>> {
    config.screen.then(|| {
        screen_population(&circuit.checked, &circuit.name, population)
            .iter()
            .map(|class| class.is_proven())
            .collect()
    })
}

/// Shared state for running individual sampling repetitions out of
/// order — or out of process (`musa campaign --workers N`).
///
/// [`run_sampling_experiment_on`] is the in-process driver; this struct
/// exposes the **same** per-repetition computation — identical seed
/// schedule, shared fault universe, dominance reduction and static
/// screen — so any scheduler that runs every repetition (in any order,
/// on any machine) and folds them through a [`SamplingAggregate`]
/// reproduces the in-process outcome bit for bit.
pub struct SamplingRun<'a> {
    circuit: &'a Circuit,
    population: &'a [Mutant],
    strategy: SamplingStrategy,
    config: &'a ExperimentConfig,
    faults: Vec<musa_netlist::Fault>,
    reduction: Option<musa_netlist::FaultReduction>,
    screened: Option<Vec<bool>>,
    seeds: Vec<[u64; 3]>,
}

impl<'a> SamplingRun<'a> {
    /// Precomputes the shared per-circuit state (fault universe,
    /// dominance reduction, static screen, seed schedule).
    pub fn new(
        circuit: &'a Circuit,
        population: &'a [Mutant],
        strategy: SamplingStrategy,
        config: &'a ExperimentConfig,
    ) -> Self {
        let faults = fault_universe(circuit);
        let reduction = config.fault_reduce.then(|| reduced_universe(circuit, &faults));
        let screened = screen_mask(circuit, population, config);
        let seeds = repetition_seed_schedule(config);
        Self { circuit, population, strategy, config, faults, reduction, screened, seeds }
    }

    /// Number of repetitions the schedule holds
    /// (`config.repetitions.max(1)`).
    pub fn repetitions(&self) -> usize {
        self.seeds.len()
    }

    /// Runs repetition `repetition` exactly as the in-process driver
    /// would: same seeds, same shared analyses. Mutant executions use
    /// `config.jobs` worker threads (a wall-clock knob only).
    ///
    /// # Errors
    ///
    /// Propagates [`MutationError`] from mutant execution.
    ///
    /// # Panics
    ///
    /// Panics if `repetition >= self.repetitions()`.
    pub fn run_repetition(&self, repetition: usize) -> Result<SamplingOutcome, MutationError> {
        let [sample, mg, baseline] = self.seeds[repetition];
        run_sampling_once(
            self.circuit,
            self.population,
            &self.strategy,
            self.config,
            &self.faults,
            self.reduction.as_ref(),
            self.screened.as_deref(),
            sample,
            mg,
            baseline,
            self.config.jobs,
        )
    }
}

/// Index-ordered merge of per-repetition [`SamplingOutcome`]s.
///
/// Replaces the former clone-the-last-repetition-and-patch-some-fields
/// scheme, which silently reported repetition *N*'s values for every
/// field it forgot to re-average. Here every field has an explicit,
/// audited policy:
///
/// | field | aggregation |
/// |---|---|
/// | `strategy`, `population` | invariant across repetitions (asserted) |
/// | `mutation_score_pct`, `nlfce`, `metrics.delta_fc_pct`, `metrics.delta_l_pct`, `metrics.nlfce` | arithmetic mean |
/// | `sampled`, `data_len`, `metrics.mutation_len`, `score.killed`, `score.equivalent`, `fault_sim.faults_simulated` | mean, rounded via [`SamplingAggregate::mean_rounded`] |
/// | `score.generated`, `fault_sim.faults_total` | invariant across repetitions (asserted) |
/// | `metrics.random_len_at_equal_fc` | rounded mean when every repetition reports `Some`, else `None` (a single saturated baseline makes the mean meaningless) |
///
/// Outcomes are keyed by repetition index and [`finish`] always reduces
/// in index order, so the merge is **order-independent**: push order —
/// hence worker scheduling — cannot change a single output bit.
///
/// [`finish`]: SamplingAggregate::finish
#[derive(Debug, Default)]
pub struct SamplingAggregate {
    outcomes: Vec<(usize, SamplingOutcome)>,
}

impl SamplingAggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of repetition `repetition`.
    ///
    /// # Panics
    ///
    /// Panics if the same repetition index is pushed twice.
    pub fn push(&mut self, repetition: usize, outcome: SamplingOutcome) {
        assert!(
            self.outcomes.iter().all(|(r, _)| *r != repetition),
            "repetition {repetition} pushed twice"
        );
        self.outcomes.push((repetition, outcome));
    }

    /// Number of repetitions recorded so far.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no repetition has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The workspace-wide rounding policy for averaged integer counts:
    /// **round half up** (`⌊mean + 1/2⌋`), computed in exact integer
    /// arithmetic so half-way cases can never wobble with float
    /// representation. `mean_rounded(3, 2)` — lengths 1 and 2 — is 2.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn mean_rounded(sum: usize, n: usize) -> usize {
        assert!(n > 0, "mean of zero repetitions");
        (2 * sum + n) / (2 * n)
    }

    /// Reduces the recorded repetitions, in repetition-index order, to
    /// one aggregated [`SamplingOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if no outcome was pushed, or if a field documented as
    /// invariant differs between repetitions.
    pub fn finish(mut self) -> SamplingOutcome {
        assert!(!self.outcomes.is_empty(), "no repetitions to aggregate");
        self.outcomes.sort_by_key(|(repetition, _)| *repetition);
        let outcomes: Vec<SamplingOutcome> =
            self.outcomes.into_iter().map(|(_, o)| o).collect();
        let first = &outcomes[0];
        let n = outcomes.len();
        let nf = n as f64;
        for o in &outcomes[1..] {
            assert_eq!(o.strategy, first.strategy, "strategy varies between repetitions");
            assert_eq!(
                o.population, first.population,
                "population varies between repetitions"
            );
            assert_eq!(
                o.score.generated, first.score.generated,
                "generated count varies between repetitions"
            );
            assert_eq!(
                o.fault_sim.faults_total, first.fault_sim.faults_total,
                "fault universe varies between repetitions"
            );
            assert_eq!(
                o.screened, first.screened,
                "static screen verdicts vary between repetitions"
            );
        }
        let mean_f = |field: fn(&SamplingOutcome) -> f64| -> f64 {
            outcomes.iter().map(field).sum::<f64>() / nf
        };
        let mean_n = |field: fn(&SamplingOutcome) -> usize| -> usize {
            Self::mean_rounded(outcomes.iter().map(field).sum(), n)
        };
        let nlfce = mean_f(|o| o.nlfce);
        let random_len_at_equal_fc = outcomes
            .iter()
            .map(|o| o.metrics.random_len_at_equal_fc)
            .collect::<Option<Vec<usize>>>()
            .map(|lens| Self::mean_rounded(lens.iter().sum(), n));
        SamplingOutcome {
            strategy: first.strategy,
            population: first.population,
            sampled: mean_n(|o| o.sampled),
            mutation_score_pct: mean_f(|o| o.mutation_score_pct),
            score: MutationScore {
                generated: first.score.generated,
                killed: mean_n(|o| o.score.killed),
                equivalent: mean_n(|o| o.score.equivalent),
            },
            metrics: Nlfce {
                delta_fc_pct: mean_f(|o| o.metrics.delta_fc_pct),
                delta_l_pct: mean_f(|o| o.metrics.delta_l_pct),
                nlfce,
                mutation_len: mean_n(|o| o.metrics.mutation_len),
                random_len_at_equal_fc,
            },
            nlfce,
            data_len: mean_n(|o| o.data_len),
            fault_sim: FaultSimStats {
                faults_simulated: mean_n(|o| o.fault_sim.faults_simulated),
                faults_total: first.fault_sim.faults_total,
            },
            screened: first.screened,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sampling_once(
    circuit: &Circuit,
    population: &[Mutant],
    strategy: &SamplingStrategy,
    config: &ExperimentConfig,
    faults: &[musa_netlist::Fault],
    reduction: Option<&musa_netlist::FaultReduction>,
    screened: Option<&[bool]>,
    sample_seed: u64,
    mg_seed: u64,
    baseline_seed: u64,
    jobs: usize,
) -> Result<SamplingOutcome, MutationError> {
    // 1. Sample the population.
    let selected = {
        let _trace = musa_trace::span("sample");
        sample_mutants(population, strategy, sample_seed)
    };
    let subset: Vec<Mutant> = selected.iter().map(|&i| population[i].clone()).collect();

    // 2. Validation data from the sampled mutants only.
    let mg = MgConfig {
        seed: mg_seed,
        ..config.mg
    };
    let generated = {
        let _trace = musa_trace::span("generate_data");
        mutation_guided_tests(&circuit.checked, &circuit.name, &subset, &mg)?
    };

    // 3. Mutation Score on the FULL population. Statically screened
    // mutants never enter the simulator: they stay unkilled and are
    // classified directly with the class execution would report.
    let kills = {
        let _trace = musa_trace::span("mutant_exec");
        kills_over_sessions(
            circuit,
            population,
            &generated.sessions,
            jobs,
            config.engine,
            config.opt,
            screened,
        )?
    };
    let classes = {
        let _trace = musa_trace::span("classify");
        classify_survivors(circuit, population, &kills, config, screened)?
    };
    let score = MutationScore::from_results(&kills, &classes);

    // 4. Gate-level efficiency of the same data. The mutation-data
    // fault simulation honours the dominance-reduction knob (its final
    // coverage is exact either way); the baseline stays on full
    // simulation because its curve interior feeds dFC/dL directly.
    let (mutation_curve, fault_sim) = {
        let _trace = musa_trace::span("fault_sim");
        match reduction {
            Some(reduction) => {
                coverage_of_sessions_reduced(circuit, reduction, &generated.sessions)
            }
            None => (
                coverage_of_sessions(circuit, faults, &generated.sessions),
                FaultSimStats::full(faults.len()),
            ),
        }
    };
    musa_trace::count("faults_simulated", fault_sim.faults_simulated as u64);
    musa_trace::count("faults_total", fault_sim.faults_total as u64);
    let baseline_len = config.baseline_len(mutation_curve.len());
    let random_curve = {
        let _trace = musa_trace::span("baseline");
        random_baseline_curve(circuit, faults, baseline_len, baseline_seed)
    };
    let metrics = NlfceInputs {
        mutation: &mutation_curve,
        random: &random_curve,
    }
    .compute();

    Ok(SamplingOutcome {
        strategy: strategy.label(),
        population: population.len(),
        sampled: subset.len(),
        mutation_score_pct: score.percent(),
        score,
        metrics,
        nlfce: metrics.nlfce,
        data_len: generated.total_len(),
        fault_sim,
        screened: screened.map_or(0, |mask| mask.iter().filter(|&&s| s).count()),
    })
}

/// Executes the whole population against multi-session data with fault
/// dropping across sessions, sharding each session's live mutants (or
/// lane groups, on the lane engine) across `jobs` worker threads.
/// Mutants flagged in `screened` are statically proven unkillable and
/// never occupy a simulation slot (their `first_kill` stays `None`,
/// exactly as exhaustive execution would leave it).
#[allow(clippy::too_many_arguments)]
pub(crate) fn kills_over_sessions(
    circuit: &Circuit,
    population: &[Mutant],
    sessions: &[Vec<Vec<musa_hdl::Bits>>],
    jobs: usize,
    engine: Engine,
    opt: OptLevel,
    screened: Option<&[bool]>,
) -> Result<KillResult, MutationError> {
    let mut first_kill: Vec<Option<usize>> = vec![None; population.len()];
    let mut base = 0usize;
    for session in sessions {
        let live: Vec<usize> = (0..population.len())
            .filter(|&i| first_kill[i].is_none() && !screened.is_some_and(|m| m[i]))
            .collect();
        if live.is_empty() {
            base += session.len();
            continue;
        }
        let subset: Vec<Mutant> = live.iter().map(|&i| population[i].clone()).collect();
        let result = execute_mutants_engine_opt(
            &circuit.checked,
            &circuit.name,
            &subset,
            session,
            jobs,
            engine,
            opt,
        )?;
        for (slot, &mi) in live.iter().enumerate() {
            if let Some(t) = result.first_kill[slot] {
                first_kill[mi] = Some(base + t);
            }
        }
        base += session.len();
    }
    Ok(KillResult { first_kill })
}

/// Classifies only the surviving mutants (killed ones are trivially
/// non-equivalent), sparing the bulk of the equivalence budget.
/// Survivors flagged in `screened` are assigned [`survivor_class`]
/// directly — the class [`classify_mutants`] reports for any mutant
/// that survives every sequence, which a statically proven-equivalent
/// mutant is guaranteed to do — so the budget is spent only on the
/// mutants that genuinely need it.
pub(crate) fn classify_survivors(
    circuit: &Circuit,
    population: &[Mutant],
    kills: &KillResult,
    config: &ExperimentConfig,
    screened: Option<&[bool]>,
) -> Result<Vec<EquivalenceClass>, MutationError> {
    let survivors: Vec<usize> = kills.alive();
    let to_simulate: Vec<usize> = survivors
        .iter()
        .copied()
        .filter(|&i| !screened.is_some_and(|m| m[i]))
        .collect();
    let subset: Vec<Mutant> = to_simulate.iter().map(|&i| population[i].clone()).collect();
    let survivor_classes = classify_mutants(
        &circuit.checked,
        &circuit.name,
        &subset,
        &config.equivalence,
    )?;
    let mut classes = vec![EquivalenceClass::Killable; population.len()];
    for (slot, &mi) in to_simulate.iter().enumerate() {
        classes[mi] = survivor_classes[slot];
    }
    if let Some(mask) = screened {
        let info = circuit
            .checked
            .entity_info(&circuit.name)
            .ok_or_else(|| MutationError::EntityNotFound(circuit.name.clone()))?;
        let class = survivor_class(info, &config.equivalence);
        for &mi in survivors.iter().filter(|&&i| mask[i]) {
            classes[mi] = class;
        }
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_circuits::Benchmark;
    use musa_testgen::OperatorWeights;
    use proptest::prelude::*;

    /// A synthetic outcome whose every field is derived from `k`, so
    /// repetitions are guaranteed to differ wherever aggregation must
    /// actually aggregate.
    fn synthetic(k: usize) -> SamplingOutcome {
        SamplingOutcome {
            strategy: "random",
            population: 100,
            sampled: 10 + k,
            mutation_score_pct: 50.0 + k as f64,
            score: MutationScore {
                generated: 100,
                killed: 40 + 2 * k,
                equivalent: k,
            },
            metrics: Nlfce {
                delta_fc_pct: 1.0 + k as f64,
                delta_l_pct: 10.0 + k as f64,
                nlfce: 100.0 + k as f64,
                mutation_len: 20 + k,
                random_len_at_equal_fc: Some(200 + k),
            },
            nlfce: 100.0 + k as f64,
            data_len: 30 + k,
            fault_sim: FaultSimStats {
                faults_simulated: 50 + k,
                faults_total: 80,
            },
            // Invariant across repetitions (screening is one pass over
            // the shared population), like `population` above.
            screened: 7,
        }
    }

    /// Byte-identical comparison: `Debug` for `f64` round-trips the
    /// exact bit pattern, so equal strings mean equal bits everywhere.
    fn assert_identical(a: &SamplingOutcome, b: &SamplingOutcome, what: &str) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
    }

    #[test]
    fn aggregate_averages_every_field_not_just_the_headline_ones() {
        // Regression: the old merge cloned the LAST repetition and only
        // re-averaged MS/NLFCE/ΔFC/ΔL/data_len, so sampled, kill
        // counts and curve lengths silently reported repetition N.
        let mut agg = SamplingAggregate::new();
        agg.push(0, synthetic(0));
        agg.push(1, synthetic(4));
        let mean = agg.finish();
        assert_eq!(mean.strategy, "random");
        assert_eq!(mean.population, 100);
        assert_eq!(mean.sampled, 12, "sampled must be the mean, not rep N's");
        assert_eq!(mean.score.generated, 100);
        assert_eq!(mean.score.killed, 44, "killed must be the mean, not rep N's");
        assert_eq!(mean.score.equivalent, 2);
        assert_eq!(mean.metrics.mutation_len, 22);
        assert_eq!(mean.metrics.random_len_at_equal_fc, Some(202));
        assert_eq!(mean.data_len, 32);
        assert_eq!(mean.fault_sim.faults_simulated, 52);
        assert_eq!(mean.fault_sim.faults_total, 80);
        assert_eq!(mean.screened, 7);
        assert!((mean.mutation_score_pct - 52.0).abs() < 1e-12);
        assert!((mean.nlfce - 102.0).abs() < 1e-12);
        assert!((mean.metrics.nlfce - 102.0).abs() < 1e-12);
        assert!((mean.metrics.delta_fc_pct - 3.0).abs() < 1e-12);
        assert!((mean.metrics.delta_l_pct - 12.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_drops_saturation_length_when_any_rep_lacks_it() {
        let mut agg = SamplingAggregate::new();
        agg.push(0, synthetic(0));
        let mut unsaturated = synthetic(2);
        unsaturated.metrics.random_len_at_equal_fc = None;
        agg.push(1, unsaturated);
        assert_eq!(agg.finish().metrics.random_len_at_equal_fc, None);
    }

    #[test]
    fn mean_rounding_policy_is_half_up_in_exact_arithmetic() {
        // Lengths 1 and 2 average to 1.5: policy says round half UP.
        assert_eq!(SamplingAggregate::mean_rounded(3, 2), 2);
        // And never half-down on the other side of an integer.
        assert_eq!(SamplingAggregate::mean_rounded(5, 2), 3);
        assert_eq!(SamplingAggregate::mean_rounded(4, 2), 2);
        assert_eq!(SamplingAggregate::mean_rounded(0, 3), 0);
        assert_eq!(SamplingAggregate::mean_rounded(10, 4), 3); // 2.5 -> 3
        // The half-way case that decides Table 1's vector-count column.
        let mut agg = SamplingAggregate::new();
        let mut a = synthetic(0);
        a.data_len = 1;
        let mut b = synthetic(1);
        b.data_len = 2;
        agg.push(0, a);
        agg.push(1, b);
        assert_eq!(agg.finish().data_len, 2);
    }

    #[test]
    #[should_panic(expected = "no repetitions to aggregate")]
    fn finish_on_the_empty_aggregate_panics_with_a_clear_message() {
        // The contract is explicit: an aggregate holds at least one
        // repetition before `finish` (the experiment loop guarantees
        // `repetitions.max(1)`); finishing empty is a caller bug and
        // must fail loudly, not return a fabricated outcome.
        let agg = SamplingAggregate::new();
        assert!(agg.is_empty());
        assert_eq!(agg.len(), 0);
        let _ = agg.finish();
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn aggregate_rejects_duplicate_repetition_indices() {
        let mut agg = SamplingAggregate::new();
        agg.push(0, synthetic(0));
        agg.push(0, synthetic(1));
    }

    #[test]
    fn parallel_jobs_are_bit_identical_to_serial_on_c17_and_b01() {
        for bench in [Benchmark::C17, Benchmark::B01] {
            let circuit = bench.load().unwrap();
            let population = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let config = ExperimentConfig::fast(0xD0_0D);
            let serial = run_sampling_experiment_on(
                &circuit,
                &population,
                SamplingStrategy::random(0.4),
                &config.with_jobs(1),
            )
            .unwrap();
            for jobs in [2, 8] {
                let parallel = run_sampling_experiment_on(
                    &circuit,
                    &population,
                    SamplingStrategy::random(0.4),
                    &config.with_jobs(jobs),
                )
                .unwrap();
                assert_identical(
                    &serial,
                    &parallel,
                    &format!("{bench}: jobs=1 vs jobs={jobs}"),
                );
            }
        }
    }

    #[test]
    fn lane_engine_outcome_is_bit_identical_to_scalar() {
        for bench in [Benchmark::C17, Benchmark::B01] {
            let circuit = bench.load().unwrap();
            let population = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let config = ExperimentConfig::fast(0xE6);
            let scalar = run_sampling_experiment_on(
                &circuit,
                &population,
                SamplingStrategy::random(0.4),
                &config,
            )
            .unwrap();
            for jobs in [1, 4] {
                let lanes = run_sampling_experiment_on(
                    &circuit,
                    &population,
                    SamplingStrategy::random(0.4),
                    &config.with_engine(Engine::Lanes).with_jobs(jobs),
                )
                .unwrap();
                assert_identical(
                    &scalar,
                    &lanes,
                    &format!("{bench}: scalar vs lanes (jobs={jobs})"),
                );
            }
        }
    }

    #[test]
    fn kill_results_are_identical_across_job_counts_on_b01_and_c17() {
        for bench in [Benchmark::B01, Benchmark::C17] {
            let circuit = bench.load().unwrap();
            let population = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let info = circuit.checked.entity_info(&circuit.name).unwrap();
            let sequence = musa_testgen::random_sequence(info, 24, 0xBEEF);
            let serial = musa_mutation::execute_mutants(
                &circuit.checked,
                &circuit.name,
                &population,
                &sequence,
            )
            .unwrap();
            for jobs in [0, 2, 8] {
                let sharded = musa_mutation::execute_mutants_jobs(
                    &circuit.checked,
                    &circuit.name,
                    &population,
                    &sequence,
                    jobs,
                )
                .unwrap();
                assert_eq!(
                    sharded.first_kill, serial.first_kill,
                    "{bench}: jobs={jobs}"
                );
            }
        }
    }

    proptest! {
        /// The merge is order-independent: pushing the same repetitions
        /// in any arrival order yields a byte-identical aggregate —
        /// the property that makes worker scheduling unobservable.
        #[test]
        fn aggregate_is_push_order_independent(
            values in proptest::collection::vec(0usize..1000, 2..9),
            rotation in 1usize..8,
        ) {
            let n = values.len();
            let mut in_order = SamplingAggregate::new();
            for (i, &v) in values.iter().enumerate() {
                in_order.push(i, synthetic(v));
            }
            let mut rotated = SamplingAggregate::new();
            for off in 0..n {
                let i = (off + rotation) % n;
                rotated.push(i, synthetic(values[i]));
            }
            let a = in_order.finish();
            let b = rotated.finish();
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn sampling_run_repetitions_aggregate_to_the_in_process_outcome() {
        // The per-repetition API behind `musa campaign --workers` must
        // reproduce the in-process driver bit for bit — including when
        // repetitions are pushed out of order, as worker merges do.
        for bench in [Benchmark::C17, Benchmark::B01] {
            let circuit = bench.load().unwrap();
            let population = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let config = ExperimentConfig::fast(0x5EED);
            let strategy = SamplingStrategy::random(0.4);
            let in_process =
                run_sampling_experiment_on(&circuit, &population, strategy.clone(), &config)
                    .unwrap();
            let run = SamplingRun::new(&circuit, &population, strategy, &config);
            assert_eq!(run.repetitions(), config.repetitions);
            let mut aggregate = SamplingAggregate::new();
            for repetition in (0..run.repetitions()).rev() {
                aggregate.push(repetition, run.run_repetition(repetition).unwrap());
            }
            assert_identical(&in_process, &aggregate.finish(), &format!("{bench}"));
        }
    }

    #[test]
    fn random_sampling_experiment_runs_on_c17() {
        let c17 = Benchmark::C17.load().unwrap();
        let outcome = run_sampling_experiment(
            &c17,
            SamplingStrategy::random(0.5),
            &ExperimentConfig::fast(0x21),
        )
        .unwrap();
        assert_eq!(outcome.strategy, "random");
        assert!(outcome.population > 0);
        assert_eq!(
            outcome.sampled,
            ((outcome.population as f64 * 0.5).round() as usize).max(1)
        );
        assert!(outcome.mutation_score_pct > 0.0);
        assert!(outcome.mutation_score_pct <= 100.0);
        assert!(outcome.data_len > 0);
    }

    #[test]
    fn full_fraction_scores_at_least_any_subset() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x33);
        let population = generate_mutants(
            &c17.checked,
            &c17.name,
            &GenerateOptions::default(),
        );
        let all = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(1.0),
            &config,
        )
        .unwrap();
        let tenth = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(0.10),
            &config,
        )
        .unwrap();
        assert!(
            all.mutation_score_pct + 1e-9 >= tenth.mutation_score_pct,
            "all={} tenth={}",
            all.mutation_score_pct,
            tenth.mutation_score_pct
        );
    }

    #[test]
    fn strategies_share_the_population_and_budget() {
        let c17 = Benchmark::C17.load().unwrap();
        let config = ExperimentConfig::fast(0x44);
        let population = generate_mutants(
            &c17.checked,
            &c17.name,
            &GenerateOptions::default(),
        );
        let random = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::random(0.25),
            &config,
        )
        .unwrap();
        let oriented = run_sampling_experiment_on(
            &c17,
            &population,
            SamplingStrategy::test_oriented(0.25, OperatorWeights::new()),
            &config,
        )
        .unwrap();
        assert_eq!(random.population, oriented.population);
        assert_eq!(random.sampled, oriented.sampled);
    }

    #[test]
    fn sequential_circuit_experiment_runs() {
        let b01 = Benchmark::B01.load().unwrap();
        let outcome = run_sampling_experiment(
            &b01,
            SamplingStrategy::random(0.3),
            &ExperimentConfig::fast(0x55),
        )
        .unwrap();
        assert!(outcome.mutation_score_pct > 0.0);
        assert!(outcome.data_len > 0);
    }
}
