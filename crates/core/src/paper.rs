//! Paper-reported values, for side-by-side printing.
//!
//! Lived in `musa_bench` until the campaign redesign; the campaign
//! text renderers reproduce the bench binaries' stdout — including the
//! paper-comparison blocks — so the constants now sit next to them
//! (`musa_bench::paper` re-exports this module unchanged).

/// Table 1 rows as printed in the paper:
/// `(circuit, operator, ΔFC%, ΔL%, NLFCE)`.
pub const TABLE1: &[(&str, &str, f64, f64, f64)] = &[
    ("b01", "LOR", 0.66, 10.84, 7.16),
    ("b01", "VR", 1.36, 17.43, 23.7),
    ("b01", "CVR", 1.72, 18.81, 32.3),
    ("b01", "CR", 2.32, 37.60, 87.3),
    ("b03", "VR", 4.10, 28.39, 116.0),
    ("b03", "CVR", 8.08, 55.29, 447.0),
    ("b03", "CR", 9.57, 49.89, 477.0),
    ("c432", "LOR", 4.14, 32.35, 134.0),
    ("c432", "VR", 9.40, 56.62, 532.0),
    ("c432", "CVR", 11.67, 81.86, 955.0),
    ("c499", "LOR", 4.72, 64.26, 303.0),
    ("c499", "VR", 6.18, 73.10, 452.0),
    ("c499", "CVR", 4.53, 84.96, 385.0),
];

/// Table 2 rows: `(circuit, TO MS%, TO NLFCE, RS MS%, RS NLFCE)`.
pub const TABLE2: &[(&str, f64, f64, f64, f64)] = &[
    ("b01", 85.98, 340.0, 83.71, 278.0),
    ("b03", 64.16, 1089.0, 62.22, 712.0),
    ("c432", 88.18, 708.0, 85.62, 419.0),
    ("c499", 94.75, 518.0, 90.32, 500.0),
];
