//! A minimal, dependency-free JSON emitter **and parser** for campaign
//! and benchmark reports.
//!
//! The build environment is offline (no `serde`), so [`Json`] is a tiny
//! hand-rolled value tree with a **stable** pretty printer: object keys
//! render in insertion order, floats render with Rust's
//! shortest-round-trip `Display` (deterministic, bit-faithful), and
//! non-finite floats render as `null`. The golden-file test in
//! `tests/cli.rs` pins the emitted schema.
//!
//! The read side ([`parse`] → [`JsonValue`]) exists so `musa bench
//! --baseline BENCH_<n>.json` can load a committed benchmark report.
//! It is a strict RFC 8259 recursive-descent parser over the subset the
//! emitter produces (plus `\uXXXX` escapes and scientific notation);
//! numbers that look integral parse as [`JsonValue::Int`] /
//! [`JsonValue::UInt`] so `u64` seeds round-trip exactly, everything
//! else as [`JsonValue::Float`].

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (seeds are full-range `u64`).
    UInt(u64),
    /// A float, shortest-round-trip formatted; non-finite values emit
    /// `null`.
    Float(f64),
    /// A string (escaped per RFC 8259).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value from any `usize` count.
    pub fn count(n: usize) -> Json {
        Json::Int(n as i64)
    }

    /// `Some(n)` → integer, `None` → `null`.
    pub fn opt_count(n: Option<usize>) -> Json {
        n.map_or(Json::Null, Json::count)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, no
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted, RFC 8259-escaped JSON string (shared by
/// string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value. Unlike the emit-side [`Json`] (whose object
/// keys are `&'static str` because every emitted schema is known at
/// compile time), keys here are owned strings read from the document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer (counts, seeds).
    UInt(u64),
    /// Any other number (fractional part, exponent, or out of integer
    /// range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(u) => Some(u),
            JsonValue::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::UInt(u) => Some(u as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a document failed to parse: a message and the byte offset it
/// was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document (one value plus optional
/// whitespace).
///
/// # Errors
///
/// Returns a [`JsonParseError`] describing the first offending byte —
/// including trailing garbage after the value.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.error("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // continuation bytes are always well formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let unit = self.hex4()?;
        // Surrogate pairs: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        let code = if (0xD800..=0xDBFF).contains(&unit) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(self.error("invalid low surrogate"));
                }
                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.error("lone high surrogate"));
            }
        } else if (0xDC00..=0xDFFF).contains(&unit) {
            return Err(self.error("lone low surrogate"));
        } else {
            unit
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        // RFC 8259: no leading zeros.
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(JsonParseError {
                message: "leading zero in number".to_string(),
                offset: digits_start,
            });
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn object_keys_are_escaped_like_string_values() {
        let v = Json::Obj(vec![("a\"b", Json::Null)]);
        assert_eq!(v.render(), "{\n  \"a\\\"b\": null\n}");
    }

    #[test]
    fn containers_render_stably() {
        let v = Json::Obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    null\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_round_trip_shortest() {
        // Display is shortest-round-trip: the bit pattern survives.
        let x = 0.1 + 0.2;
        assert_eq!(Json::Float(x).render().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn opt_count_maps_none_to_null() {
        assert_eq!(Json::opt_count(None).render(), "null");
        assert_eq!(Json::opt_count(Some(7)).render(), "7");
    }

    // -- parser ---------------------------------------------------------

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap(), JsonValue::Float(-0.25));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\u00e9\uD83D\uDE00""#).unwrap(),
            JsonValue::Str("a\"b\\c\ndé😀".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), JsonValue::Str("héllo".into()));
    }

    #[test]
    fn parses_containers_preserving_key_order() {
        let v = parse(r#"{"b": 1, "a": [2, null, {"x": false}]}"#).unwrap();
        let JsonValue::Obj(fields) = &v else { panic!("{v:?}") };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("b").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("x").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let emitted = Json::Obj(vec![
            ("seed", Json::UInt(0xDA7E_2005)),
            ("pi", Json::Float(3.25)),
            ("none", Json::Null),
            ("names", Json::Arr(vec![Json::str("a b"), Json::str("c\"d")])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ])
        .render();
        let parsed = parse(&emitted).unwrap();
        assert_eq!(parsed.get("seed").and_then(JsonValue::as_u64), Some(0xDA7E_2005));
        assert_eq!(parsed.get("pi").and_then(JsonValue::as_f64), Some(3.25));
        assert_eq!(parsed.get("none"), Some(&JsonValue::Null));
        assert_eq!(
            parsed.get("names").and_then(JsonValue::as_arr).unwrap()[1].as_str(),
            Some("c\"d")
        );
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for (text, fragment) in [
            ("", "expected a JSON value"),
            ("{", "expected `\"`"),
            ("[1,]", "expected a JSON value"),
            ("{\"a\" 1}", "expected `:`"),
            ("\"abc", "unterminated string"),
            ("01", "leading zero"),
            ("1.", "expected digits after `.`"),
            ("tru", "expected `true`"),
            ("1 2", "trailing characters"),
            ("\"\\uD800\"", "lone high surrogate"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains(fragment),
                "{text:?}: got {err} (wanted {fragment:?})"
            );
        }
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = parse(r#"{"n": -1, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1.0));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }
}
