//! A minimal, dependency-free JSON emitter for campaign reports.
//!
//! The build environment is offline (no `serde`), so [`Json`] is a tiny
//! hand-rolled value tree with a **stable** pretty printer: object keys
//! render in insertion order, floats render with Rust's
//! shortest-round-trip `Display` (deterministic, bit-faithful), and
//! non-finite floats render as `null`. The golden-file test in
//! `tests/cli.rs` pins the emitted schema.

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (seeds are full-range `u64`).
    UInt(u64),
    /// A float, shortest-round-trip formatted; non-finite values emit
    /// `null`.
    Float(f64),
    /// A string (escaped per RFC 8259).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value from any `usize` count.
    pub fn count(n: usize) -> Json {
        Json::Int(n as i64)
    }

    /// `Some(n)` → integer, `None` → `null`.
    pub fn opt_count(n: Option<usize>) -> Json {
        n.map_or(Json::Null, Json::count)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, no
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted, RFC 8259-escaped JSON string (shared by
/// string values and object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn object_keys_are_escaped_like_string_values() {
        let v = Json::Obj(vec![("a\"b", Json::Null)]);
        assert_eq!(v.render(), "{\n  \"a\\\"b\": null\n}");
    }

    #[test]
    fn containers_render_stably() {
        let v = Json::Obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    null\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_round_trip_shortest() {
        // Display is shortest-round-trip: the bit pattern survives.
        let x = 0.1 + 0.2;
        assert_eq!(Json::Float(x).render().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn opt_count_maps_none_to_null() {
        assert_eq!(Json::opt_count(None).render(), "null");
        assert_eq!(Json::opt_count(Some(7)).render(), "7");
    }
}
