//! # musa-core — the DATE'05 mutation-sampling pipeline
//!
//! The paper's contribution, end to end:
//!
//! 1. [`OperatorProfile::measure`] — per-operator stuck-at efficiency
//!    (`ΔFC%`, `ΔL%`, `NLFCE`): **Table 1**;
//! 2. [`OperatorProfile::weights`] — efficiency weights for the
//!    test-oriented sampler;
//! 3. [`run_sampling_experiment`] — sample → generate validation data →
//!    Mutation Score on the full population + gate-level NLFCE:
//!    **Table 2**;
//! 4. [`Table1`] / [`Table2`] — drivers that regenerate the paper's
//!    tables on the benchmark suite;
//! 5. extension experiments [`sweep_fractions`] (E1),
//!    [`coverage_curves`] (E2), [`atpg_topup`] (E3) and
//!    [`equivalence_ablation`] (E4);
//! 6. the [`Campaign`] builder — the typed front door every CLI caller
//!    routes through: validate once, run any [`Task`], get a [`Report`]
//!    with run metadata, a stable text rendering and JSON;
//! 7. the benchmark trajectory ([`run_bench`], `musa bench`) — a fixed
//!    grid of timed workloads summarized with robust statistics,
//!    emitted as `musa.bench.v1` JSON and regression-gated against
//!    committed `BENCH_<n>.json` baselines.
//!
//! Repetition loops and mutant executions are sharded across worker
//! threads by the [`parallel`] module, and every differential-
//! simulation stage can run on the bit-parallel mutant lane engine
//! ([`ExperimentConfig::engine`], 63 mutants + reference per pass);
//! outcomes are bit-identical for every [`ExperimentConfig::jobs`]
//! value and both engines.
//!
//! # Example
//!
//! ```
//! use musa_circuits::Benchmark;
//! use musa_core::{run_sampling_experiment, ExperimentConfig};
//! use musa_testgen::SamplingStrategy;
//!
//! let circuit = Benchmark::C17.load()?;
//! let config = ExperimentConfig::fast(0xC0FFEE);
//! let outcome = run_sampling_experiment(&circuit, SamplingStrategy::random(0.5), &config)?;
//! println!(
//!     "MS = {:.2}%  NLFCE = {:+.0}  ({} vectors)",
//!     outcome.mutation_score_pct, outcome.nlfce, outcome.data_len
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_task;
pub mod campaign;
mod config;
mod data;
mod experiment;
mod extensions;
pub mod json;
pub mod lint_task;
pub mod paper;
pub mod parallel;
mod profile;
mod tables;
pub mod trace_report;

pub use bench_task::{
    bench_history, bench_history_json, compare, next_bench_path, render_bench_history, run_bench,
    BenchCell, BenchMeta, BenchOptions, BenchReport, BenchWorkload, CellInvariants, ComparePolicy,
    HistoryRow, Regression, BENCH_HISTORY_SCHEMA, BENCH_SCHEMA, DEFAULT_BENCHES,
};
pub use campaign::{
    curve_json, metrics_json, outcome_json, score_json, BenchAblation, BenchOutcome, BenchSweep,
    BenchTopUp, Campaign, CampaignError, CampaignPlan, MgOutcome, Preset, Report, ReportData,
    RunMeta, Task, DEFAULT_SEED,
};
pub use config::ExperimentConfig;
pub use json::Json;
pub use lint_task::{
    lint_bench, lint_report_json, lint_source, render_lint_text, total_findings,
    LintFindingRow, LintRow, LINT_SCHEMA,
};
pub use data::{
    coverage_of_sessions, coverage_of_sessions_reduced, fault_universe, random_baseline_curve,
    reduced_universe, sessions_to_patterns, FaultSimStats,
};
pub use experiment::{
    run_sampling_experiment, run_sampling_experiment_on, SamplingAggregate, SamplingOutcome,
    SamplingRun,
};
pub use parallel::{available_jobs, par_map, resolve_jobs, split_jobs, try_par_map};
pub use extensions::{
    atpg_topup, atpg_topup_on, coverage_curves, equivalence_ablation, sweep_fractions,
    AblationPoint, CurvePair, SweepPoint, TopUpMode, TopUpOutcome,
};
pub use profile::{OperatorEfficiency, OperatorProfile};
pub use trace_report::{
    chrome_json, render_profile, render_profile_data, trace_json, trace_json_with,
    validate_trace_document, TRACE_SCHEMA,
};
pub use tables::{Table1, Table1Row, Table2, Table2Row, TableError};
