//! The `Campaign` builder — one typed front door for every experiment.
//!
//! Before this module, each entry point (`run_sampling_experiment`,
//! [`OperatorProfile::measure`], [`Table1::measure`], the E1–E4
//! extension drivers) was a free function with its own plumbing for
//! seed / jobs / engine / preset, and every CLI caller re-implemented
//! argument handling and stdout formatting around them. A [`Campaign`]
//! validates its inputs **once**, runs the selected [`Task`] through
//! the existing deterministic parallel machinery, and returns a typed
//! [`Report`] that wraps today's result structs plus run metadata —
//! with a stable text renderer ([`Report::render_text`], byte-identical
//! to the pre-redesign binaries' stdout) and a dependency-free JSON
//! emitter ([`Report::to_json`]).
//!
//! ```
//! use musa_core::{Campaign, ReportData, Task};
//!
//! let report = Campaign::named("c17")
//!     .fast()
//!     .seed(7)
//!     .jobs(2)
//!     .task(Task::Sampling { fraction: 0.5 })
//!     .run()?;
//! let ReportData::Sampling(rows) = &report.data else { unreachable!() };
//! assert_eq!(rows[0].bench, "c17");
//! assert!(rows[0].outcome.mutation_score_pct > 0.0);
//! println!("{}", report.to_json());
//! # Ok::<(), musa_core::CampaignError>(())
//! ```

use crate::bench_task::{run_bench, BenchOptions, BenchReport};
use crate::config::ExperimentConfig;
use crate::lint_task::{lint_bench, lint_report_json, render_lint_text, LintRow};
use crate::experiment::{run_sampling_experiment, SamplingOutcome};
use crate::extensions::{
    atpg_topup_on, coverage_curves, equivalence_ablation, sweep_fractions, AblationPoint,
    CurvePair, SweepPoint, TopUpOutcome,
};
use crate::json::Json;
use crate::parallel::resolve_jobs;
use crate::profile::OperatorProfile;
use crate::tables::{Table1, Table2, TableError};
use musa_circuits::Benchmark;
use musa_metrics::{f2, pct, signed0, Align, Nlfce, Table};
use musa_mutation::{
    generate_mutants, Engine, GenerateOptions, MutationOperator, MutationScore, OptLevel,
};
use musa_testgen::{mutation_guided_tests, SamplingStrategy};
use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Which configuration preset a campaign starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// [`ExperimentConfig::paper`] — the paper-scale configuration.
    Paper,
    /// [`ExperimentConfig::fast`] — the scaled-down configuration.
    Fast,
    /// An explicit [`Campaign::config`] override (no preset applies).
    Custom,
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Preset::Paper => "paper",
            Preset::Fast => "fast",
            Preset::Custom => "custom",
        })
    }
}

/// The experiment a [`Campaign`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Task {
    /// One sampling experiment per benchmark: random `fraction` sample,
    /// mutation-guided data, MS on the full population + NLFCE
    /// (the machinery behind Table 2; `musa sample`).
    Sampling {
        /// Mutant-population fraction to sample, in `(0, 1]`.
        fraction: f64,
    },
    /// Per-operator stuck-at efficiency profile per benchmark.
    OperatorProfile {
        /// Operators to measure.
        operators: Vec<MutationOperator>,
    },
    /// Mutation-guided validation-data generation from the full
    /// population, reporting data lengths and kill counts.
    MutationGuided,
    /// Table 1 — operator fault-coverage efficiency over the campaign's
    /// benchmarks.
    Table1 {
        /// Operators to measure.
        operators: Vec<MutationOperator>,
    },
    /// Table 2 — test-oriented vs random sampling at `fraction`.
    Table2 {
        /// Mutant-population fraction both strategies sample.
        fraction: f64,
    },
    /// E1 — sampling-fraction sweep per benchmark.
    SweepFraction {
        /// The fractions to sweep, each in `(0, 1]`.
        fractions: Vec<f64>,
    },
    /// E2 — MFC/RFC coverage-versus-length curves per benchmark.
    CoverageCurves {
        /// Samples taken from each curve.
        points: usize,
    },
    /// E3 — ATPG top-up with/without validation-data reuse
    /// (combinational benchmarks only).
    AtpgTopup {
        /// PODEM backtrack limit per fault.
        backtrack_limit: u64,
    },
    /// E4 — equivalence-budget ablation per benchmark.
    EquivalenceAblation {
        /// The presumption budgets to ablate over.
        budgets: Vec<usize>,
    },
    /// Benchmark trajectory — the fixed grid of timed workloads behind
    /// `musa bench` and the committed `BENCH_<n>.json` baselines (see
    /// [`crate::bench_task`]).
    Bench {
        /// Quick mode: fewer warmup passes and samples, same grid and
        /// invariants.
        quick: bool,
    },
    /// Static lint catalog over the campaign's benchmark sources
    /// (`musa lint`; see [`crate::lint_task`]).
    Lint,
}

impl Task {
    /// The task's JSON name.
    pub fn slug(&self) -> &'static str {
        match self {
            Task::Sampling { .. } => "sampling",
            Task::OperatorProfile { .. } => "operator-profile",
            Task::MutationGuided => "mutation-guided",
            Task::Table1 { .. } => "table1",
            Task::Table2 { .. } => "table2",
            Task::SweepFraction { .. } => "sweep-fraction",
            Task::CoverageCurves { .. } => "coverage-curves",
            Task::AtpgTopup { .. } => "atpg-topup",
            Task::EquivalenceAblation { .. } => "equivalence-ablation",
            Task::Bench { .. } => "bench",
            Task::Lint => "lint",
        }
    }
}

/// Why a campaign refused to run (validation) or failed (execution).
#[derive(Debug)]
pub enum CampaignError {
    /// No task was set; call [`Campaign::task`].
    MissingTask,
    /// The benchmark list is empty.
    NoBenchmarks,
    /// A benchmark name did not resolve (see `musa list`).
    UnknownBench(String),
    /// Both [`Campaign::paper`] and [`Campaign::fast`] were requested.
    PresetConflict,
    /// The effective configuration has zero repetitions.
    ZeroRepetitions,
    /// A sampling fraction outside `(0, 1]`.
    BadFraction(f64),
    /// [`Task::AtpgTopup`] was pointed at a sequential benchmark.
    NotCombinational(String),
    /// A multi-benchmark table driver failed.
    Task(TableError),
    /// A per-benchmark stage failed.
    Run {
        /// The benchmark being measured when the failure occurred.
        bench: String,
        /// The underlying failure.
        source: TableError,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MissingTask => write!(f, "campaign has no task (call .task(...))"),
            CampaignError::NoBenchmarks => write!(f, "campaign has no benchmarks"),
            CampaignError::UnknownBench(name) => write!(f, "unknown benchmark `{name}`"),
            CampaignError::PresetConflict => {
                write!(f, "conflicting presets: `paper` and `fast` both requested")
            }
            CampaignError::ZeroRepetitions => {
                write!(f, "config.repetitions must be at least 1")
            }
            CampaignError::BadFraction(_) => write!(f, "fraction must be in (0, 1]"),
            CampaignError::NotCombinational(name) => {
                write!(f, "ATPG top-up targets combinational circuits; `{name}` is sequential")
            }
            CampaignError::Task(e) => write!(f, "{e}"),
            CampaignError::Run { bench, source } => write!(f, "{bench}: {source}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Task(e) | CampaignError::Run { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for CampaignError {
    fn from(e: TableError) -> Self {
        CampaignError::Task(e)
    }
}

/// Builder for one experiment run — the single front door every caller
/// (the `musa` CLI, the six bench binaries, library users) drives
/// identically. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct Campaign {
    benches: Vec<String>,
    config: Option<ExperimentConfig>,
    seed: Option<u64>,
    jobs: Option<usize>,
    engine: Option<Engine>,
    fault_reduce: Option<bool>,
    screen: Option<bool>,
    opt: Option<OptLevel>,
    paper: bool,
    fast: bool,
    task: Option<Task>,
    trace: bool,
}

/// The default master seed, shared with the pre-redesign CLIs.
pub const DEFAULT_SEED: u64 = 0xDA7E_2005;

impl Campaign {
    /// A campaign over one bundled benchmark.
    pub fn new(bench: Benchmark) -> Self {
        Self::named(bench.name())
    }

    /// A campaign over a benchmark referenced **by name**; resolution
    /// (and the [`CampaignError::UnknownBench`] error) happens at
    /// [`Campaign::run`].
    pub fn named(name: &str) -> Self {
        Self {
            benches: vec![name.to_string()],
            config: None,
            seed: None,
            jobs: None,
            engine: None,
            fault_reduce: None,
            screen: None,
            opt: None,
            paper: false,
            fast: false,
            task: None,
            trace: false,
        }
    }

    /// Replaces the benchmark list.
    #[must_use]
    pub fn benches(mut self, benches: &[Benchmark]) -> Self {
        self.benches = benches.iter().map(|b| b.name().to_string()).collect();
        self
    }

    /// Starts from an explicit [`ExperimentConfig`] instead of a
    /// preset; the config is taken as-is (sub-seeds included) and the
    /// report's preset is [`Preset::Custom`]. Explicit
    /// [`seed`](Self::seed) / [`jobs`](Self::jobs) /
    /// [`engine`](Self::engine) calls still apply on top.
    #[must_use]
    pub fn config(mut self, config: ExperimentConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Master seed (default [`DEFAULT_SEED`]); every stage derives its
    /// own sub-seeds from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Worker-thread count (`0` = one per available CPU). Purely a
    /// wall-clock knob: results are bit-identical for every value.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Mutant-execution engine for every differential-simulation stage.
    /// Purely a wall-clock knob: outcomes are bit-identical.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Dominance fault-list reduction for the mutation-data fault
    /// simulation (default on). Reported coverage numbers are identical
    /// either way; only the lane occupancy
    /// (`faults_simulated`/`faults_total` in the JSON report) changes.
    #[must_use]
    pub fn fault_reduce(mut self, fault_reduce: bool) -> Self {
        self.fault_reduce = Some(fault_reduce);
        self
    }

    /// Static equivalent-mutant pre-screening (default on). Statically
    /// proven-equivalent mutants skip simulation and fold into the `E`
    /// term directly; every reported number is identical either way —
    /// only the `screened` count in the JSON report changes.
    #[must_use]
    pub fn screen(mut self, screen: bool) -> Self {
        self.screen = Some(screen);
        self
    }

    /// Lane-tape optimizer level (default `full`). Purely a wall-clock
    /// knob: outcomes are bit-identical at every level.
    #[must_use]
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = Some(opt);
        self
    }

    /// Selects the paper-scale preset (the default).
    #[must_use]
    pub fn paper(mut self) -> Self {
        self.paper = true;
        self
    }

    /// Selects the scaled-down preset.
    #[must_use]
    pub fn fast(mut self) -> Self {
        self.fast = true;
        self
    }

    /// Sets the experiment to run.
    #[must_use]
    pub fn task(mut self, task: Task) -> Self {
        self.task = Some(task);
        self
    }

    /// Collects a structured trace of the run (spans + counters,
    /// [`Report::trace`]). Off by default; when off, no instrumented
    /// code path ever reads the clock and every report byte is
    /// identical to an untraced run. Purely observational either way:
    /// the trace rides out-of-band on the report and never enters
    /// [`Report::render_text`] / [`Report::to_json`].
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Validates the builder without running anything.
    ///
    /// # Errors
    ///
    /// Every [`CampaignError`] validation variant: missing task, empty
    /// or unknown benchmarks, conflicting presets, zero repetitions and
    /// out-of-range fractions.
    pub fn validate(&self) -> Result<(), CampaignError> {
        self.resolve().map(|_| ())
    }

    fn resolve(&self) -> Result<CampaignPlan, CampaignError> {
        let task = self.task.clone().ok_or(CampaignError::MissingTask)?;
        if self.benches.is_empty() {
            return Err(CampaignError::NoBenchmarks);
        }
        let benches = self
            .benches
            .iter()
            .map(|name| {
                Benchmark::from_name(name)
                    .ok_or_else(|| CampaignError::UnknownBench(name.clone()))
            })
            .collect::<Result<Vec<Benchmark>, CampaignError>>()?;
        let preset = match (self.paper, self.fast) {
            (true, true) => return Err(CampaignError::PresetConflict),
            _ if self.config.is_some() => Preset::Custom,
            (false, true) => Preset::Fast,
            _ => Preset::Paper,
        };
        let mut config = match self.config {
            // An explicit config is taken as-is (its sub-seeds
            // included); only an explicit .seed() restamps it below.
            Some(config) => config,
            None => {
                let seed = self.seed.unwrap_or(DEFAULT_SEED);
                match preset {
                    Preset::Fast => ExperimentConfig::fast(seed),
                    _ => ExperimentConfig::paper(seed),
                }
            }
        };
        if let Some(seed) = self.seed {
            config.seed = seed;
            config.mg.seed = seed;
            config.equivalence.seed = seed;
        }
        if let Some(jobs) = self.jobs {
            config = config.with_jobs(jobs);
        }
        if let Some(engine) = self.engine {
            config = config.with_engine(engine);
        }
        if let Some(fault_reduce) = self.fault_reduce {
            config = config.with_fault_reduce(fault_reduce);
        }
        if let Some(screen) = self.screen {
            config = config.with_screen(screen);
        }
        if let Some(opt) = self.opt {
            config = config.with_opt(opt);
        }
        if config.repetitions == 0 {
            return Err(CampaignError::ZeroRepetitions);
        }
        let fraction_ok = |f: f64| f > 0.0 && f <= 1.0;
        match &task {
            Task::Sampling { fraction } | Task::Table2 { fraction }
                if !fraction_ok(*fraction) =>
            {
                return Err(CampaignError::BadFraction(*fraction));
            }
            Task::SweepFraction { fractions } => {
                if let Some(&bad) = fractions.iter().find(|f| !fraction_ok(**f)) {
                    return Err(CampaignError::BadFraction(bad));
                }
            }
            _ => {}
        }
        Ok(CampaignPlan { benches, config, preset, task })
    }

    /// Validates the builder and returns the fully-resolved plan — the
    /// benchmark list, effective [`ExperimentConfig`], preset and task
    /// that [`Campaign::run`] would execute. This is the canonical
    /// input for anything that must agree with a run without running
    /// it: the content-addressed result store derives its campaign key
    /// from the plan, and the multi-process sharding mode re-derives
    /// the per-repetition seed schedule from `plan().config`.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`Campaign::validate`].
    pub fn plan(&self) -> Result<CampaignPlan, CampaignError> {
        self.resolve()
    }

    /// Validates once, runs the task, and returns the typed report.
    ///
    /// # Errors
    ///
    /// Validation errors before any work starts; [`CampaignError::Task`]
    /// / [`CampaignError::Run`] when a measurement fails.
    pub fn run(&self) -> Result<Report, CampaignError> {
        // `Tracer::off` keeps every span/counter helper below a no-op
        // that never reads the clock, so untraced runs stay bit- and
        // timing-path-identical to the pre-instrumentation code.
        let tracer = if self.trace {
            musa_trace::Tracer::new()
        } else {
            musa_trace::Tracer::off()
        };
        let _install = tracer.install();
        let resolved = {
            let _trace = musa_trace::span("validate");
            self.resolve()?
        };
        let started = Instant::now();
        let data = {
            let _trace = musa_trace::span_detail("campaign", || resolved.task.slug().to_string());
            resolved.execute()?
        };
        Ok(Report {
            meta: RunMeta {
                benches: resolved.benches.iter().map(|b| b.name().to_string()).collect(),
                seed: resolved.config.seed,
                jobs: resolved.config.jobs,
                engine: resolved.config.engine,
                fault_reduce: resolved.config.fault_reduce,
                screen: resolved.config.screen,
                opt: resolved.config.opt,
                preset: resolved.preset,
                wall: started.elapsed(),
            },
            task: resolved.task,
            data,
            trace: tracer.finish(),
        })
    }
}

/// A validated campaign, fully resolved: what [`Campaign::run`] will
/// actually execute. Obtained via [`Campaign::plan`].
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Benchmarks, resolved from their names, in run order.
    pub benches: Vec<Benchmark>,
    /// The effective configuration (preset + builder overrides applied).
    pub config: ExperimentConfig,
    /// Which preset the configuration came from.
    pub preset: Preset,
    /// The task to run, with its parameters.
    pub task: Task,
}

impl CampaignPlan {
    fn execute(&self) -> Result<ReportData, CampaignError> {
        let config = &self.config;
        let per_bench = |bench: Benchmark, e: TableError| CampaignError::Run {
            bench: bench.name().to_string(),
            source: e,
        };
        match &self.task {
            Task::Sampling { fraction } => {
                let mut rows = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("sampling {}", bench.name()));
                    let circuit = bench.load().map_err(|e| per_bench(bench, e.into()))?;
                    let outcome = run_sampling_experiment(
                        &circuit,
                        SamplingStrategy::random(*fraction),
                        config,
                    )
                    .map_err(|e| per_bench(bench, e.into()))?;
                    rows.push(BenchOutcome { bench: circuit.name.clone(), outcome });
                }
                Ok(ReportData::Sampling(rows))
            }
            Task::OperatorProfile { operators } => {
                let mut profiles = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("profiling {}", bench.name()));
                    let circuit = bench.load().map_err(|e| per_bench(bench, e.into()))?;
                    let profile = OperatorProfile::measure(&circuit, operators, config)
                        .map_err(|e| per_bench(bench, e.into()))?;
                    profiles.push(profile);
                }
                Ok(ReportData::OperatorProfile(profiles))
            }
            Task::MutationGuided => {
                let mut rows = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("generating for {}", bench.name()));
                    let circuit = bench.load().map_err(|e| per_bench(bench, e.into()))?;
                    let population = generate_mutants(
                        &circuit.checked,
                        &circuit.name,
                        &GenerateOptions::default(),
                    );
                    // `config.mg` is honored as-is, like every other
                    // task — reproducible against a direct
                    // `mutation_guided_tests` call with the same config.
                    let generated = mutation_guided_tests(
                        &circuit.checked,
                        &circuit.name,
                        &population,
                        &config.mg,
                    )
                    .map_err(|e| per_bench(bench, e.into()))?;
                    rows.push(MgOutcome {
                        bench: circuit.name.clone(),
                        population: population.len(),
                        sessions: generated.sessions.len(),
                        total_len: generated.total_len(),
                        killed: generated.killed_count(),
                        rounds: generated.rounds,
                    });
                }
                Ok(ReportData::MutationGuided(rows))
            }
            Task::Table1 { operators } => {
                Ok(ReportData::Table1(Table1::measure(&self.benches, operators, config)?))
            }
            Task::Table2 { fraction } => {
                Ok(ReportData::Table2(Table2::measure(&self.benches, *fraction, config)?))
            }
            Task::SweepFraction { fractions } => {
                let mut rows = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("sweeping {}", bench.name()));
                    let points = sweep_fractions(bench, fractions, config)
                        .map_err(|e| per_bench(bench, e))?;
                    rows.push(BenchSweep { bench: bench.name().to_string(), points });
                }
                Ok(ReportData::SweepFraction(rows))
            }
            Task::CoverageCurves { points } => {
                let mut pairs = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("tracing curves for {}", bench.name()));
                    let pair = coverage_curves(bench, *points, config)
                        .map_err(|e| per_bench(bench, e))?;
                    pairs.push(pair);
                }
                Ok(ReportData::CoverageCurves(pairs))
            }
            Task::AtpgTopup { backtrack_limit } => {
                // Load and check every circuit before the first (much
                // more expensive) measurement, so a sequential bench
                // late in the list cannot discard completed work.
                let mut circuits = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let circuit = bench.load().map_err(|e| per_bench(bench, e.into()))?;
                    if !circuit.is_combinational() {
                        return Err(CampaignError::NotCombinational(
                            bench.name().to_string(),
                        ));
                    }
                    circuits.push((bench, circuit));
                }
                let mut rows = Vec::with_capacity(circuits.len());
                for (bench, circuit) in &circuits {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("topping up {}", bench.name()));
                    let modes = atpg_topup_on(circuit, *backtrack_limit, config)
                        .map_err(|e| per_bench(*bench, e))?;
                    rows.push(BenchTopUp { bench: bench.name().to_string(), modes });
                }
                Ok(ReportData::AtpgTopup(rows))
            }
            Task::EquivalenceAblation { budgets } => {
                let mut rows = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("ablating {}", bench.name()));
                    let points = equivalence_ablation(bench, budgets, config)
                        .map_err(|e| per_bench(bench, e))?;
                    rows.push(BenchAblation { bench: bench.name().to_string(), points });
                }
                Ok(ReportData::EquivalenceAblation(rows))
            }
            Task::Bench { quick } => {
                let report = run_bench(
                    &self.benches,
                    &BenchOptions { quick: *quick, seed: config.seed },
                )?;
                Ok(ReportData::Bench(report))
            }
            Task::Lint => {
                let mut rows = Vec::with_capacity(self.benches.len());
                for &bench in &self.benches {
                    let _trace = musa_trace::span_detail("bench", || bench.name().to_string());
                    musa_trace::progress(|| format!("linting {}", bench.name()));
                    // Load first so a hypothetical parse/check failure
                    // surfaces as the usual per-bench error, not a
                    // panic inside the lint helper.
                    bench.load().map_err(|e| per_bench(bench, e.into()))?;
                    rows.push(lint_bench(bench));
                }
                Ok(ReportData::Lint(rows))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// Run metadata attached to every report.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Benchmark names, in run order.
    pub benches: Vec<String>,
    /// Master seed the run used.
    pub seed: u64,
    /// Requested worker-thread count (`0` = one per available CPU).
    pub jobs: usize,
    /// Mutant-execution engine.
    pub engine: Engine,
    /// Whether dominance fault-list reduction was on.
    pub fault_reduce: bool,
    /// Whether static equivalent-mutant pre-screening was on.
    pub screen: bool,
    /// Lane-tape optimizer level.
    pub opt: OptLevel,
    /// Configuration preset.
    pub preset: Preset,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// One benchmark's sampling outcome.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Benchmark name.
    pub bench: String,
    /// The sampling-experiment outcome.
    pub outcome: SamplingOutcome,
}

/// One benchmark's mutation-guided generation summary.
#[derive(Debug, Clone)]
pub struct MgOutcome {
    /// Benchmark name.
    pub bench: String,
    /// Mutant-population size.
    pub population: usize,
    /// Sessions emitted.
    pub sessions: usize,
    /// Total validation-data length (vectors).
    pub total_len: usize,
    /// Mutants the data kills.
    pub killed: usize,
    /// Generation rounds executed.
    pub rounds: usize,
}

/// One benchmark's E1 sweep.
#[derive(Debug, Clone)]
pub struct BenchSweep {
    /// Benchmark name.
    pub bench: String,
    /// One point per swept fraction.
    pub points: Vec<SweepPoint>,
}

/// One benchmark's E3 outcomes.
#[derive(Debug, Clone)]
pub struct BenchTopUp {
    /// Benchmark name.
    pub bench: String,
    /// One outcome per initial-data mode.
    pub modes: Vec<TopUpOutcome>,
}

/// One benchmark's E4 ablation.
#[derive(Debug, Clone)]
pub struct BenchAblation {
    /// Benchmark name.
    pub bench: String,
    /// One point per budget.
    pub points: Vec<AblationPoint>,
}

/// Task-specific report payload, wrapping the existing result structs.
#[derive(Debug, Clone)]
pub enum ReportData {
    /// [`Task::Sampling`] rows.
    Sampling(Vec<BenchOutcome>),
    /// [`Task::OperatorProfile`] profiles.
    OperatorProfile(Vec<OperatorProfile>),
    /// [`Task::MutationGuided`] summaries.
    MutationGuided(Vec<MgOutcome>),
    /// [`Task::Table1`] result.
    Table1(Table1),
    /// [`Task::Table2`] result.
    Table2(Table2),
    /// [`Task::SweepFraction`] rows.
    SweepFraction(Vec<BenchSweep>),
    /// [`Task::CoverageCurves`] pairs.
    CoverageCurves(Vec<CurvePair>),
    /// [`Task::AtpgTopup`] rows.
    AtpgTopup(Vec<BenchTopUp>),
    /// [`Task::EquivalenceAblation`] rows.
    EquivalenceAblation(Vec<BenchAblation>),
    /// [`Task::Bench`] trajectory report.
    Bench(BenchReport),
    /// [`Task::Lint`] rows.
    Lint(Vec<LintRow>),
}

/// The typed outcome of one campaign run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Run metadata (benchmarks, seed, jobs, engine, preset, wall time).
    pub meta: RunMeta,
    /// The task that produced the data (with its parameters).
    pub task: Task,
    /// The task-specific payload.
    pub data: ReportData,
    /// Collected spans + counters when the campaign ran with
    /// [`Campaign::trace`] enabled. Out-of-band: never rendered into
    /// the text or `musa.campaign.v1` JSON outputs (see
    /// [`crate::trace_report`] for its sinks).
    pub trace: Option<musa_trace::TraceData>,
}

impl Report {
    /// Renders the report as pretty-printed JSON with a stable schema
    /// (`musa.campaign.v1`); pinned by the golden-file test in
    /// `tests/cli.rs`.
    ///
    /// The bench and lint tasks are the two exceptions: each emits its
    /// own document (`musa.bench.v1` / `musa.lint.v1`) instead of the
    /// campaign envelope, so the output is exactly what `BENCH_<n>.json`
    /// commits / the lint golden files pin.
    pub fn to_json(&self) -> String {
        if let ReportData::Bench(report) = &self.data {
            return report.to_json();
        }
        if let ReportData::Lint(rows) = &self.data {
            return lint_report_json(&self.meta.benches, rows);
        }
        Json::Obj(vec![
            ("schema", Json::str("musa.campaign.v1")),
            ("meta", self.meta_json()),
            ("params", self.params_json()),
            ("data", self.data_json()),
        ])
        .render()
    }

    fn meta_json(&self) -> Json {
        Json::Obj(vec![
            ("task", Json::str(self.task.slug())),
            (
                "benches",
                Json::Arr(self.meta.benches.iter().map(Json::str).collect()),
            ),
            ("seed", Json::UInt(self.meta.seed)),
            ("jobs", Json::count(self.meta.jobs)),
            ("engine", Json::str(self.meta.engine.name())),
            (
                "fault_reduce",
                Json::str(if self.meta.fault_reduce { "on" } else { "off" }),
            ),
            (
                "screen",
                Json::str(if self.meta.screen { "static" } else { "off" }),
            ),
            ("opt", Json::str(self.meta.opt.name())),
            ("preset", Json::str(self.meta.preset.to_string())),
            ("wall_ms", Json::count(self.meta.wall.as_millis() as usize)),
        ])
    }

    fn params_json(&self) -> Json {
        match &self.task {
            Task::Sampling { fraction } | Task::Table2 { fraction } => {
                Json::Obj(vec![("fraction", Json::Float(*fraction))])
            }
            Task::OperatorProfile { operators } | Task::Table1 { operators } => Json::Obj(vec![(
                "operators",
                Json::Arr(operators.iter().map(|o| Json::str(o.acronym())).collect()),
            )]),
            Task::MutationGuided => Json::Obj(vec![]),
            Task::SweepFraction { fractions } => Json::Obj(vec![(
                "fractions",
                Json::Arr(fractions.iter().map(|&f| Json::Float(f)).collect()),
            )]),
            Task::CoverageCurves { points } => {
                Json::Obj(vec![("points", Json::count(*points))])
            }
            Task::AtpgTopup { backtrack_limit } => Json::Obj(vec![(
                "backtrack_limit",
                Json::UInt(*backtrack_limit),
            )]),
            Task::EquivalenceAblation { budgets } => Json::Obj(vec![(
                "budgets",
                Json::Arr(budgets.iter().map(|&b| Json::count(b)).collect()),
            )]),
            Task::Bench { quick } => Json::Obj(vec![("quick", Json::Bool(*quick))]),
            Task::Lint => Json::Obj(vec![]),
        }
    }

    fn data_json(&self) -> Json {
        match &self.data {
            ReportData::Sampling(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("bench", Json::str(&r.bench)),
                            ("outcome", outcome_json(&r.outcome)),
                        ])
                    })
                    .collect(),
            ),
            ReportData::OperatorProfile(profiles) => Json::Arr(
                profiles
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("circuit", Json::str(&p.circuit)),
                            (
                                "rows",
                                Json::Arr(
                                    p.rows
                                        .iter()
                                        .map(|r| {
                                            Json::Obj(vec![
                                                ("operator", Json::str(r.operator.acronym())),
                                                ("mutants", Json::count(r.mutants)),
                                                ("data_len", Json::count(r.data_len)),
                                                (
                                                    "mutation_fault_coverage",
                                                    Json::Float(r.mutation_fault_coverage),
                                                ),
                                                ("metrics", metrics_json(&r.metrics)),
                                                (
                                                    "faults_simulated",
                                                    Json::count(r.fault_sim.faults_simulated),
                                                ),
                                                (
                                                    "faults_total",
                                                    Json::count(r.fault_sim.faults_total),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
            ReportData::MutationGuided(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("bench", Json::str(&r.bench)),
                            ("population", Json::count(r.population)),
                            ("sessions", Json::count(r.sessions)),
                            ("total_len", Json::count(r.total_len)),
                            ("killed", Json::count(r.killed)),
                            ("rounds", Json::count(r.rounds)),
                        ])
                    })
                    .collect(),
            ),
            ReportData::Table1(table) => Json::Obj(vec![(
                "rows",
                Json::Arr(
                    table
                        .rows
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("circuit", Json::str(&r.circuit)),
                                ("operator", Json::str(r.operator.acronym())),
                                ("delta_fc_pct", Json::Float(r.delta_fc_pct)),
                                ("delta_l_pct", Json::Float(r.delta_l_pct)),
                                ("nlfce", Json::Float(r.nlfce)),
                            ])
                        })
                        .collect(),
                ),
            )]),
            ReportData::Table2(table) => Json::Obj(vec![(
                "rows",
                Json::Arr(
                    table
                        .rows
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("circuit", Json::str(&r.circuit)),
                                ("sampled", Json::count(r.sampled)),
                                ("test_oriented", outcome_json(&r.test_oriented)),
                                ("random", outcome_json(&r.random)),
                            ])
                        })
                        .collect(),
                ),
            )]),
            ReportData::SweepFraction(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("bench", Json::str(&r.bench)),
                            (
                                "points",
                                Json::Arr(
                                    r.points
                                        .iter()
                                        .map(|p| {
                                            Json::Obj(vec![
                                                ("fraction", Json::Float(p.fraction)),
                                                (
                                                    "test_oriented",
                                                    outcome_json(&p.test_oriented),
                                                ),
                                                ("random", outcome_json(&p.random)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
            ReportData::CoverageCurves(pairs) => Json::Arr(
                pairs
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("circuit", Json::str(&p.circuit)),
                            ("mutation", curve_json(&p.mutation)),
                            ("random", curve_json(&p.random)),
                        ])
                    })
                    .collect(),
            ),
            ReportData::AtpgTopup(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("bench", Json::str(&r.bench)),
                            (
                                "modes",
                                Json::Arr(
                                    r.modes
                                        .iter()
                                        .map(|o| {
                                            Json::Obj(vec![
                                                ("mode", Json::str(o.mode.label())),
                                                (
                                                    "initial_vectors",
                                                    Json::count(o.initial_vectors),
                                                ),
                                                ("atpg_targets", Json::count(o.atpg_targets)),
                                                ("backtracks", Json::UInt(o.backtracks)),
                                                ("atpg_vectors", Json::count(o.atpg_vectors)),
                                                ("untestable", Json::count(o.untestable)),
                                                ("aborted", Json::count(o.aborted)),
                                                (
                                                    "final_coverage",
                                                    Json::Float(o.final_coverage),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
            ReportData::EquivalenceAblation(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("bench", Json::str(&r.bench)),
                            (
                                "points",
                                Json::Arr(
                                    r.points
                                        .iter()
                                        .map(|p| {
                                            Json::Obj(vec![
                                                ("budget", Json::count(p.budget)),
                                                ("equivalent", Json::count(p.equivalent)),
                                                ("score", score_json(&p.score)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
            ReportData::Bench(report) => report.json(),
            // Unreachable through `to_json` (the lint early-return owns
            // the document), kept total for hand-built reports.
            ReportData::Lint(rows) => Json::Obj(vec![(
                "findings",
                Json::count(crate::lint_task::total_findings(rows)),
            )]),
        }
    }

    /// Renders the report as the pre-redesign CLI text — byte-identical
    /// to what `musa sample` and the six bench binaries printed before
    /// the campaign API existed (pinned by the CLI diff tests).
    pub fn render_text(&self) -> String {
        let meta = &self.meta;
        let mut out = String::new();
        match (&self.task, &self.data) {
            (Task::Sampling { fraction }, ReportData::Sampling(rows)) => {
                for row in rows {
                    render_sampling(&mut out, row, *fraction, meta);
                }
            }
            (Task::Table1 { .. }, ReportData::Table1(table)) => {
                render_table1(&mut out, table, meta);
            }
            (Task::Table2 { fraction }, ReportData::Table2(table)) => {
                render_table2(&mut out, table, *fraction, meta);
            }
            (Task::SweepFraction { .. }, ReportData::SweepFraction(rows)) => {
                render_sweep(&mut out, rows, meta);
            }
            (Task::CoverageCurves { .. }, ReportData::CoverageCurves(pairs)) => {
                render_curves(&mut out, pairs, meta);
            }
            (Task::AtpgTopup { .. }, ReportData::AtpgTopup(rows)) => {
                render_topup(&mut out, rows, meta);
            }
            (Task::EquivalenceAblation { .. }, ReportData::EquivalenceAblation(rows)) => {
                render_ablation(&mut out, rows, meta);
            }
            (Task::OperatorProfile { .. }, ReportData::OperatorProfile(profiles)) => {
                render_profiles(&mut out, profiles, meta);
            }
            (Task::MutationGuided, ReportData::MutationGuided(rows)) => {
                render_mg(&mut out, rows, meta);
            }
            (Task::Bench { .. }, ReportData::Bench(report)) => {
                render_bench(&mut out, report);
            }
            (Task::Lint, ReportData::Lint(rows)) => {
                out.push_str(&render_lint_text(rows));
            }
            // `Campaign::run` always pairs task and data, but the
            // fields are public — render a hand-built mismatch
            // honestly instead of panicking.
            _ => {
                let _ = writeln!(
                    out,
                    "report task/data mismatch: task `{}` does not describe the payload",
                    self.task.slug()
                );
            }
        }
        out
    }
}

/// The `musa.campaign.v1` JSON encoding of one [`SamplingOutcome`] —
/// the exact value [`Report::to_json`] embeds for sampling-family
/// tasks. Public so out-of-process shards (`musa campaign --workers`)
/// and the result-store decoder round-trip outcomes byte-identically.
pub fn outcome_json(o: &SamplingOutcome) -> Json {
    Json::Obj(vec![
        ("strategy", Json::str(o.strategy)),
        ("population", Json::count(o.population)),
        ("sampled", Json::count(o.sampled)),
        ("mutation_score_pct", Json::Float(o.mutation_score_pct)),
        ("score", score_json(&o.score)),
        ("metrics", metrics_json(&o.metrics)),
        ("nlfce", Json::Float(o.nlfce)),
        ("data_len", Json::count(o.data_len)),
        ("faults_simulated", Json::count(o.fault_sim.faults_simulated)),
        ("faults_total", Json::count(o.fault_sim.faults_total)),
        ("screened", Json::count(o.screened)),
    ])
}

/// The `musa.campaign.v1` JSON encoding of a [`MutationScore`].
pub fn score_json(s: &MutationScore) -> Json {
    Json::Obj(vec![
        ("generated", Json::count(s.generated)),
        ("killed", Json::count(s.killed)),
        ("equivalent", Json::count(s.equivalent)),
    ])
}

/// The `musa.campaign.v1` JSON encoding of an [`Nlfce`] metrics block.
pub fn metrics_json(m: &Nlfce) -> Json {
    Json::Obj(vec![
        ("delta_fc_pct", Json::Float(m.delta_fc_pct)),
        ("delta_l_pct", Json::Float(m.delta_l_pct)),
        ("nlfce", Json::Float(m.nlfce)),
        ("mutation_len", Json::count(m.mutation_len)),
        ("random_len_at_equal_fc", Json::opt_count(m.random_len_at_equal_fc)),
    ])
}

/// The `musa.campaign.v1` JSON encoding of a coverage curve (an array
/// of `[length, coverage]` pairs).
pub fn curve_json(samples: &[(usize, f64)]) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|&(len, cov)| Json::Arr(vec![Json::count(len), Json::Float(cov)]))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Text renderers — byte-identical to the pre-redesign binaries
// ---------------------------------------------------------------------

use std::fmt::Write as _;

fn render_sampling(out: &mut String, row: &BenchOutcome, fraction: f64, meta: &RunMeta) {
    let o = &row.outcome;
    let _ = writeln!(
        out,
        "{}: {} strategy, {:.0}% sample, {} jobs, {} engine, {} preset, seed {:#x}",
        row.bench,
        o.strategy,
        fraction * 100.0,
        resolve_jobs(meta.jobs),
        meta.engine,
        meta.preset,
        meta.seed,
    );
    let _ = writeln!(
        out,
        "  population {}  sampled {}  MS {:.2}%  (K={} E={} of M={})",
        o.population,
        o.sampled,
        o.mutation_score_pct,
        o.score.killed,
        o.score.equivalent,
        o.score.generated
    );
    let _ = writeln!(
        out,
        "  NLFCE {:+.1}  (dFC {:+.2}%  dL {:+.2}%)  data length {}",
        o.nlfce, o.metrics.delta_fc_pct, o.metrics.delta_l_pct, o.data_len
    );
}

fn render_config_header(out: &mut String, title: &str, meta: &RunMeta) {
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "(config: {} preset, seed {:#x})\n", meta.preset, meta.seed);
}

fn render_table1(out: &mut String, table: &Table1, meta: &RunMeta) {
    render_config_header(out, "Table 1: Operator Fault Coverage Efficiency", meta);
    let _ = writeln!(out, "{}", table.render());

    let _ = writeln!(out, "Paper-reported values for comparison:");
    let _ = writeln!(out, "Circuit  Operator   dFC%    dL%  NLFCE");
    let _ = writeln!(out, "---------------------------------------");
    for &(circuit, op, dfc, dl, nlfce) in crate::paper::TABLE1 {
        let _ = writeln!(out, "{circuit:<8} {op:<8} {dfc:>6.2} {dl:>6.2} {nlfce:>+6.0}");
    }

    // Shape summary: is LOR the least efficient operator per circuit?
    let _ = writeln!(out, "\nShape check (measured):");
    for profile_circuit in table
        .rows
        .iter()
        .map(|r| r.circuit.clone())
        .collect::<BTreeSet<_>>()
    {
        let mut rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r.circuit == profile_circuit)
            .collect();
        rows.sort_by(|a, b| a.nlfce.partial_cmp(&b.nlfce).unwrap());
        let order: Vec<&str> = rows.iter().map(|r| r.operator.acronym()).collect();
        let _ = writeln!(
            out,
            "  {profile_circuit}: NLFCE order (worst -> best): {}",
            order.join(" < ")
        );
    }
}

fn render_table2(out: &mut String, table: &Table2, fraction: f64, meta: &RunMeta) {
    render_config_header(
        out,
        &format!(
            "Table 2: Test-Oriented Sampling vs Random Mutant Sampling ({:.0}%)",
            fraction * 100.0
        ),
        meta,
    );
    let _ = writeln!(out, "{}", table.render());

    let _ = writeln!(out, "Paper-reported values for comparison:");
    let _ = writeln!(out, "Circuit  TO MS%  TO NLFCE  RS MS%  RS NLFCE");
    let _ = writeln!(out, "--------------------------------------------");
    for &(circuit, to_ms, to_nlfce, rs_ms, rs_nlfce) in crate::paper::TABLE2 {
        let _ = writeln!(
            out,
            "{circuit:<8} {to_ms:>6.2} {to_nlfce:>+9.0} {rs_ms:>6.2} {rs_nlfce:>+9.0}"
        );
    }

    let _ = writeln!(out, "\nShape check (measured): test-oriented wins on");
    for row in &table.rows {
        let ms_win = row.test_oriented.mutation_score_pct >= row.random.mutation_score_pct;
        let nlfce_win = row.test_oriented.nlfce >= row.random.nlfce;
        let _ = writeln!(
            out,
            "  {}: MS {}  NLFCE {}",
            row.circuit,
            if ms_win { "yes" } else { "NO" },
            if nlfce_win { "yes" } else { "NO" },
        );
    }
}

fn render_sweep(out: &mut String, rows: &[BenchSweep], meta: &RunMeta) {
    let _ = writeln!(out, "E1: Sampling-fraction sweep (seed {:#x})\n", meta.seed);
    for row in rows {
        let mut table = Table::new(vec![
            ("Fraction", Align::Right),
            ("Mutants", Align::Right),
            ("TO MS%", Align::Right),
            ("TO NLFCE", Align::Right),
            ("RS MS%", Align::Right),
            ("RS NLFCE", Align::Right),
        ]);
        for p in &row.points {
            table.row(vec![
                format!("{:.0}%", p.fraction * 100.0),
                p.test_oriented.sampled.to_string(),
                f2(p.test_oriented.mutation_score_pct),
                signed0(p.test_oriented.nlfce),
                f2(p.random.mutation_score_pct),
                signed0(p.random.nlfce),
            ]);
        }
        let _ = writeln!(out, "{}:\n{}", row.bench, table.render());
    }
}

fn ascii_plot(series: &[(usize, f64)], width: usize) -> String {
    let mut out = String::new();
    for &(len, cov) in series {
        let bar = (cov * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {:>6} | {}{} {:.1}%",
            len,
            "#".repeat(bar),
            " ".repeat(width.saturating_sub(bar)),
            100.0 * cov
        );
    }
    out
}

fn render_curves(out: &mut String, pairs: &[CurvePair], meta: &RunMeta) {
    let _ = writeln!(out, "E2: Coverage-vs-length curves (seed {:#x})\n", meta.seed);
    for pair in pairs {
        let _ = writeln!(out, "{} — mutation data (MFC):", pair.circuit);
        out.push_str(&ascii_plot(&pair.mutation, 40));
        let _ = writeln!(out, "{} — pseudo-random baseline (RFC):", pair.circuit);
        out.push_str(&ascii_plot(&pair.random, 40));
        out.push('\n');
    }
}

fn render_topup(out: &mut String, rows: &[BenchTopUp], meta: &RunMeta) {
    let _ = writeln!(
        out,
        "E3: ATPG top-up after validation-data reuse (seed {:#x})\n",
        meta.seed
    );
    for row in rows {
        let mut table = Table::new(vec![
            ("Initial data", Align::Left),
            ("Init vecs", Align::Right),
            ("ATPG targets", Align::Right),
            ("Backtracks", Align::Right),
            ("ATPG vecs", Align::Right),
            ("Untestable", Align::Right),
            ("Aborted", Align::Right),
            ("Final FC%", Align::Right),
        ]);
        for o in &row.modes {
            table.row(vec![
                o.mode.label().to_string(),
                o.initial_vectors.to_string(),
                o.atpg_targets.to_string(),
                o.backtracks.to_string(),
                o.atpg_vectors.to_string(),
                o.untestable.to_string(),
                o.aborted.to_string(),
                pct(o.final_coverage),
            ]);
        }
        let _ = writeln!(out, "{}:\n{}", row.bench, table.render());
    }
}

fn render_ablation(out: &mut String, rows: &[BenchAblation], meta: &RunMeta) {
    let _ = writeln!(out, "E4: Equivalence-budget ablation (seed {:#x})\n", meta.seed);
    for row in rows {
        let mut table = Table::new(vec![
            ("Budget", Align::Right),
            ("Equivalent", Align::Right),
            ("MS%", Align::Right),
        ]);
        for p in &row.points {
            table.row(vec![
                p.budget.to_string(),
                p.equivalent.to_string(),
                f2(p.score.percent()),
            ]);
        }
        let _ = writeln!(out, "{}:\n{}", row.bench, table.render());
    }
}

fn render_profiles(out: &mut String, profiles: &[OperatorProfile], meta: &RunMeta) {
    let _ = writeln!(out, "Operator profiles (seed {:#x})\n", meta.seed);
    for profile in profiles {
        let mut table = Table::new(vec![
            ("Operator", Align::Left),
            ("Mutants", Align::Right),
            ("Length", Align::Right),
            ("FC%", Align::Right),
            ("NLFCE", Align::Right),
        ]);
        for row in &profile.rows {
            table.row(vec![
                row.operator.acronym().to_string(),
                row.mutants.to_string(),
                row.data_len.to_string(),
                pct(row.mutation_fault_coverage),
                signed0(row.metrics.nlfce),
            ]);
        }
        let _ = writeln!(out, "{}:\n{}", profile.circuit, table.render());
    }
}

fn render_bench(out: &mut String, report: &BenchReport) {
    let m = &report.meta;
    let _ = writeln!(
        out,
        "Benchmark trajectory ({} mode, seed {:#x}, {} cpus, {} build, {} warmup + {} samples per cell)\n",
        if m.quick { "quick" } else { "full" },
        m.seed,
        m.cpus,
        if m.debug { "debug" } else { "release" },
        m.warmup,
        m.samples,
    );
    let mut table = Table::new(vec![
        ("Cell", Align::Left),
        ("Median ms", Align::Right),
        ("MAD ms", Align::Right),
        ("Min ms", Align::Right),
        ("Invariants", Align::Left),
    ]);
    for cell in &report.cells {
        table.row(vec![
            cell.id(),
            f2(cell.wall.median / 1e6),
            f2(cell.wall.mad / 1e6),
            f2(cell.wall.min / 1e6),
            cell.invariants.summary(),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
}

fn render_mg(out: &mut String, rows: &[MgOutcome], meta: &RunMeta) {
    let _ = writeln!(out, "Mutation-guided generation (seed {:#x})\n", meta.seed);
    let mut table = Table::new(vec![
        ("Circuit", Align::Left),
        ("Population", Align::Right),
        ("Sessions", Align::Right),
        ("Vectors", Align::Right),
        ("Killed", Align::Right),
        ("Rounds", Align::Right),
    ]);
    for row in rows {
        table.row(vec![
            row.bench.clone(),
            row.population.to_string(),
            row.sessions.to_string(),
            row.total_len.to_string(),
            row.killed.to_string(),
            row.rounds.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampling_report() -> Report {
        Campaign::named("c17")
            .fast()
            .seed(7)
            .jobs(2)
            .task(Task::Sampling { fraction: 0.5 })
            .run()
            .unwrap()
    }

    #[test]
    fn unknown_bench_is_a_validation_error() {
        let err = Campaign::named("b99")
            .fast()
            .task(Task::Sampling { fraction: 0.5 })
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnknownBench(ref n) if n == "b99"), "{err}");
        assert_eq!(err.to_string(), "unknown benchmark `b99`");
    }

    #[test]
    fn zero_repetitions_is_a_validation_error() {
        let mut config = ExperimentConfig::fast(1);
        config.repetitions = 0;
        let err = Campaign::new(Benchmark::C17)
            .config(config)
            .task(Task::Sampling { fraction: 0.5 })
            .validate()
            .unwrap_err();
        assert!(matches!(err, CampaignError::ZeroRepetitions), "{err}");
    }

    #[test]
    fn conflicting_presets_are_a_validation_error() {
        let err = Campaign::new(Benchmark::C17)
            .paper()
            .fast()
            .task(Task::Sampling { fraction: 0.5 })
            .validate()
            .unwrap_err();
        assert!(matches!(err, CampaignError::PresetConflict), "{err}");
    }

    #[test]
    fn missing_task_and_empty_benches_are_validation_errors() {
        let err = Campaign::new(Benchmark::C17).validate().unwrap_err();
        assert!(matches!(err, CampaignError::MissingTask), "{err}");
        let err = Campaign::new(Benchmark::C17)
            .benches(&[])
            .task(Task::MutationGuided)
            .validate()
            .unwrap_err();
        assert!(matches!(err, CampaignError::NoBenchmarks), "{err}");
    }

    #[test]
    fn out_of_range_fractions_are_validation_errors() {
        for fraction in [0.0, -0.25, 1.5] {
            let err = Campaign::new(Benchmark::C17)
                .fast()
                .task(Task::Sampling { fraction })
                .validate()
                .unwrap_err();
            assert!(matches!(err, CampaignError::BadFraction(_)), "{fraction}: {err}");
            assert_eq!(err.to_string(), "fraction must be in (0, 1]");
        }
        let err = Campaign::new(Benchmark::C17)
            .fast()
            .task(Task::SweepFraction { fractions: vec![0.5, 0.0] })
            .validate()
            .unwrap_err();
        assert!(matches!(err, CampaignError::BadFraction(_)), "{err}");
    }

    #[test]
    fn explicit_config_is_taken_as_is_and_reports_the_custom_preset() {
        // A supplied config keeps its own sub-seeds (only an explicit
        // .seed() restamps them) and the report says "custom", never a
        // preset that was not applied.
        let mut config = ExperimentConfig::fast(7);
        config.equivalence.seed = 99;
        config.mg.seed = 42;
        let report = Campaign::new(Benchmark::C17)
            .config(config)
            .task(Task::MutationGuided)
            .run()
            .unwrap();
        assert_eq!(report.meta.preset, Preset::Custom);
        assert_eq!(report.meta.seed, 7);
        assert!(report.to_json().contains("\"preset\": \"custom\""));
        // The custom mg sub-seed was actually used: the campaign's
        // output reproduces a direct generator call with config.mg.
        let circuit = Benchmark::C17.load().unwrap();
        let population = generate_mutants(
            &circuit.checked,
            &circuit.name,
            &GenerateOptions::default(),
        );
        let direct_mg =
            mutation_guided_tests(&circuit.checked, &circuit.name, &population, &config.mg)
                .unwrap();
        let ReportData::MutationGuided(rows) = &report.data else { panic!() };
        assert_eq!(rows[0].total_len, direct_mg.total_len());
        assert_eq!(rows[0].killed, direct_mg.killed_count());
        assert_eq!(rows[0].rounds, direct_mg.rounds);
        // With .seed(), all three seeds restamp.
        let direct = Campaign::new(Benchmark::C17)
            .fast()
            .seed(7)
            .task(Task::MutationGuided)
            .run()
            .unwrap();
        let restamped = Campaign::new(Benchmark::C17)
            .config(config)
            .seed(7)
            .task(Task::MutationGuided)
            .run()
            .unwrap();
        let ReportData::MutationGuided(a) = &direct.data else { panic!() };
        let ReportData::MutationGuided(b) = &restamped.data else { panic!() };
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn atpg_topup_rejects_sequential_benchmarks() {
        let err = Campaign::new(Benchmark::B01)
            .fast()
            .task(Task::AtpgTopup { backtrack_limit: 100 })
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::NotCombinational(ref n) if n == "b01"), "{err}");
    }

    #[test]
    fn validation_happens_before_any_work() {
        // validate() alone never loads a circuit — it must be instant
        // even for the paper preset.
        Campaign::new(Benchmark::C432)
            .paper()
            .task(Task::Table2 { fraction: 0.10 })
            .validate()
            .unwrap();
    }

    #[test]
    fn sampling_campaign_reports_and_renders() {
        let report = sampling_report();
        assert_eq!(report.meta.benches, ["c17"]);
        assert_eq!(report.meta.seed, 7);
        assert_eq!(report.meta.jobs, 2);
        assert_eq!(report.meta.engine, Engine::Lanes, "lanes is the default engine");
        assert_eq!(report.meta.preset, Preset::Fast);
        let text = report.render_text();
        assert!(
            text.starts_with("c17: random strategy, 50% sample, 2 jobs, lanes engine, fast preset, seed 0x7\n"),
            "{text}"
        );
        assert!(text.contains("  population "), "{text}");
        assert!(text.ends_with('\n'), "{text:?}");
    }

    #[test]
    fn campaign_outcome_matches_the_free_function() {
        // The front door must not change a single bit of the result.
        let report = sampling_report();
        let ReportData::Sampling(rows) = &report.data else { panic!() };
        let circuit = Benchmark::C17.load().unwrap();
        let direct = crate::experiment::run_sampling_experiment(
            &circuit,
            SamplingStrategy::random(0.5),
            &ExperimentConfig::fast(7).with_jobs(2),
        )
        .unwrap();
        assert_eq!(format!("{:?}", rows[0].outcome), format!("{direct:?}"));
    }

    #[test]
    fn json_has_the_pinned_envelope() {
        let report = sampling_report();
        let json = report.to_json();
        for key in [
            "\"schema\": \"musa.campaign.v1\"",
            "\"task\": \"sampling\"",
            "\"seed\": 7",
            "\"engine\": \"lanes\"",
            "\"preset\": \"fast\"",
            "\"wall_ms\":",
            "\"fraction\": 0.5",
            "\"mutation_score_pct\":",
            "\"random_len_at_equal_fc\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn engine_and_jobs_knobs_reach_the_config_and_meta() {
        let report = Campaign::new(Benchmark::C17)
            .fast()
            .seed(7)
            .jobs(3)
            .engine(Engine::Lanes)
            .task(Task::MutationGuided)
            .run()
            .unwrap();
        assert_eq!(report.meta.jobs, 3);
        assert_eq!(report.meta.engine, Engine::Lanes);
        assert_eq!(report.task.slug(), "mutation-guided");
        let ReportData::MutationGuided(rows) = &report.data else { panic!() };
        assert_eq!(rows[0].bench, "c17");
        assert!(rows[0].killed > 0);
        assert!(rows[0].total_len > 0);
    }

    #[test]
    fn bench_task_emits_the_bench_document_not_the_campaign_envelope() {
        let report = Campaign::new(Benchmark::C17)
            .fast()
            .seed(7)
            .task(Task::Bench { quick: true })
            .run()
            .unwrap();
        assert_eq!(report.task.slug(), "bench");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"musa.bench.v1\""), "{json}");
        assert!(!json.contains("musa.campaign.v1"), "{json}");
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.meta.seed, 7);
        assert!(parsed.meta.quick);
        let text = report.render_text();
        assert!(text.starts_with("Benchmark trajectory (quick mode, seed 0x7"), "{text}");
        assert!(text.contains("mutant_exec/c17/lanes-opt/jobs=auto"), "{text}");
        assert!(text.contains("fault_sim/c17/reduce=on"), "{text}");
    }

    #[test]
    fn operator_profile_task_runs() {
        let report = Campaign::new(Benchmark::C17)
            .fast()
            .seed(3)
            .task(Task::OperatorProfile {
                operators: vec![MutationOperator::Lor, MutationOperator::Vr],
            })
            .run()
            .unwrap();
        let ReportData::OperatorProfile(profiles) = &report.data else { panic!() };
        assert_eq!(profiles[0].circuit, "c17");
        assert!(!profiles[0].rows.is_empty());
        assert!(report.render_text().contains("LOR"));
        assert!(report.to_json().contains("\"operator\": \"LOR\""));
    }
}
