//! The lint task behind `musa lint`: run the `musa_analysis` catalog
//! over MiniHDL sources and emit findings as compiler-style text
//! (`file:line:col: rule: message`) or schema'd `musa.lint.v1` JSON.
//!
//! The analysis itself lives in [`musa_analysis::lint_design`]; this
//! module resolves spans against the source text (the analysis crate
//! deals only in byte offsets) and owns the serialized row shapes the
//! CLI contract tests pin.

use crate::json::Json;
use musa_analysis::lint_design;
use musa_circuits::Benchmark;
use musa_hdl::{parse, CheckedDesign, HdlError};

/// The schema tag every lint report carries.
pub const LINT_SCHEMA: &str = "musa.lint.v1";

/// One lint finding with its span resolved to a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFindingRow {
    /// Rule slug (e.g. `dead-statement`); see the catalog in
    /// [`musa_analysis::LINT_RULES`].
    pub rule: String,
    /// Entity the finding is in.
    pub entity: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable description of the defect.
    pub message: String,
}

/// One linted source file (a bundled benchmark or an on-disk `.mhdl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRow {
    /// Benchmark name (or the file stem for ad-hoc files).
    pub bench: String,
    /// Display path used in the `file:line:col` prefix.
    pub file: String,
    /// Findings in source order (the analysis sorts them).
    pub findings: Vec<LintFindingRow>,
}

/// Lints one source text: parse, check, run the catalog, and resolve
/// every finding's span to a line/column against `source`.
///
/// # Errors
///
/// Returns the [`HdlError`] when the source does not parse or fails
/// semantic checking — lint rules presume a well-formed design, and the
/// checker's diagnostics beat misfiring lint rules.
pub fn lint_source(bench: &str, file: &str, source: &str) -> Result<LintRow, HdlError> {
    let checked = CheckedDesign::new(parse(source)?)?;
    let findings = lint_design(checked.design())
        .into_iter()
        .map(|f| {
            let (line, col) = f.span.line_col(source);
            LintFindingRow {
                rule: f.rule.slug().to_string(),
                entity: f.entity,
                line,
                col,
                message: f.message,
            }
        })
        .collect();
    Ok(LintRow {
        bench: bench.to_string(),
        file: file.to_string(),
        findings,
    })
}

/// Lints one bundled benchmark.
pub fn lint_bench(bench: Benchmark) -> LintRow {
    lint_source(
        bench.name(),
        &format!("{}.mhdl", bench.name()),
        bench.source(),
    )
    .expect("bundled benchmarks parse and check (pinned by the circuits tests)")
}

/// Total finding count across rows — the CLI's exit-code discriminant.
pub fn total_findings(rows: &[LintRow]) -> usize {
    rows.iter().map(|r| r.findings.len()).sum()
}

/// Renders rows as compiler-style text: one
/// `file:line:col: rule: message` line per finding, and a
/// `file: clean` line for files without findings.
pub fn render_lint_text(rows: &[LintRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for row in rows {
        if row.findings.is_empty() {
            let _ = writeln!(out, "{}: clean", row.file);
        }
        for f in &row.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}",
                row.file, f.line, f.col, f.rule, f.message
            );
        }
    }
    out
}

/// Renders the `musa.lint.v1` document. Like the bench task, lint
/// emits its own schema instead of the campaign envelope, so the
/// document stands alone for downstream tooling. `benches` lists the
/// linted targets (benchmark names, or the file stem in file mode).
pub fn lint_report_json(benches: &[String], rows: &[LintRow]) -> String {
    Json::Obj(vec![
        ("schema", Json::str(LINT_SCHEMA)),
        (
            "meta",
            Json::Obj(vec![
                ("benches", Json::Arr(benches.iter().map(Json::str).collect())),
                ("findings", Json::count(total_findings(rows))),
            ]),
        ),
        (
            "data",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::Obj(vec![
                            ("bench", Json::str(&row.bench)),
                            ("file", Json::str(&row.file)),
                            (
                                "findings",
                                Json::Arr(
                                    row.findings
                                        .iter()
                                        .map(|f| {
                                            Json::Obj(vec![
                                                ("rule", Json::str(&f.rule)),
                                                ("entity", Json::str(&f.entity)),
                                                ("line", Json::count(f.line as usize)),
                                                ("col", Json::count(f.col as usize)),
                                                ("message", Json::str(&f.message)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_resolves_lines_and_columns() {
        let src = "entity e is port(a : in bit; y : out bit);\n\
                   signal ghost : bit := 0;\n\
                   comb begin y <= a; end;\n\
                   end;";
        let row = lint_source("e", "e.mhdl", src).unwrap();
        assert_eq!(row.bench, "e");
        assert_eq!(row.file, "e.mhdl");
        assert_eq!(row.findings.len(), 1, "{:?}", row.findings);
        let f = &row.findings[0];
        assert_eq!(f.rule, "unread-signal");
        assert_eq!(f.line, 2, "the ghost declaration is on line 2");
        assert!(f.message.contains("ghost"), "{}", f.message);
        assert_eq!(total_findings(&[row]), 1);
    }

    #[test]
    fn text_rendering_is_compiler_style() {
        let src = "entity e is port(a : in bit; y : out bit);\n\
                   signal ghost : bit := 0;\n\
                   comb begin y <= a; end;\n\
                   end;";
        let row = lint_source("e", "fix/e.mhdl", src).unwrap();
        let text = render_lint_text(&[row]);
        assert!(
            text.starts_with("fix/e.mhdl:2:"),
            "findings lead with file:line:col — {text}"
        );
        assert!(text.contains(": unread-signal: "), "{text}");
    }

    #[test]
    fn clean_file_renders_a_clean_line() {
        let src = "entity e is port(a : in bit; y : out bit);\n\
                   comb begin y <= a; end;\n\
                   end;";
        let row = lint_source("e", "e.mhdl", src).unwrap();
        assert!(row.findings.is_empty(), "{:?}", row.findings);
        assert_eq!(render_lint_text(&[row]), "e.mhdl: clean\n");
    }

    #[test]
    fn parse_and_check_errors_propagate() {
        assert!(lint_source("x", "x.mhdl", "entity nope").is_err());
        // Well-formed syntax, but `y` is undriven: the checker rejects
        // it before lint rules run.
        assert!(lint_source(
            "x",
            "x.mhdl",
            "entity x is port(a : in bit; y : out bit); end;"
        )
        .is_err());
    }
}
