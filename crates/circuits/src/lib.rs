//! # musa-circuits — the benchmark circuit suite
//!
//! Behavioral (MiniHDL) re-implementations of the circuits the DATE'05
//! paper evaluates on — ITC'99 `b01`/`b03` and ISCAS'85 `c432`/`c499` —
//! plus four companions (`b02`, `b04`, `b06`, `c17`) used throughout the
//! workspace's tests and examples.
//!
//! The original benchmark netlists are not redistributable in this
//! offline environment; each circuit is re-implemented from its published
//! functional description and synthesized to gates with [`musa_synth`]
//! (see the workspace `DESIGN.md` §3 for why this preserves the paper's
//! measurements). The crate's test-suite cross-simulates every behavioral
//! model against its synthesized netlist.
//!
//! # Example
//!
//! ```
//! use musa_circuits::Benchmark;
//!
//! let circuit = Benchmark::C432.load()?;
//! println!(
//!     "{}: {} PIs, {} POs, {} gates, {} flops",
//!     circuit.name,
//!     circuit.netlist.inputs().len(),
//!     circuit.netlist.outputs().len(),
//!     circuit.netlist.gate_count(),
//!     circuit.netlist.dff_count(),
//! );
//! assert_eq!(circuit.netlist.inputs().len(), 36);
//! # Ok::<(), musa_circuits::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use musa_hdl::{CheckedDesign, EntityInfo, HdlError};
use musa_netlist::Netlist;
use musa_synth::SynthError;
use std::fmt;

/// The bundled benchmark circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// ITC'99 b01 — serial flow comparator (sequential).
    B01,
    /// ITC'99 b02 — serial BCD recognizer (sequential).
    B02,
    /// ITC'99 b03 — resource arbiter (sequential).
    B03,
    /// ITC'99 b04 — min/max tracker (sequential).
    B04,
    /// ITC'99 b05 — memory-contents mapper (sequential).
    B05,
    /// ITC'99 b06 — interrupt handler (sequential).
    B06,
    /// ITC'99 b09 — serial-to-parallel converter (sequential).
    B09,
    /// ISCAS'85 c17 — six-NAND fragment (combinational).
    C17,
    /// ISCAS'85 c432 — 27-channel interrupt controller (combinational).
    C432,
    /// ISCAS'85 c499 — 32-bit single-error corrector (combinational).
    C499,
    /// ISCAS'85 c880 — 8-bit ALU (combinational).
    C880,
}

impl Benchmark {
    /// Every bundled benchmark, smallest first.
    pub fn all() -> [Benchmark; 11] {
        [
            Benchmark::C17,
            Benchmark::B01,
            Benchmark::B02,
            Benchmark::B03,
            Benchmark::B04,
            Benchmark::B05,
            Benchmark::B06,
            Benchmark::B09,
            Benchmark::C432,
            Benchmark::C499,
            Benchmark::C880,
        ]
    }

    /// The four circuits of the paper's evaluation (Tables 1 and 2).
    pub fn paper_set() -> [Benchmark; 4] {
        [Benchmark::B01, Benchmark::B03, Benchmark::C432, Benchmark::C499]
    }

    /// The circuit name as it appears in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::B01 => "b01",
            Benchmark::B02 => "b02",
            Benchmark::B03 => "b03",
            Benchmark::B04 => "b04",
            Benchmark::B05 => "b05",
            Benchmark::B06 => "b06",
            Benchmark::B09 => "b09",
            Benchmark::C17 => "c17",
            Benchmark::C432 => "c432",
            Benchmark::C499 => "c499",
            Benchmark::C880 => "c880",
        }
    }

    /// The embedded MiniHDL source text.
    pub fn source(self) -> &'static str {
        match self {
            Benchmark::B01 => include_str!("hdl/b01.mhdl"),
            Benchmark::B02 => include_str!("hdl/b02.mhdl"),
            Benchmark::B03 => include_str!("hdl/b03.mhdl"),
            Benchmark::B04 => include_str!("hdl/b04.mhdl"),
            Benchmark::B05 => include_str!("hdl/b05.mhdl"),
            Benchmark::B06 => include_str!("hdl/b06.mhdl"),
            Benchmark::B09 => include_str!("hdl/b09.mhdl"),
            Benchmark::C17 => include_str!("hdl/c17.mhdl"),
            Benchmark::C432 => include_str!("hdl/c432.mhdl"),
            Benchmark::C499 => include_str!("hdl/c499.mhdl"),
            Benchmark::C880 => include_str!("hdl/c880.mhdl"),
        }
    }

    /// Parses, checks and synthesizes the benchmark.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if the embedded source fails any stage —
    /// which would be a packaging bug; the test-suite loads every
    /// benchmark.
    pub fn load(self) -> Result<Circuit, CircuitError> {
        Circuit::from_source(self.source(), self.name())
    }

    /// Parses a name as used in the paper (`"b01"`, `"c432"`, …).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error loading a circuit.
#[derive(Debug)]
pub enum CircuitError {
    /// Parsing or checking the MiniHDL source failed.
    Hdl(HdlError),
    /// Synthesis failed.
    Synth(SynthError),
    /// The source has no entity of the expected name.
    MissingEntity(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Hdl(e) => write!(f, "circuit source error: {e}"),
            CircuitError::Synth(e) => write!(f, "circuit synthesis error: {e}"),
            CircuitError::MissingEntity(name) => {
                write!(f, "circuit source lacks entity `{name}`")
            }
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Hdl(e) => Some(e),
            CircuitError::Synth(e) => Some(e),
            CircuitError::MissingEntity(_) => None,
        }
    }
}

impl From<HdlError> for CircuitError {
    fn from(e: HdlError) -> Self {
        CircuitError::Hdl(e)
    }
}

impl From<SynthError> for CircuitError {
    fn from(e: SynthError) -> Self {
        CircuitError::Synth(e)
    }
}

/// A loaded circuit: the checked behavioral model together with its
/// synthesized gate-level netlist.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// The entity name (`b01`, `c432`, …).
    pub name: String,
    /// The checked behavioral design (mutation operates on this).
    pub checked: CheckedDesign,
    /// The synthesized gate-level netlist (fault simulation operates on
    /// this).
    pub netlist: Netlist,
}

impl Circuit {
    /// Builds a circuit from MiniHDL source text.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when parsing, checking or synthesis
    /// fails, or when the source lacks an entity named `entity`.
    pub fn from_source(source: &str, entity: &str) -> Result<Self, CircuitError> {
        let design = musa_hdl::parse(source)?;
        if design.entity(entity).is_none() {
            return Err(CircuitError::MissingEntity(entity.to_string()));
        }
        let checked = CheckedDesign::new(design)?;
        let netlist = musa_synth::synthesize(&checked, entity)?;
        Ok(Self {
            name: entity.to_string(),
            checked,
            netlist,
        })
    }

    /// The checked entity metadata.
    ///
    /// # Panics
    ///
    /// Never panics for circuits built through [`Circuit::from_source`]
    /// (the entity is known to exist).
    pub fn info(&self) -> &EntityInfo {
        self.checked
            .entity_info(&self.name)
            .expect("circuit entity must exist")
    }

    /// `true` when the circuit has no clocked process.
    pub fn is_combinational(&self) -> bool {
        self.info().is_combinational()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::{Bits, Simulator};
    use musa_netlist::good_outputs;
    use musa_prng::{Prng, SplitMix64};
    use musa_synth::{flatten_sequence, unflatten_outputs};

    #[test]
    fn every_benchmark_loads() {
        for bench in Benchmark::all() {
            let circuit = bench.load().unwrap_or_else(|e| {
                panic!("{bench} failed to load: {e}");
            });
            assert_eq!(circuit.name, bench.name());
            assert!(circuit.netlist.gate_count() > 0, "{bench} has no gates");
        }
    }

    #[test]
    fn paper_set_is_subset_of_all() {
        for bench in Benchmark::paper_set() {
            assert!(Benchmark::all().contains(&bench));
        }
    }

    #[test]
    fn from_name_roundtrips() {
        for bench in Benchmark::all() {
            assert_eq!(Benchmark::from_name(bench.name()), Some(bench));
        }
        assert_eq!(Benchmark::from_name("zz"), None);
    }

    #[test]
    fn interface_shapes_match_the_paper() {
        let c432 = Benchmark::C432.load().unwrap();
        assert_eq!(c432.netlist.inputs().len(), 36, "c432 has 36 PIs");
        assert_eq!(c432.netlist.outputs().len(), 7, "c432 has 7 POs");
        assert!(c432.is_combinational());

        let c499 = Benchmark::C499.load().unwrap();
        assert_eq!(c499.netlist.inputs().len(), 41, "c499 has 41 PIs");
        assert_eq!(c499.netlist.outputs().len(), 32, "c499 has 32 POs");
        assert!(c499.is_combinational());

        let b01 = Benchmark::B01.load().unwrap();
        assert!(!b01.is_combinational());
        assert!(b01.netlist.dff_count() >= 4);

        let b03 = Benchmark::B03.load().unwrap();
        assert!(!b03.is_combinational());
    }

    /// Cross-simulates behavior vs gates over a random sequence.
    fn cross_check(bench: Benchmark, cycles: usize, seed: u64) {
        let circuit = bench.load().unwrap();
        let info = circuit.info();
        let mut rng = SplitMix64::new(seed);
        let sequence: Vec<Vec<Bits>> = (0..cycles)
            .map(|_| {
                info.data_inputs
                    .iter()
                    .map(|&p| {
                        let w = info.symbol(p).width;
                        Bits::new(w, rng.bits(w))
                    })
                    .collect()
            })
            .collect();
        let mut behav = Simulator::new(&circuit.checked, &circuit.name).unwrap();
        let expected = behav.run(&sequence);
        let patterns = flatten_sequence(info, &sequence);
        let gate_outs = good_outputs(&circuit.netlist, &patterns);
        for (t, bits) in gate_outs.iter().enumerate() {
            assert_eq!(
                unflatten_outputs(info, bits),
                expected[t],
                "{bench} diverges at cycle {t}"
            );
        }
    }

    #[test]
    fn cross_check_b01() {
        cross_check(Benchmark::B01, 300, 0x01);
    }

    #[test]
    fn cross_check_b02() {
        cross_check(Benchmark::B02, 300, 0x02);
    }

    #[test]
    fn cross_check_b03() {
        cross_check(Benchmark::B03, 300, 0x03);
    }

    #[test]
    fn cross_check_b04() {
        cross_check(Benchmark::B04, 300, 0x04);
    }

    #[test]
    fn cross_check_b05() {
        cross_check(Benchmark::B05, 300, 0x05);
    }

    #[test]
    fn cross_check_b06() {
        cross_check(Benchmark::B06, 300, 0x06);
    }

    #[test]
    fn cross_check_c17() {
        cross_check(Benchmark::C17, 64, 0x17);
    }

    #[test]
    fn cross_check_b09() {
        cross_check(Benchmark::B09, 300, 0x09);
    }

    #[test]
    fn cross_check_c880() {
        cross_check(Benchmark::C880, 200, 0x880);
    }

    #[test]
    fn c880_alu_operations() {
        let circuit = Benchmark::C880.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "c880").unwrap();
        let run = |sim: &mut Simulator, a: u64, bv: u64, op: u64, cin: u64| {
            sim.step(&[b(8, a), b(8, bv), b(3, op), b(1, cin)])
        };
        // 200 + 100 + 1 = 301 -> y = 45, cout = 1.
        let outs = run(&mut sim, 200, 100, 0, 1);
        assert_eq!(outs[0].raw(), 45);
        assert_eq!(outs[1].raw(), 1);
        // 5 - 9 borrows.
        let outs = run(&mut sim, 5, 9, 1, 0);
        assert_eq!(outs[0].raw(), 252);
        assert_eq!(outs[1].raw(), 1, "borrow flag");
        // Logic and status flags.
        let outs = run(&mut sim, 0xF0, 0x0F, 2, 0);
        assert_eq!(outs[0].raw(), 0);
        assert_eq!(outs[2].raw(), 1, "zero flag");
        let outs = run(&mut sim, 0b0000_0111, 0, 4, 0);
        assert_eq!(outs[3].raw(), 1, "odd parity");
        // Shifts carry out the edge bit.
        let outs = run(&mut sim, 0x81, 0, 5, 0);
        assert_eq!(outs[0].raw(), 0x02);
        assert_eq!(outs[1].raw(), 1);
        // Compare.
        let outs = run(&mut sim, 3, 7, 7, 0);
        assert_eq!(outs[0].raw(), 1, "a < b");
        let outs = run(&mut sim, 7, 7, 7, 0);
        assert_eq!(outs[1].raw(), 1, "equality on cout");
    }

    #[test]
    fn b09_deserialises_bytes() {
        let circuit = Benchmark::B09.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b09").unwrap();
        let zero = b(1, 0);
        // Shift in 0b1011_0010 MSB-first.
        let byte = 0b1011_0010u64;
        let mut seen_valid = false;
        for i in (0..8).rev() {
            let outs = sim.step(&[zero, b(1, (byte >> i) & 1)]);
            seen_valid |= outs[1].raw() == 1;
        }
        assert!(!seen_valid, "valid must not fire mid-word");
        // The word lands one cycle after the eighth bit's edge.
        let outs = sim.step(&[zero, zero]);
        assert_eq!(outs[1].raw(), 1, "valid fires");
        assert_eq!(outs[0].raw(), byte, "byte reassembled");
    }

    #[test]
    fn cross_check_c432() {
        cross_check(Benchmark::C432, 100, 0x432);
    }

    #[test]
    fn cross_check_c499() {
        cross_check(Benchmark::C499, 60, 0x499);
    }

    // ---- functional spot checks -----------------------------------------

    fn b(width: u32, value: u64) -> Bits {
        Bits::new(width, value)
    }

    #[test]
    fn c499_corrects_single_bit_error() {
        let circuit = Benchmark::C499.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "c499").unwrap();
        let data: u64 = 0xDEAD_BEEF_1234_5678 & 0xFFFF_FFFF;
        // Encode: check bits = XOR of (i+1) over set data bits.
        let mut check = 0u64;
        for i in 0..32 {
            if (data >> i) & 1 == 1 {
                check ^= i + 1;
            }
        }
        // Clean word passes through.
        let outs = sim.step(&[b(32, data), b(8, check), b(1, 1)]);
        assert_eq!(outs[0].raw(), data, "clean word must pass unchanged");
        // Flip data bit 13: decoder must repair it when armed.
        let corrupted = data ^ (1 << 13);
        let outs = sim.step(&[b(32, corrupted), b(8, check), b(1, 1)]);
        assert_eq!(outs[0].raw(), data, "single-bit error must be corrected");
        // Correction disarmed: the error passes through.
        let outs = sim.step(&[b(32, corrupted), b(8, check), b(1, 0)]);
        assert_eq!(outs[0].raw(), corrupted);
    }

    #[test]
    fn c432_prioritises_buses_and_channels() {
        let circuit = Benchmark::C432.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "c432").unwrap();
        // Request on B channel 4 with all channels enabled; A quiet.
        let outs = sim.step(&[b(9, 0), b(9, 1 << 4), b(9, 0x1FF), b(9, 0x1FF)]);
        assert_eq!(outs[0].raw(), 0, "pa");
        assert_eq!(outs[1].raw(), 1, "pb wins when a quiet");
        assert_eq!(outs[2].raw(), 0, "pc");
        assert_eq!(outs[3].raw(), 4, "channel index");
        // A overrides B; lowest requesting channel wins within the bus.
        let outs = sim.step(&[b(9, 0b110), b(9, 1 << 4), b(9, 0), b(9, 0x1FF)]);
        assert_eq!(outs[0].raw(), 1, "pa");
        assert_eq!(outs[1].raw(), 0, "pb masked by a");
        assert_eq!(outs[3].raw(), 1, "lowest set channel of bus a");
        // Disabled channels are invisible.
        let outs = sim.step(&[b(9, 0b110), b(9, 0), b(9, 0), b(9, 0)]);
        assert_eq!(outs[0].raw(), 0);
        assert_eq!(outs[3].raw(), 15, "no grant encodes 15");
    }

    #[test]
    fn b03_round_robin_rotates() {
        let circuit = Benchmark::B03.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b03").unwrap();
        let zero = b(1, 0);
        // All four request continuously; grants observed one cycle later.
        let all = b(4, 0b1111);
        sim.step(&[zero, all]); // grants land next cycle
        let g1 = sim.step(&[zero, all])[0].raw();
        let g2 = sim.step(&[zero, all])[0].raw();
        let g3 = sim.step(&[zero, all])[0].raw();
        let g4 = sim.step(&[zero, all])[0].raw();
        // One-hot grants, rotating through all requesters.
        for g in [g1, g2, g3, g4] {
            assert_eq!(g.count_ones(), 1, "grant must be one-hot, got {g:#b}");
        }
        assert_eq!(g1 | g2 | g3 | g4, 0b1111, "all requesters served");
    }

    #[test]
    fn b01_serial_addition() {
        let circuit = Benchmark::B01.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b01").unwrap();
        let zero = b(1, 0);
        let one = b(1, 1);
        // 1+1 LSB-first: sum bit 0 then carry into next position.
        sim.step(&[zero, one, one]); // rst=0, line1=1, line2=1
        let outs = sim.step(&[zero, zero, zero]);
        assert_eq!(outs[0].raw(), 0, "sum bit of 1+1 is 0");
        let outs = sim.step(&[zero, zero, zero]);
        assert_eq!(outs[0].raw(), 1, "carry emerges next cycle");
    }

    #[test]
    fn b02_recognises_bcd_frames() {
        let circuit = Benchmark::B02.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b02").unwrap();
        let zero = b(1, 0);
        // Frame 1: MSB-first 1,0,0,1 = 9 → valid BCD.
        let mut last = 0;
        for bit in [1u64, 0, 0, 1] {
            last = sim.step(&[zero, b(1, bit)])[0].raw();
        }
        let after_frame1 = sim.step(&[zero, b(1, 1)])[0].raw();
        assert_eq!(last, 0, "u low during the frame");
        assert_eq!(after_frame1, 1, "9 is valid BCD");
        // Frame 2 continues: 1,1,1,1 = 15 → invalid (first bit already fed).
        for bit in [1u64, 1, 1] {
            sim.step(&[zero, b(1, bit)]);
        }
        let after_frame2 = sim.step(&[zero, b(1, 0)])[0].raw();
        assert_eq!(after_frame2, 0, "15 is not BCD");
    }

    #[test]
    fn b04_tracks_extrema() {
        let circuit = Benchmark::B04.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b04").unwrap();
        let zero = b(1, 0);
        for v in [42u64, 17, 200, 99] {
            sim.step(&[zero, b(8, v)]);
        }
        let outs = sim.step(&[zero, b(8, 120)]);
        assert_eq!(outs[0].raw(), 17, "min");
        assert_eq!(outs[1].raw(), 200, "max");
    }

    #[test]
    fn b05_elaborates_simulates_and_yields_mutants() {
        use musa_mutation::{generate_mutants, GenerateOptions};
        // Smoke for the ROADMAP "larger circuit suite" item: the model
        // must elaborate, synthesize, run a scan and produce a mutant
        // population worth sampling.
        let circuit = Benchmark::B05.load().unwrap();
        assert!(!circuit.is_combinational());
        assert!(circuit.netlist.gate_count() > 0);
        let mut sim = Simulator::new(&circuit.checked, "b05").unwrap();
        let zero = b(1, 0);
        let one = b(1, 1);
        // Kick off a scan; the walk takes 16 cycles, then `done` pulses.
        sim.step(&[zero, one]);
        let mut done_at = None;
        for t in 0..20 {
            let outs = sim.step(&[zero, zero]);
            if outs[1].raw() == 1 {
                done_at = Some(t);
                // Max of the table is 15; checksum 0x70 >> 4 = 7.
                assert_eq!(outs[0].raw() >> 4, 15, "max nibble");
                break;
            }
        }
        assert_eq!(done_at, Some(16), "scan takes 16 cycles plus the report");
        let mutants = generate_mutants(
            &circuit.checked,
            &circuit.name,
            &GenerateOptions::default(),
        );
        assert!(mutants.len() >= 50, "population {} too small", mutants.len());
    }

    #[test]
    fn b06_acknowledges_requests() {
        let circuit = Benchmark::B06.load().unwrap();
        let mut sim = Simulator::new(&circuit.checked, "b06").unwrap();
        let zero = b(1, 0);
        let one = b(1, 1);
        // rtr=1 → state 1; eql=1 → state 3 (ack); then state 5 (ack).
        sim.step(&[zero, zero, one]); // eql=0, rtr=1
        sim.step(&[zero, one, zero]);
        let ack = sim.step(&[zero, zero, zero])[0].raw();
        assert_eq!(ack, 1, "state 3 acknowledges");
        let ack = sim.step(&[zero, zero, zero])[0].raw();
        assert_eq!(ack, 1, "state 5 still acknowledges");
    }

    #[test]
    fn circuit_from_bad_source_errors() {
        assert!(matches!(
            Circuit::from_source("entity x is port(a : in bit);", "x"),
            Err(CircuitError::Hdl(_))
        ));
        assert!(matches!(
            Circuit::from_source(
                "entity x is port(a : in bit; y : out bit);
                 comb begin y <= a; end;
                 end;",
                "other"
            ),
            Err(CircuitError::MissingEntity(_))
        ));
    }

    #[test]
    fn pretty_printer_roundtrips_every_benchmark() {
        for bench in Benchmark::all() {
            let d1 = musa_hdl::parse(bench.source()).unwrap();
            let p1 = musa_hdl::pretty::print_design(&d1);
            let d2 = musa_hdl::parse(&p1)
                .unwrap_or_else(|e| panic!("{bench}: re-parse failed: {}", e.render(&p1)));
            let p2 = musa_hdl::pretty::print_design(&d2);
            assert_eq!(p1, p2, "{bench}: pretty printing is not a fixpoint");
        }
    }

    #[test]
    fn mutant_populations_are_stable_and_nontrivial() {
        use musa_mutation::{generate_mutants, GenerateOptions};
        for bench in Benchmark::paper_set() {
            let circuit = bench.load().unwrap();
            let a = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            let b = generate_mutants(
                &circuit.checked,
                &circuit.name,
                &GenerateOptions::default(),
            );
            assert_eq!(a, b, "{bench}: generation must be deterministic");
            assert!(a.len() >= 50, "{bench}: population {} too small", a.len());
            // Every validated mutant must apply cleanly.
            for mutant in a.iter().take(40) {
                mutant.apply(&circuit.checked).unwrap_or_else(|e| {
                    panic!("{bench}: {} failed to apply: {e}", mutant.description)
                });
            }
        }
    }

    #[test]
    fn gate_counts_are_reasonable() {
        // Guard against folding regressions blowing netlists up.
        let c432 = Benchmark::C432.load().unwrap();
        assert!(
            (50..3000).contains(&c432.netlist.gate_count()),
            "c432 gate count {} out of expected band",
            c432.netlist.gate_count()
        );
        let c499 = Benchmark::C499.load().unwrap();
        assert!(
            (200..6000).contains(&c499.netlist.gate_count()),
            "c499 gate count {} out of expected band",
            c499.netlist.gate_count()
        );
    }
}
