//! The mutation operator catalogue.
//!
//! Ten VHDL-style operators, following Al-Hayek & Robach ("From Design
//! Validation to Hardware Testing: a Unified Approach", JETTA 14, 1999 —
//! reference [3] of the paper). The paper's Tables 1 and 2 report four of
//! them (LOR, VR, CVR, CR); the full set is implemented so the sampling
//! strategies operate over a realistic mutant population.

use std::fmt;

/// A mutation operator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutationOperator {
    /// Logical Operator Replacement: `and ↔ or ↔ xor ↔ nand ↔ nor ↔ xnor`.
    Lor,
    /// Relational Operator Replacement: `= ↔ /= ↔ < ↔ <= ↔ > ↔ >=`.
    Ror,
    /// Arithmetic Operator Replacement: `+ ↔ - ↔ *`.
    Aor,
    /// Variable Replacement: a signal/port/variable reference is replaced
    /// by another visible name of the same width.
    Vr,
    /// Constant-for-Variable Replacement: a reference is replaced by a
    /// constant of the same width.
    Cvr,
    /// Constant Replacement: a literal or named constant is perturbed
    /// (`c±1`, 0, all-ones).
    Cr,
    /// Unary Operator Insertion: a reference is complemented (`x → not x`).
    Uoi,
    /// Unary Operator Deletion: a complement is removed (`not x → x`).
    Uod,
    /// Statement Deletion: an assignment becomes `null;`.
    Sdl,
    /// Condition Stuck: an `if`/`elsif` condition is replaced by a
    /// constant `0` or `1`.
    Csr,
}

impl MutationOperator {
    /// All ten operators, in canonical order.
    pub fn all() -> [MutationOperator; 10] {
        [
            MutationOperator::Lor,
            MutationOperator::Ror,
            MutationOperator::Aor,
            MutationOperator::Vr,
            MutationOperator::Cvr,
            MutationOperator::Cr,
            MutationOperator::Uoi,
            MutationOperator::Uod,
            MutationOperator::Sdl,
            MutationOperator::Csr,
        ]
    }

    /// The four operators the paper's tables report.
    pub fn paper_set() -> [MutationOperator; 4] {
        [
            MutationOperator::Lor,
            MutationOperator::Vr,
            MutationOperator::Cvr,
            MutationOperator::Cr,
        ]
    }

    /// The conventional acronym (`LOR`, `VR`, …).
    pub fn acronym(self) -> &'static str {
        match self {
            MutationOperator::Lor => "LOR",
            MutationOperator::Ror => "ROR",
            MutationOperator::Aor => "AOR",
            MutationOperator::Vr => "VR",
            MutationOperator::Cvr => "CVR",
            MutationOperator::Cr => "CR",
            MutationOperator::Uoi => "UOI",
            MutationOperator::Uod => "UOD",
            MutationOperator::Sdl => "SDL",
            MutationOperator::Csr => "CSR",
        }
    }

    /// A one-line description.
    pub fn description(self) -> &'static str {
        match self {
            MutationOperator::Lor => "logical operator replacement",
            MutationOperator::Ror => "relational operator replacement",
            MutationOperator::Aor => "arithmetic operator replacement",
            MutationOperator::Vr => "variable replacement",
            MutationOperator::Cvr => "constant for variable replacement",
            MutationOperator::Cr => "constant replacement",
            MutationOperator::Uoi => "unary operator insertion",
            MutationOperator::Uod => "unary operator deletion",
            MutationOperator::Sdl => "statement deletion",
            MutationOperator::Csr => "condition stuck-at",
        }
    }

    /// Parses an acronym (case-insensitive).
    pub fn from_acronym(s: &str) -> Option<MutationOperator> {
        let upper = s.to_ascii_uppercase();
        MutationOperator::all()
            .into_iter()
            .find(|op| op.acronym() == upper)
    }
}

impl fmt::Display for MutationOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.acronym())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_operators() {
        let all = MutationOperator::all();
        assert_eq!(all.len(), 10);
        let mut acronyms: Vec<&str> = all.iter().map(|o| o.acronym()).collect();
        acronyms.sort_unstable();
        acronyms.dedup();
        assert_eq!(acronyms.len(), 10);
    }

    #[test]
    fn paper_set_is_the_reported_four() {
        let set = MutationOperator::paper_set();
        assert_eq!(
            set.map(|o| o.acronym()),
            ["LOR", "VR", "CVR", "CR"]
        );
    }

    #[test]
    fn acronym_roundtrip() {
        for op in MutationOperator::all() {
            assert_eq!(MutationOperator::from_acronym(op.acronym()), Some(op));
            assert_eq!(
                MutationOperator::from_acronym(&op.acronym().to_lowercase()),
                Some(op)
            );
        }
        assert_eq!(MutationOperator::from_acronym("ZZZ"), None);
    }

    #[test]
    fn display_is_acronym() {
        assert_eq!(MutationOperator::Lor.to_string(), "LOR");
        assert_eq!(MutationOperator::Cvr.to_string(), "CVR");
    }
}
