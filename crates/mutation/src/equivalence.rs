//! Equivalent-mutant identification.
//!
//! Mutant equivalence is undecidable in general; like every practical
//! mutation tool, this module uses a budgeted policy:
//!
//! * **Proof by exhaustion** — combinational entities with at most
//!   [`EquivalencePolicy::exhaustive_limit`] input bits are checked over
//!   the full input space: a surviving mutant is *proven* equivalent.
//! * **Presumption by budget** — otherwise the mutant faces
//!   [`EquivalencePolicy::budget`] random vectors (several independent
//!   sequences from reset for sequential designs); survivors are
//!   *presumed* equivalent.
//!
//! The experiment crate's E4 ablation quantifies how the budget choice
//! perturbs the Mutation Score.

use crate::execute::{reference_transcript, run_one};
use crate::mutant::{Mutant, MutationError};
use musa_hdl::{Bits, CheckedDesign, EntityInfo};
use musa_prng::{Prng, SplitMix64};

/// How a mutant relates to the original design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquivalenceClass {
    /// Some test distinguishes the mutant (a killing input is known).
    Killable,
    /// The full input space was enumerated without a difference.
    ProvenEquivalent,
    /// The random budget was exhausted without a difference.
    PresumedEquivalent,
}

impl EquivalenceClass {
    /// `true` for both proven and presumed equivalence — the `E` term of
    /// the paper's `MS = K/(M−E)`.
    pub fn is_equivalent(self) -> bool {
        matches!(
            self,
            EquivalenceClass::ProvenEquivalent | EquivalenceClass::PresumedEquivalent
        )
    }
}

/// Configuration of the equivalence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalencePolicy {
    /// Total random vectors applied before presuming equivalence.
    pub budget: usize,
    /// Number of independent reset sequences the budget is split across
    /// (sequential designs explore more reachable state this way).
    pub sequences: usize,
    /// Combinational input-space size (in bits) up to which exhaustive
    /// enumeration is used instead of random vectors.
    pub exhaustive_limit: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for EquivalencePolicy {
    fn default() -> Self {
        Self {
            budget: 2_000,
            sequences: 8,
            exhaustive_limit: 14,
            seed: 0x0E0C_0A11,
        }
    }
}

impl EquivalencePolicy {
    /// A light-weight policy for unit tests and quick runs.
    pub fn fast(seed: u64) -> Self {
        Self {
            budget: 300,
            sequences: 4,
            exhaustive_limit: 10,
            seed,
        }
    }
}

/// Classifies every mutant of a population.
///
/// # Errors
///
/// Propagates [`MutationError`] when a mutant does not belong to the
/// design or the entity is unknown.
pub fn classify_mutants(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    policy: &EquivalencePolicy,
) -> Result<Vec<EquivalenceClass>, MutationError> {
    let info = checked
        .entity_info(entity)
        .ok_or_else(|| MutationError::EntityNotFound(entity.to_string()))?;

    let exhaustive = info.is_combinational() && info.input_bits() <= policy.exhaustive_limit;
    let sequences = build_sequences(info, policy, exhaustive);

    // Precompute reference transcripts once per sequence.
    let references: Vec<Vec<Vec<Bits>>> = sequences
        .iter()
        .map(|s| reference_transcript(checked, entity, s))
        .collect::<Result<_, _>>()?;

    let mut classes = Vec::with_capacity(mutants.len());
    for mutant in mutants {
        let mut killed = false;
        for (sequence, reference) in sequences.iter().zip(&references) {
            if run_one(checked, entity, mutant, sequence, reference)?.is_some() {
                killed = true;
                break;
            }
        }
        classes.push(if killed {
            EquivalenceClass::Killable
        } else if exhaustive {
            EquivalenceClass::ProvenEquivalent
        } else {
            EquivalenceClass::PresumedEquivalent
        });
    }
    Ok(classes)
}

/// The class [`classify_mutants`] would assign to a mutant that
/// survives every sequence: proven on exhaustively-enumerable
/// combinational entities, presumed otherwise.
///
/// The static pre-screen uses this to fold proven-unkillable mutants
/// into the `E` term with the exact class full execution would report.
pub fn survivor_class(info: &EntityInfo, policy: &EquivalencePolicy) -> EquivalenceClass {
    if info.is_combinational() && info.input_bits() <= policy.exhaustive_limit {
        EquivalenceClass::ProvenEquivalent
    } else {
        EquivalenceClass::PresumedEquivalent
    }
}

fn build_sequences(
    info: &EntityInfo,
    policy: &EquivalencePolicy,
    exhaustive: bool,
) -> Vec<Vec<Vec<Bits>>> {
    if exhaustive {
        let widths: Vec<u32> = info
            .data_inputs
            .iter()
            .map(|&p| info.symbol(p).width)
            .collect();
        let total: u32 = widths.iter().sum();
        let sequence: Vec<Vec<Bits>> = (0..(1u64 << total))
            .map(|pattern| {
                let mut cursor = 0u32;
                widths
                    .iter()
                    .map(|&w| {
                        let v = (pattern >> cursor) & mask(w);
                        cursor += w;
                        Bits::new(w, v)
                    })
                    .collect()
            })
            .collect();
        return vec![sequence];
    }
    let mut rng = SplitMix64::new(policy.seed);
    let sequences = policy.sequences.max(1);
    let per_sequence = (policy.budget / sequences).max(1);
    (0..sequences)
        .map(|_| {
            (0..per_sequence)
                .map(|_| {
                    info.data_inputs
                        .iter()
                        .map(|&p| {
                            let w = info.symbol(p).width;
                            // Testbench convention: reset-like inputs pulse
                            // sparsely (matches the test generators).
                            if info.reset_like(p) {
                                Bits::new(1, u64::from(rng.below(16) == 0))
                            } else {
                                Bits::new(w, rng.bits(w))
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mutants, GenerateOptions};
    use crate::mutant::{MutantId, Rewrite};
    use crate::operator::MutationOperator;
    use musa_hdl::ast::{BinOp, Expr, NodeId};
    use musa_hdl::parse;

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn truly_equivalent_mutant_is_proven_on_small_comb() {
        // y <= a or a: VR b→a gives y <= a or a ≡ replacing `a or b`'s b
        // with... craft directly: y <= a and a. Mutate `and`→`or`:
        // a and a ≡ a or a — equivalent.
        let d = checked(
            "entity e is port(a : in bit; y : out bit);
             comb begin y <= a and a; end;
             end;",
        );
        // Find the and site.
        let mut site = None;
        for entity in &d.design().entities {
            for process in &entity.processes {
                musa_hdl::ast::walk_exprs(&process.body, &mut |e| {
                    if let Expr::Binary { id, op: BinOp::And, .. } = e {
                        site = Some(*id);
                    }
                });
            }
        }
        let mutant = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Lor,
            site: site.unwrap(),
            rewrite: Rewrite::BinOp { new: BinOp::Or },
            description: "and->or on idempotent operands".into(),
        };
        let classes =
            classify_mutants(&d, "e", &[mutant], &EquivalencePolicy::default()).unwrap();
        assert_eq!(classes[0], EquivalenceClass::ProvenEquivalent);
        assert!(classes[0].is_equivalent());
    }

    #[test]
    fn killable_mutants_are_detected() {
        let d = checked(
            "entity g is port(a : in bit; b : in bit; y : out bit);
             comb begin y <= a and b; end;
             end;",
        );
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        let classes =
            classify_mutants(&d, "g", &mutants, &EquivalencePolicy::default()).unwrap();
        assert!(classes.iter().all(|c| *c == EquivalenceClass::Killable));
    }

    #[test]
    fn sequential_designs_use_presumption() {
        let d = checked(
            "entity t is
               port(clk : in bit; en : in bit; q : out bit);
             signal r : bit;
             seq(clk) begin
               if en = 1 then r <= not r; end if;
             end;
             comb begin q <= r; end;
             end;",
        );
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let classes =
            classify_mutants(&d, "t", &mutants, &EquivalencePolicy::fast(7)).unwrap();
        // No ProvenEquivalent possible on a sequential design.
        assert!(classes
            .iter()
            .all(|c| *c != EquivalenceClass::ProvenEquivalent));
        // The toggle FSM is simple: most mutants must be killable.
        let killable = classes
            .iter()
            .filter(|c| **c == EquivalenceClass::Killable)
            .count();
        assert!(killable * 2 > classes.len(), "{killable}/{}", classes.len());
    }

    #[test]
    fn unknown_entity_errors() {
        let d = checked(
            "entity g is port(a : in bit; y : out bit);
             comb begin y <= a; end;
             end;",
        );
        let mutant = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Cr,
            site: NodeId(0),
            rewrite: Rewrite::Literal { value: 0 },
            description: String::new(),
        };
        assert!(classify_mutants(&d, "zz", &[mutant], &EquivalencePolicy::default()).is_err());
    }

    #[test]
    fn classification_is_deterministic() {
        let d = checked(
            "entity g is port(a : in bits(4); b : in bits(4); y : out bits(4));
             comb begin y <= a + b; end;
             end;",
        );
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let p = EquivalencePolicy::fast(99);
        let c1 = classify_mutants(&d, "g", &mutants, &p).unwrap();
        let c2 = classify_mutants(&d, "g", &mutants, &p).unwrap();
        assert_eq!(c1, c2);
    }
}
