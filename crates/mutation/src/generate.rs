//! Deterministic enumeration of the mutant population.
//!
//! [`generate_mutants`] walks the checked entity and produces every
//! mutant of every operator class, in a fixed order, then validates each
//! one by applying it and re-checking the design — mutants that would be
//! stillborn (e.g. a `VR` creating a combinational loop, or an `SDL`
//! leaving a combinational output unassigned) are discarded, exactly as a
//! VHDL mutation tool discards syntactically illegal mutants.

use crate::mutant::{Mutant, MutantId, Rewrite};
use crate::operator::MutationOperator;
use musa_hdl::ast::*;
use musa_hdl::pretty::expr_to_string;
use musa_hdl::{CheckedDesign, EntityInfo, SymbolKind};

/// Options controlling mutant generation.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Operator classes to enumerate (default: all ten).
    pub operators: Vec<MutationOperator>,
    /// Validate each mutant by re-checking (default: true). Disable only
    /// in benchmarks measuring raw enumeration speed.
    pub validate: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            operators: MutationOperator::all().to_vec(),
            validate: true,
        }
    }
}

impl GenerateOptions {
    /// Restricts generation to a single operator class.
    pub fn only(operator: MutationOperator) -> Self {
        Self {
            operators: vec![operator],
            validate: true,
        }
    }
}

/// Enumerates the valid mutants of `entity` within `checked`.
///
/// Returns an empty vector if the entity does not exist. Mutant ids are
/// dense (`0..n`) and the order is deterministic: walk order over the
/// AST, operator class order within each site.
///
/// # Examples
///
/// ```
/// use musa_hdl::{parse, CheckedDesign};
/// use musa_mutation::{generate_mutants, GenerateOptions};
///
/// let checked = CheckedDesign::new(parse(
///     "entity g is port(a : in bit; b : in bit; y : out bit);
///        comb begin y <= a and b; end;
///      end;",
/// )?)?;
/// let mutants = generate_mutants(&checked, "g", &GenerateOptions::default());
/// assert!(!mutants.is_empty());
/// // Five LOR alternatives for the single `and`.
/// let lor = mutants
///     .iter()
///     .filter(|m| m.operator == musa_mutation::MutationOperator::Lor)
///     .count();
/// assert_eq!(lor, 5);
/// # Ok::<(), musa_hdl::HdlError>(())
/// ```
pub fn generate_mutants(
    checked: &CheckedDesign,
    entity_name: &str,
    options: &GenerateOptions,
) -> Vec<Mutant> {
    let Some((entity, info)) = checked.entity(entity_name) else {
        return Vec::new();
    };
    let mut gen = Generator {
        info,
        options,
        candidates: Vec::new(),
    };
    gen.walk_entity(entity);

    let mut mutants = Vec::new();
    for (operator, site, rewrite, description) in gen.candidates {
        let mutant = Mutant {
            id: MutantId(mutants.len() as u32),
            operator,
            site,
            rewrite,
            description,
        };
        if options.validate && mutant.apply(checked).is_err() {
            continue; // stillborn
        }
        mutants.push(mutant);
    }
    mutants
}

/// Per-operator population counts (reporting helper).
pub fn count_by_operator(mutants: &[Mutant]) -> Vec<(MutationOperator, usize)> {
    MutationOperator::all()
        .into_iter()
        .map(|op| (op, mutants.iter().filter(|m| m.operator == op).count()))
        .filter(|(_, n)| *n > 0)
        .collect()
}

type Candidate = (MutationOperator, NodeId, Rewrite, String);

struct Generator<'a> {
    info: &'a EntityInfo,
    options: &'a GenerateOptions,
    candidates: Vec<Candidate>,
}

impl Generator<'_> {
    fn enabled(&self, op: MutationOperator) -> bool {
        self.options.operators.contains(&op)
    }

    fn push(&mut self, op: MutationOperator, site: NodeId, rewrite: Rewrite, what: String) {
        self.candidates
            .push((op, site, rewrite, format!("{op}: {what}")));
    }

    fn walk_entity(&mut self, entity: &Entity) {
        // CR on named constant declarations.
        if self.enabled(MutationOperator::Cr) {
            for cst in &entity.consts {
                for new in constant_alternatives(cst.value, cst.width) {
                    self.push(
                        MutationOperator::Cr,
                        cst.id,
                        Rewrite::ConstDecl { value: new },
                        format!("constant {} := {} -> {}", cst.name.name, cst.value, new),
                    );
                }
            }
        }
        for process in &entity.processes {
            self.walk_stmts(&process.body);
        }
    }

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { id, target, value, .. } => {
                    if self.enabled(MutationOperator::Sdl) {
                        self.push(
                            MutationOperator::Sdl,
                            *id,
                            Rewrite::DeleteStmt,
                            format!("delete `{} <= {}`", target.base.name, expr_to_string(value)),
                        );
                    }
                    if let Some(Select::Index(ix)) = &target.sel {
                        self.walk_expr(ix);
                    }
                    self.walk_expr(value);
                }
                Stmt::If { arms, else_body, .. } => {
                    for (cond, body) in arms {
                        if self.enabled(MutationOperator::Csr) {
                            for value in [false, true] {
                                self.push(
                                    MutationOperator::Csr,
                                    cond.id(),
                                    Rewrite::StuckCondition { value },
                                    format!(
                                        "condition `{}` stuck at {}",
                                        expr_to_string(cond),
                                        value as u8
                                    ),
                                );
                            }
                        }
                        self.walk_expr(cond);
                        self.walk_stmts(body);
                    }
                    if let Some(body) = else_body {
                        self.walk_stmts(body);
                    }
                }
                Stmt::Case {
                    subject,
                    arms,
                    default,
                    ..
                } => {
                    self.walk_expr(subject);
                    let subject_width = self.info.widths.get(&subject.id()).copied();
                    for arm in arms {
                        if self.enabled(MutationOperator::Cr) {
                            if let Some(w) = subject_width {
                                for (index, &choice) in arm.choices.iter().enumerate() {
                                    for new in constant_alternatives(choice, w) {
                                        self.push(
                                            MutationOperator::Cr,
                                            arm.id,
                                            Rewrite::CaseChoice { index, value: new },
                                            format!("case choice {choice} -> {new}"),
                                        );
                                    }
                                }
                            }
                        }
                        self.walk_stmts(&arm.body);
                    }
                    if let Some(body) = default {
                        self.walk_stmts(body);
                    }
                }
                Stmt::For { body, .. } => self.walk_stmts(body),
                Stmt::Null { .. } => {}
            }
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        expr.walk(&mut |e| self.visit_expr(e));
    }

    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Binary { id, op, lhs, rhs } => {
                let classes: &[BinOp] = if op.is_logical() {
                    &[
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                        BinOp::Nand,
                        BinOp::Nor,
                        BinOp::Xnor,
                    ]
                } else if op.is_relational() {
                    &[
                        BinOp::Eq,
                        BinOp::Ne,
                        BinOp::Lt,
                        BinOp::Le,
                        BinOp::Gt,
                        BinOp::Ge,
                    ]
                } else {
                    &[BinOp::Add, BinOp::Sub, BinOp::Mul]
                };
                let class_op = if op.is_logical() {
                    MutationOperator::Lor
                } else if op.is_relational() {
                    MutationOperator::Ror
                } else {
                    MutationOperator::Aor
                };
                if self.enabled(class_op) {
                    for &new in classes {
                        if new != *op {
                            self.push(
                                class_op,
                                *id,
                                Rewrite::BinOp { new },
                                format!(
                                    "`{}` {} `{}` -> {}",
                                    expr_to_string(lhs),
                                    op.symbol(),
                                    expr_to_string(rhs),
                                    new.symbol()
                                ),
                            );
                        }
                    }
                }
            }
            Expr::Ref { id, name } => {
                let Some(&sym_id) = self.info.resolved.get(id) else {
                    return;
                };
                let sym = self.info.symbol(sym_id);
                // Only mutate data references (not loop indices or named
                // constants — constants belong to CR).
                let is_data = matches!(
                    sym.kind,
                    SymbolKind::PortIn { clock: false } | SymbolKind::Signal | SymbolKind::Var { .. }
                );
                if !is_data {
                    return;
                }
                if self.enabled(MutationOperator::Vr) {
                    for (i, cand) in self.info.symbols.iter().enumerate() {
                        if i as u32 == sym_id.0 || cand.width != sym.width {
                            continue;
                        }
                        let compatible = match (&sym.kind, &cand.kind) {
                            // Replacement must be readable wherever the
                            // original is: stick to ports/signals, plus
                            // variables of the same process.
                            (_, SymbolKind::PortIn { clock: false } | SymbolKind::Signal) => true,
                            (SymbolKind::Var { process: p1 }, SymbolKind::Var { process: p2 }) => {
                                p1 == p2
                            }
                            _ => false,
                        };
                        if compatible {
                            self.push(
                                MutationOperator::Vr,
                                *id,
                                Rewrite::Ref {
                                    new: cand.name.clone(),
                                },
                                format!("`{}` -> `{}`", name.name, cand.name),
                            );
                        }
                    }
                }
                if self.enabled(MutationOperator::Cvr) {
                    // Candidate constants: the degenerate values, the
                    // walking powers of two and their predecessors (the
                    // classic corner stimuli), plus declared constants of
                    // matching width.
                    let mut consts: Vec<u64> = vec![0, 1, all_ones(sym.width)];
                    for k in 1..sym.width.min(8) {
                        consts.push(1u64 << k);
                        consts.push((1u64 << k) - 1);
                    }
                    for other in &self.info.symbols {
                        if let SymbolKind::Const(v) = other.kind {
                            if other.width == sym.width {
                                consts.push(v);
                            }
                        }
                    }
                    consts.sort_unstable();
                    consts.dedup();
                    for value in consts {
                        self.push(
                            MutationOperator::Cvr,
                            *id,
                            Rewrite::RefToConst {
                                value,
                                width: sym.width,
                            },
                            format!("`{}` -> constant {}", name.name, value),
                        );
                    }
                }
                if self.enabled(MutationOperator::Uoi) {
                    self.push(
                        MutationOperator::Uoi,
                        *id,
                        Rewrite::InsertNot,
                        format!("`{}` -> not `{}`", name.name, name.name),
                    );
                }
            }
            Expr::Index { id, .. } | Expr::Slice { id, .. } | Expr::Reduce { id, .. }
                // UOI also negates compound sub-terms (bit selects,
                // slices, reductions), matching the VHDL operator's scope.
                if self.enabled(MutationOperator::Uoi) => {
                    self.push(
                        MutationOperator::Uoi,
                        *id,
                        Rewrite::InsertNot,
                        "complement sub-expression".to_string(),
                    );
                }
            Expr::Literal { id, value, .. }
                if self.enabled(MutationOperator::Cr) => {
                    let Some(&w) = self.info.widths.get(id) else {
                        return;
                    };
                    // Static index literals carry a synthetic width of 32;
                    // perturbing them is still meaningful but must stay in
                    // range — validation discards out-of-range results.
                    for new in constant_alternatives(*value, w.min(16)) {
                        self.push(
                            MutationOperator::Cr,
                            *id,
                            Rewrite::Literal { value: new },
                            format!("literal {value} -> {new}"),
                        );
                    }
                }
            Expr::Unary { id, op: UnaryOp::Not, arg }
                if self.enabled(MutationOperator::Uod) => {
                    self.push(
                        MutationOperator::Uod,
                        *id,
                        Rewrite::DeleteNot,
                        format!("not `{}` -> `{}`", expr_to_string(arg), expr_to_string(arg)),
                    );
                }
            _ => {}
        }
    }
}

fn all_ones(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// CR perturbations of `value` within `width` bits: the off-by-one
/// neighbours, the halved/doubled values, bitwise complement, 0 and
/// all-ones — deduplicated and excluding the original.
fn constant_alternatives(value: u64, width: u32) -> Vec<u64> {
    let mask = all_ones(width);
    let mut alts = vec![
        value.wrapping_add(1) & mask,
        value.wrapping_sub(1) & mask,
        (value << 1) & mask,
        value >> 1,
        !value & mask,
        0,
        mask,
    ];
    alts.sort_unstable();
    alts.dedup();
    alts.retain(|&v| v != value);
    alts
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::parse;

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    const GATE: &str = "
        entity g is
          port(a : in bit; b : in bit; c : in bit; y : out bit);
        comb begin
          y <= (a and b) or c;
        end;
        end;
    ";

    #[test]
    fn lor_enumerates_all_alternatives() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        // Two logical operators × 5 alternatives.
        assert_eq!(mutants.len(), 10);
        assert!(mutants.iter().all(|m| m.operator == MutationOperator::Lor));
    }

    #[test]
    fn vr_respects_widths_and_scope() {
        let d = checked(
            "entity v is
               port(a : in bits(4); b : in bits(4); w : in bit; y : out bits(4));
             comb begin
               y <= a + b;
             end;
             end;",
        );
        let mutants = generate_mutants(&d, "v", &GenerateOptions::only(MutationOperator::Vr));
        // `a` can become b or y?? no — y is an output but OutPort is not a
        // valid replacement (not readable in comb without self-read);
        // candidates are in-ports/signals of width 4: a↔b only. Two refs,
        // one alternative each.
        assert_eq!(mutants.len(), 2, "{:#?}", mutants);
        // w (width 1) is never offered for width-4 refs.
        assert!(mutants.iter().all(|m| !m.description.contains("`w`")));
    }

    #[test]
    fn cvr_offers_constants_of_matching_width() {
        let d = checked(
            "entity c is
               port(a : in bits(3); y : out bits(3));
             constant K : bits(3) := 5;
             comb begin y <= a + K; end;
             end;",
        );
        let mutants = generate_mutants(&d, "c", &GenerateOptions::only(MutationOperator::Cvr));
        // One data ref (`a`; K is a constant ref): candidates include the
        // degenerate values, powers of two and the declared constant 5.
        let values: Vec<&str> = mutants.iter().map(|m| m.description.as_str()).collect();
        assert!(values.iter().any(|d| d.ends_with("constant 0")));
        assert!(values.iter().any(|d| d.ends_with("constant 5")));
        assert!(values.iter().any(|d| d.ends_with("constant 7")));
        assert!(mutants.len() >= 4, "{:#?}", mutants);
    }

    #[test]
    fn cr_perturbs_literals_constants_and_choices() {
        let d = checked(
            "entity k is
               port(a : in bits(4); y : out bits(4); f : out bit);
             constant LIM : bits(4) := 9;
             comb begin
               case a is
                 when 3 => y <= a + 1;
                 when others => y <= a;
               end case;
               f <= a > LIM;
             end;
             end;",
        );
        let mutants = generate_mutants(&d, "k", &GenerateOptions::only(MutationOperator::Cr));
        let descriptions: Vec<&str> = mutants.iter().map(|m| m.description.as_str()).collect();
        assert!(descriptions.iter().any(|d| d.contains("constant LIM")));
        assert!(descriptions.iter().any(|d| d.contains("case choice 3")));
        assert!(descriptions.iter().any(|d| d.contains("literal 1")));
    }

    #[test]
    fn sdl_only_survives_where_legal() {
        let d = checked(
            "entity s is
               port(clk : in bit; d : in bit; q : out bit);
             signal r : bit;
             seq(clk) begin r <= d; end;
             comb begin q <= r; end;
             end;",
        );
        let mutants = generate_mutants(&d, "s", &GenerateOptions::only(MutationOperator::Sdl));
        // Deleting `r <= d` is legal (register holds); deleting `q <= r`
        // violates full assignment and is discarded as stillborn.
        assert_eq!(mutants.len(), 1, "{:#?}", mutants);
        assert!(mutants[0].description.contains("r <= d"));
    }

    #[test]
    fn csr_generates_both_polarities() {
        let d = checked(
            "entity i is
               port(a : in bit; b : in bit; y : out bit);
             comb begin
               if a = 1 then y <= b; else y <= not b; end if;
             end;
             end;",
        );
        let mutants = generate_mutants(&d, "i", &GenerateOptions::only(MutationOperator::Csr));
        assert_eq!(mutants.len(), 2);
        assert!(mutants[0].description.contains("stuck at 0"));
        assert!(mutants[1].description.contains("stuck at 1"));
    }

    #[test]
    fn uoi_and_uod() {
        let d = checked(
            "entity u is
               port(a : in bit; y : out bit);
             comb begin y <= not a; end;
             end;",
        );
        let uoi = generate_mutants(&d, "u", &GenerateOptions::only(MutationOperator::Uoi));
        assert_eq!(uoi.len(), 1);
        let uod = generate_mutants(&d, "u", &GenerateOptions::only(MutationOperator::Uod));
        assert_eq!(uod.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        for (i, m) in mutants.iter().enumerate() {
            assert_eq!(m.id.0 as usize, i);
        }
        assert!(!mutants.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let d = checked(GATE);
        let a = generate_mutants(&d, "g", &GenerateOptions::default());
        let b = generate_mutants(&d, "g", &GenerateOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn every_generated_mutant_applies_cleanly() {
        let d = checked(GATE);
        for m in generate_mutants(&d, "g", &GenerateOptions::default()) {
            m.apply(&d).unwrap_or_else(|e| {
                panic!("validated mutant {} failed to apply: {e}", m.description)
            });
        }
    }

    #[test]
    fn unknown_entity_yields_empty() {
        let d = checked(GATE);
        assert!(generate_mutants(&d, "zz", &GenerateOptions::default()).is_empty());
    }

    #[test]
    fn count_by_operator_sums_to_total() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let counts = count_by_operator(&mutants);
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, mutants.len());
    }

    #[test]
    fn constant_alternatives_exclude_original() {
        for value in 0..8u64 {
            for alt in constant_alternatives(value, 3) {
                assert_ne!(alt, value);
                assert!(alt < 8);
            }
        }
        // Degenerate width-1 case.
        assert_eq!(constant_alternatives(0, 1), vec![1]);
        assert_eq!(constant_alternatives(1, 1), vec![0]);
    }
}
