//! Mutant execution: differential simulation against the original.
//!
//! A mutant is **killed** by a test sequence when, starting from reset,
//! any primary output differs from the original design at any cycle —
//! the strong-mutation criterion the paper's Mutation Score uses.

use crate::mutant::{Mutant, MutationError};
use musa_hdl::{Bits, CheckedDesign, Simulator};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which mutant-execution engine grades a population.
///
/// Both engines produce **bit-identical** [`KillResult`]s for every
/// population, sequence, lane count and job count; the knob exists for
/// differential testing and because the scalar engine accepts arbitrary
/// (even stillborn) mutants while the lane engine is built for
/// validated populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum Engine {
    /// One full `Simulator` pass per mutant, early-exiting at its first
    /// kill. The reference baseline.
    Scalar,
    /// The bit-parallel lane engine ([`crate::lanes`]): up to 63 mutants
    /// plus the reference machine per simulation pass. The default —
    /// promoted after soaking behind `--engine lanes` with the
    /// differential suites pinning bit-identity against scalar.
    #[default]
    Lanes,
}

impl Engine {
    /// The CLI spelling (`scalar` / `lanes`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Lanes => "lanes",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Engine::Scalar),
            "lanes" => Ok(Engine::Lanes),
            other => Err(format!("unknown engine `{other}` (expected scalar|lanes)")),
        }
    }
}

/// Lane-tape optimization level.
///
/// `Full` (the default) runs the tape-to-tape pass pipeline
/// ([`crate::lanes`]' `opt` module: constant folding, copy/select
/// propagation, select-chain flattening, CSE, dead-store + dead-code
/// elimination with register compaction) and lowers the result through
/// superinstruction fusion; `Off` executes the raw compiler output
/// one-op-at-a-time, exactly like the pre-optimizer engine. The two
/// settings are **bit-identical** for every population, sequence and
/// job count — every pass is semantics-preserving per lane — so the
/// knob exists for differential testing and benchmarking, and `opt`
/// stays *out* of the `musa.key.v1` cache key. The scalar engine
/// ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum OptLevel {
    /// Optimize tapes and fuse hot instruction pairs. The default.
    #[default]
    Full,
    /// Interpret the raw compiler output (the benchmarking baseline).
    Off,
}

impl OptLevel {
    /// The CLI spelling (`full` / `off`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Full => "full",
            OptLevel::Off => "off",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(OptLevel::Full),
            "off" => Ok(OptLevel::Off),
            other => Err(format!("unknown opt level `{other}` (expected full|off)")),
        }
    }
}

/// A test sequence: one `Vec<Bits>` (data inputs, declaration order) per
/// clock cycle. Combinational circuits treat each vector independently.
pub type TestSequence = Vec<Vec<Bits>>;

/// Result of executing a mutant population against one test sequence.
#[derive(Debug, Clone)]
pub struct KillResult {
    /// For every mutant (by index), the first killing vector, if any.
    pub first_kill: Vec<Option<usize>>,
}

impl KillResult {
    /// Number of killed mutants.
    pub fn killed_count(&self) -> usize {
        self.first_kill.iter().filter(|k| k.is_some()).count()
    }

    /// Indices of the mutants still alive.
    pub fn alive(&self) -> Vec<usize> {
        self.first_kill
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs the original design over `sequence` and returns its output
/// transcript.
///
/// # Errors
///
/// Returns an error when the entity does not exist.
pub fn reference_transcript(
    checked: &CheckedDesign,
    entity: &str,
    sequence: &[Vec<Bits>],
) -> Result<Vec<Vec<Bits>>, MutationError> {
    let mut sim = Simulator::new(checked, entity)
        .map_err(|_| MutationError::EntityNotFound(entity.to_string()))?;
    Ok(sim.run(sequence))
}

/// Executes every mutant against the sequence, with early exit at the
/// first differing cycle.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant application (a mutant that
/// does not belong to this design).
pub fn execute_mutants(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
) -> Result<KillResult, MutationError> {
    execute_mutants_jobs(checked, entity, mutants, sequence, 1)
}

/// [`execute_mutants`] sharded across `jobs` worker threads (`0` = one
/// per available CPU).
///
/// The reference transcript is computed once and shared read-only by
/// every worker; mutants are pulled off an atomic counter for load
/// balancing (mutant cost varies with how early the kill lands) and
/// `first_kill` is merged back **by mutant index**, so the result is
/// bit-identical to the serial loop for every thread count. On error
/// the lowest-index failure is reported, exactly as the serial loop
/// would.
///
/// The work queue itself is `try_shard`, shared with the lane
/// engine's group sharding. It mirrors
/// `musa_core::parallel::try_par_map` (same work-queue,
/// deposit-by-index and lowest-index-error contract), re-implemented
/// here because `musa_core` sits *above* this crate in the dependency
/// graph — keep the two in sync.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant application (a mutant that
/// does not belong to this design).
pub fn execute_mutants_jobs(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
    jobs: usize,
) -> Result<KillResult, MutationError> {
    let reference = reference_transcript(checked, entity, sequence)?;
    let first_kill = try_shard(jobs, mutants.len(), |i| {
        run_one(checked, entity, &mutants[i], sequence, &reference)
    })?;
    Ok(KillResult { first_kill })
}

/// Runs `count` independent work items across `jobs` worker threads
/// (`0` = one per CPU; `<= 1` runs serially in index order), pulling
/// items off an atomic counter for load balancing and depositing
/// results **by index**. The merged output — including which error is
/// reported when several items fail (the lowest-index one) — is
/// therefore identical for every thread count. Shared by the scalar
/// mutant loop and the lane engine's group sharding.
pub(crate) fn try_shard<T: Send>(
    jobs: usize,
    count: usize,
    run: impl Fn(usize) -> Result<T, MutationError> + Sync,
) -> Result<Vec<T>, MutationError> {
    let jobs = resolve_jobs(jobs).min(count.max(1));
    // Trace fork point: item-indexed child contexts, captured serially
    // so the recorded structure is job-count-invariant (see
    // `musa_core::parallel::try_par_map` — keep the two in sync).
    let fork = musa_trace::ForkScope::capture();
    if jobs <= 1 {
        return (0..count)
            .map(|i| {
                let _trace = fork.enter(i);
                run(i)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, MutationError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = {
                    let _trace = fork.enter(i);
                    run(i)
                };
                *slots[i].lock().expect("worker deposits its own slot") = Some(result);
            });
        }
    });
    let mut merged = Vec::with_capacity(count);
    for slot in slots {
        match slot.into_inner().expect("scope joined all workers") {
            Some(Ok(value)) => merged.push(value),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every slot is filled before the scope exits"),
        }
    }
    Ok(merged)
}

/// [`execute_mutants_jobs`] with a selectable [`Engine`]. The outcome
/// is bit-identical across engines; `jobs` shards mutants (scalar) or
/// whole lane groups (lanes) across worker threads.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant application (a mutant that
/// does not belong to this design), lowest mutant index first.
pub fn execute_mutants_engine(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
    jobs: usize,
    engine: Engine,
) -> Result<KillResult, MutationError> {
    execute_mutants_engine_opt(checked, entity, mutants, sequence, jobs, engine, OptLevel::Full)
}

/// [`execute_mutants_engine`] with an explicit lane-tape [`OptLevel`].
/// Bit-identical across opt levels (and engines — the scalar engine has
/// no tapes to optimize and ignores the knob).
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant application (a mutant that
/// does not belong to this design), lowest mutant index first.
pub fn execute_mutants_engine_opt(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
    jobs: usize,
    engine: Engine,
    opt: OptLevel,
) -> Result<KillResult, MutationError> {
    match engine {
        Engine::Scalar => execute_mutants_jobs(checked, entity, mutants, sequence, jobs),
        Engine::Lanes => crate::lanes::execute_mutants_lanes_opts(
            checked,
            entity,
            mutants,
            sequence,
            &crate::lanes::LaneOptions::default().with_jobs(jobs).with_opt(opt),
        )
        .map(|(kills, _)| kills),
    }
}

/// `0` means one worker per available CPU; anything else is literal.
pub(crate) fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Executes a single mutant; returns the first killing vector index.
///
/// # Errors
///
/// Propagates [`MutationError`] from mutant application.
pub fn run_one(
    checked: &CheckedDesign,
    entity: &str,
    mutant: &Mutant,
    sequence: &[Vec<Bits>],
    reference: &[Vec<Bits>],
) -> Result<Option<usize>, MutationError> {
    let mutated = mutant.apply(checked)?;
    let mut sim = Simulator::new(&mutated, entity)
        .map_err(|_| MutationError::EntityNotFound(entity.to_string()))?;
    sim.reset();
    for (t, vector) in sequence.iter().enumerate() {
        let outs = sim.step(vector);
        if outs != reference[t] {
            return Ok(Some(t));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mutants, GenerateOptions};
    use crate::operator::MutationOperator;
    use musa_hdl::parse;

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    fn bit(v: u64) -> Bits {
        Bits::new(1, v)
    }

    const GATE: &str = "
        entity g is
          port(a : in bit; b : in bit; y : out bit);
        comb begin
          y <= a and b;
        end;
        end;
    ";

    #[test]
    fn exhaustive_vectors_kill_all_and_gate_lor_mutants() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        assert_eq!(mutants.len(), 5);
        let sequence: TestSequence = (0..4u64)
            .map(|p| vec![bit(p & 1), bit((p >> 1) & 1)])
            .collect();
        let result = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        // and→{or,xor,nand,nor,xnor} all differ from AND somewhere.
        assert_eq!(result.killed_count(), 5);
        assert!(result.alive().is_empty());
    }

    #[test]
    fn insufficient_vectors_leave_survivors() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        // a=0,b=0: AND=0, OR=0, XOR=0 — only NAND/NOR/XNOR (value 1) die.
        let sequence: TestSequence = vec![vec![bit(0), bit(0)]];
        let result = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        assert_eq!(result.killed_count(), 3);
        assert_eq!(result.alive().len(), 2);
    }

    #[test]
    fn first_kill_is_earliest_cycle() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        // or-mutant (index 0) first differs at a=1,b=0 (cycle 2 here).
        let sequence: TestSequence = vec![
            vec![bit(0), bit(0)],
            vec![bit(1), bit(1)],
            vec![bit(1), bit(0)],
        ];
        let result = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        let or_idx = mutants
            .iter()
            .position(|m| m.description.contains("-> or"))
            .unwrap();
        assert_eq!(result.first_kill[or_idx], Some(2));
    }

    #[test]
    fn sequential_mutants_respect_state_history() {
        let src = "
            entity t is
              port(clk : in bit; en : in bit; q : out bit);
            signal r : bit;
            seq(clk) begin
              if en = 1 then r <= not r; end if;
            end;
            comb begin q <= r; end;
            end;
        ";
        let d = checked(src);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::only(MutationOperator::Csr));
        assert_eq!(mutants.len(), 2); // en stuck 0 / stuck 1
        // Toggle twice: the stuck-0 mutant freezes q at 0 (differs at
        // t=1); stuck-1 behaves identically while en=1.
        let sequence: TestSequence = vec![vec![bit(1)], vec![bit(1)], vec![bit(1)]];
        let result = execute_mutants(&d, "t", &mutants, &sequence).unwrap();
        let stuck0 = mutants
            .iter()
            .position(|m| m.description.contains("stuck at 0"))
            .unwrap();
        let stuck1 = 1 - stuck0;
        assert_eq!(result.first_kill[stuck0], Some(1));
        assert_eq!(result.first_kill[stuck1], None, "stuck-1 identical when en held high");
    }

    #[test]
    fn sharded_execution_matches_serial_for_every_job_count() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        assert!(mutants.len() > 4, "need a population worth sharding");
        let sequence: TestSequence = (0..4u64)
            .map(|p| vec![bit(p & 1), bit((p >> 1) & 1)])
            .collect();
        let serial = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        for jobs in [0, 2, 3, 8, 64] {
            let sharded =
                execute_mutants_jobs(&d, "g", &mutants, &sequence, jobs).unwrap();
            assert_eq!(sharded.first_kill, serial.first_kill, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_knob_parses_and_dispatches_identically() {
        assert_eq!("scalar".parse::<Engine>().unwrap(), Engine::Scalar);
        assert_eq!("lanes".parse::<Engine>().unwrap(), Engine::Lanes);
        assert!("turbo".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Lanes);
        assert_eq!(Engine::Lanes.to_string(), "lanes");

        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let sequence: TestSequence = (0..4u64)
            .map(|p| vec![bit(p & 1), bit((p >> 1) & 1)])
            .collect();
        let scalar =
            execute_mutants_engine(&d, "g", &mutants, &sequence, 1, Engine::Scalar).unwrap();
        for jobs in [1, 4] {
            let lanes =
                execute_mutants_engine(&d, "g", &mutants, &sequence, jobs, Engine::Lanes)
                    .unwrap();
            assert_eq!(lanes.first_kill, scalar.first_kill, "jobs={jobs}");
        }
    }

    #[test]
    fn opt_knob_parses_and_dispatches_identically() {
        assert_eq!("full".parse::<OptLevel>().unwrap(), OptLevel::Full);
        assert_eq!("off".parse::<OptLevel>().unwrap(), OptLevel::Off);
        assert!("fast".parse::<OptLevel>().is_err());
        assert_eq!(OptLevel::default(), OptLevel::Full);
        assert_eq!(OptLevel::Off.to_string(), "off");

        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let sequence: TestSequence = (0..4u64)
            .map(|p| vec![bit(p & 1), bit((p >> 1) & 1)])
            .collect();
        let scalar =
            execute_mutants_engine(&d, "g", &mutants, &sequence, 1, Engine::Scalar).unwrap();
        for opt in [OptLevel::Full, OptLevel::Off] {
            let lanes = execute_mutants_engine_opt(
                &d, "g", &mutants, &sequence, 1, Engine::Lanes, opt,
            )
            .unwrap();
            assert_eq!(lanes.first_kill, scalar.first_kill, "opt={opt}");
        }
    }

    #[test]
    fn reference_transcript_errors_on_bad_entity() {
        let d = checked(GATE);
        assert!(reference_transcript(&d, "zz", &[]).is_err());
    }

    #[test]
    fn empty_sequence_kills_nothing() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let result = execute_mutants(&d, "g", &mutants, &[]).unwrap();
        assert_eq!(result.killed_count(), 0);
    }
}
