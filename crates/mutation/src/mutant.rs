//! Mutant representation and application.
//!
//! A [`Mutant`] is a small, syntactically valid rewrite of the original
//! design, addressed by the [`NodeId`] of the AST node it modifies.
//! Application clones the design and rewrites that node in place,
//! preserving all other node ids so that checker side-tables can be
//! rebuilt deterministically.

use crate::operator::MutationOperator;
use musa_hdl::ast::*;
use musa_hdl::{CheckedDesign, HdlError};
use std::fmt;

/// Identity of a mutant within one generated population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MutantId(pub u32);

impl fmt::Display for MutantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The concrete rewrite a mutant performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// Replace a binary operator (LOR/ROR/AOR).
    BinOp {
        /// The replacement operator.
        new: BinOp,
    },
    /// Replace a name reference with another name (VR).
    Ref {
        /// The replacement name.
        new: String,
    },
    /// Replace a name reference with a literal (CVR).
    RefToConst {
        /// The constant value.
        value: u64,
        /// The reference's width (the literal adopts it).
        width: u32,
    },
    /// Replace a literal's value (CR).
    Literal {
        /// The new value.
        value: u64,
    },
    /// Replace the value of a named constant declaration (CR).
    ConstDecl {
        /// The new value.
        value: u64,
    },
    /// Replace one choice of a case arm (CR).
    CaseChoice {
        /// Index into the arm's choice list.
        index: usize,
        /// The new choice value.
        value: u64,
    },
    /// Wrap an expression in `not` (UOI).
    InsertNot,
    /// Remove a `not` (UOD).
    DeleteNot,
    /// Replace an assignment with `null;` (SDL).
    DeleteStmt,
    /// Replace an `if` condition with a constant (CSR).
    StuckCondition {
        /// The forced truth value.
        value: bool,
    },
}

/// One mutant: an operator class, a target node and the rewrite payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutant {
    /// Stable identity within the generated population.
    pub id: MutantId,
    /// The operator class that produced this mutant.
    pub operator: MutationOperator,
    /// The AST node the rewrite targets.
    pub site: NodeId,
    /// The rewrite.
    pub rewrite: Rewrite,
    /// Human-readable description (`LOR: and -> or in `b01``).
    pub description: String,
}

/// Error applying a mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The target node does not exist in the design.
    SiteNotFound(NodeId),
    /// The rewrite does not fit the node it addresses.
    RewriteMismatch(NodeId),
    /// The mutated design failed semantic re-checking (stillborn mutant).
    Stillborn(HdlError),
    /// The design has no entity with the requested name.
    EntityNotFound(String),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::SiteNotFound(id) => write!(f, "mutation site {id} not found"),
            MutationError::RewriteMismatch(id) => {
                write!(f, "rewrite does not match node {id}")
            }
            MutationError::Stillborn(e) => write!(f, "mutant fails checking: {e}"),
            MutationError::EntityNotFound(name) => write!(f, "no entity named `{name}`"),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Stillborn(e) => Some(e),
            _ => None,
        }
    }
}

impl Mutant {
    /// Applies this mutant to (a clone of) the original design and
    /// re-checks it.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError::SiteNotFound`] / `RewriteMismatch` when
    /// the mutant does not address this design, and
    /// [`MutationError::Stillborn`] when the rewrite produces a design
    /// that no longer passes semantic checking (e.g. a `VR` that creates
    /// a combinational loop).
    pub fn apply(&self, original: &CheckedDesign) -> Result<CheckedDesign, MutationError> {
        let mut design = original.design().clone();
        apply_rewrite(&mut design, self.site, &self.rewrite)?;
        CheckedDesign::new(design).map_err(MutationError::Stillborn)
    }
}

/// Applies a rewrite to a design in place.
pub(crate) fn apply_rewrite(
    design: &mut Design,
    site: NodeId,
    rewrite: &Rewrite,
) -> Result<(), MutationError> {
    // Constant-declaration rewrites address declarations, not body nodes.
    if let Rewrite::ConstDecl { value } = rewrite {
        for entity in &mut design.entities {
            for cst in &mut entity.consts {
                if cst.id == site {
                    cst.value = *value;
                    return Ok(());
                }
            }
        }
        return Err(MutationError::SiteNotFound(site));
    }

    let fresh_base = design.next_node_id;
    let mut fresh_used = 0u32;
    let mut outcome: Option<Result<(), MutationError>> = None;

    for entity in &mut design.entities {
        for process in &mut entity.processes {
            rewrite_stmts(
                &mut process.body,
                site,
                rewrite,
                fresh_base,
                &mut fresh_used,
                &mut outcome,
            );
        }
    }
    design.next_node_id += fresh_used;
    outcome.unwrap_or(Err(MutationError::SiteNotFound(site)))
}

fn rewrite_stmts(
    stmts: &mut [Stmt],
    site: NodeId,
    rewrite: &Rewrite,
    fresh_base: u32,
    fresh_used: &mut u32,
    outcome: &mut Option<Result<(), MutationError>>,
) {
    for stmt in stmts.iter_mut() {
        if outcome.is_some() {
            return;
        }
        // Statement-level rewrite: SDL addresses the assignment itself.
        if stmt.id() == site {
            if let Rewrite::DeleteStmt = rewrite {
                if matches!(stmt, Stmt::Assign { .. }) {
                    *stmt = Stmt::Null { id: site };
                    *outcome = Some(Ok(()));
                } else {
                    *outcome = Some(Err(MutationError::RewriteMismatch(site)));
                }
                return;
            }
        }
        match stmt {
            Stmt::Assign { target, value, .. } => {
                if let Some(Select::Index(ix)) = &mut target.sel {
                    rewrite_expr(ix, site, rewrite, fresh_base, fresh_used, outcome);
                }
                rewrite_expr(value, site, rewrite, fresh_base, fresh_used, outcome);
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms.iter_mut() {
                    // CSR addresses the condition expression.
                    if cond.id() == site {
                        if let Rewrite::StuckCondition { value } = rewrite {
                            *cond = Expr::Literal {
                                id: cond.id(),
                                value: *value as u64,
                                width: Some(1),
                                span: musa_hdl::Span::dummy(),
                            };
                            *outcome = Some(Ok(()));
                            return;
                        }
                    }
                    rewrite_expr(cond, site, rewrite, fresh_base, fresh_used, outcome);
                    rewrite_stmts(body, site, rewrite, fresh_base, fresh_used, outcome);
                }
                if let Some(body) = else_body {
                    rewrite_stmts(body, site, rewrite, fresh_base, fresh_used, outcome);
                }
            }
            Stmt::Case {
                subject,
                arms,
                default,
                ..
            } => {
                rewrite_expr(subject, site, rewrite, fresh_base, fresh_used, outcome);
                for arm in arms.iter_mut() {
                    if arm.id == site {
                        if let Rewrite::CaseChoice { index, value } = rewrite {
                            if *index < arm.choices.len() {
                                arm.choices[*index] = *value;
                                *outcome = Some(Ok(()));
                            } else {
                                *outcome = Some(Err(MutationError::RewriteMismatch(site)));
                            }
                            return;
                        }
                    }
                    rewrite_stmts(&mut arm.body, site, rewrite, fresh_base, fresh_used, outcome);
                }
                if let Some(body) = default {
                    rewrite_stmts(body, site, rewrite, fresh_base, fresh_used, outcome);
                }
            }
            Stmt::For { body, .. } => {
                rewrite_stmts(body, site, rewrite, fresh_base, fresh_used, outcome);
            }
            Stmt::Null { .. } => {}
        }
    }
}

fn rewrite_expr(
    expr: &mut Expr,
    site: NodeId,
    rewrite: &Rewrite,
    fresh_base: u32,
    fresh_used: &mut u32,
    outcome: &mut Option<Result<(), MutationError>>,
) {
    if outcome.is_some() {
        return;
    }
    if expr.id() == site {
        let result = apply_expr_rewrite(expr, rewrite, fresh_base, fresh_used);
        *outcome = Some(result);
        return;
    }
    match expr {
        Expr::Literal { .. } | Expr::Ref { .. } => {}
        Expr::Index { base, index, .. } => {
            rewrite_expr(base, site, rewrite, fresh_base, fresh_used, outcome);
            rewrite_expr(index, site, rewrite, fresh_base, fresh_used, outcome);
        }
        Expr::Slice { base, .. } => {
            rewrite_expr(base, site, rewrite, fresh_base, fresh_used, outcome)
        }
        Expr::Unary { arg, .. } | Expr::Reduce { arg, .. } | Expr::Shift { arg, .. } => {
            rewrite_expr(arg, site, rewrite, fresh_base, fresh_used, outcome)
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Concat { lhs, rhs, .. } => {
            rewrite_expr(lhs, site, rewrite, fresh_base, fresh_used, outcome);
            rewrite_expr(rhs, site, rewrite, fresh_base, fresh_used, outcome);
        }
    }
}

fn apply_expr_rewrite(
    expr: &mut Expr,
    rewrite: &Rewrite,
    fresh_base: u32,
    fresh_used: &mut u32,
) -> Result<(), MutationError> {
    let site = expr.id();
    match rewrite {
        Rewrite::BinOp { new } => {
            if let Expr::Binary { op, .. } = expr {
                *op = *new;
                Ok(())
            } else {
                Err(MutationError::RewriteMismatch(site))
            }
        }
        Rewrite::Ref { new } => {
            if let Expr::Ref { name, .. } = expr {
                name.name = new.clone();
                name.span = musa_hdl::Span::dummy();
                Ok(())
            } else {
                Err(MutationError::RewriteMismatch(site))
            }
        }
        Rewrite::RefToConst { value, width } => {
            if matches!(expr, Expr::Ref { .. }) {
                *expr = Expr::Literal {
                    id: site,
                    value: *value,
                    width: Some(*width),
                    span: musa_hdl::Span::dummy(),
                };
                Ok(())
            } else {
                Err(MutationError::RewriteMismatch(site))
            }
        }
        Rewrite::Literal { value } => {
            if let Expr::Literal { value: slot, .. } = expr {
                *slot = *value;
                Ok(())
            } else {
                Err(MutationError::RewriteMismatch(site))
            }
        }
        Rewrite::InsertNot => {
            let inner = expr.clone();
            let fresh = NodeId(fresh_base + *fresh_used);
            *fresh_used += 1;
            *expr = Expr::Unary {
                id: fresh,
                op: UnaryOp::Not,
                arg: Box::new(inner),
            };
            Ok(())
        }
        Rewrite::DeleteNot => {
            if let Expr::Unary {
                op: UnaryOp::Not,
                arg,
                ..
            } = expr
            {
                *expr = (**arg).clone();
                Ok(())
            } else {
                Err(MutationError::RewriteMismatch(site))
            }
        }
        Rewrite::StuckCondition { .. } => {
            // Conditions are rewritten at the statement level; reaching an
            // arbitrary expression with CSR is a mismatch.
            Err(MutationError::RewriteMismatch(site))
        }
        Rewrite::ConstDecl { .. } | Rewrite::CaseChoice { .. } | Rewrite::DeleteStmt => {
            Err(MutationError::RewriteMismatch(site))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::parse;

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    const SRC: &str = "
        entity e is
          port(a : in bits(4); b : in bits(4); y : out bits(4); f : out bit);
        constant K : bits(4) := 5;
        comb begin
          if a = K then
            y <= a and b;
          else
            y <= a + b;
          end if;
          f <= not (a < b);
        end;
        end;
    ";

    fn find_binary_site(design: &Design, op: BinOp) -> NodeId {
        let mut found = None;
        for entity in &design.entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if let Expr::Binary { id, op: o, .. } = e {
                        if *o == op && found.is_none() {
                            found = Some(*id);
                        }
                    }
                });
            }
        }
        found.expect("site must exist")
    }

    #[test]
    fn binop_rewrite_applies() {
        let original = checked(SRC);
        let site = find_binary_site(original.design(), BinOp::And);
        let mutant = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Lor,
            site,
            rewrite: Rewrite::BinOp { new: BinOp::Or },
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        let printed = musa_hdl::pretty::print_design(mutated.design());
        assert!(printed.contains("a or b"), "{printed}");
        // Original untouched.
        let orig_printed = musa_hdl::pretty::print_design(original.design());
        assert!(orig_printed.contains("a and b"));
    }

    #[test]
    fn ref_rewrite_applies_and_rechecks() {
        let original = checked(SRC);
        // Find the `b` ref inside `a and b`.
        let mut site = None;
        for entity in &original.design().entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if let Expr::Binary { op: BinOp::And, rhs, .. } = e {
                        site = Some(rhs.id());
                    }
                });
            }
        }
        let mutant = Mutant {
            id: MutantId(1),
            operator: MutationOperator::Vr,
            site: site.unwrap(),
            rewrite: Rewrite::Ref { new: "a".into() },
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        let printed = musa_hdl::pretty::print_design(mutated.design());
        assert!(printed.contains("a and a"), "{printed}");
    }

    #[test]
    fn ref_to_unknown_name_is_stillborn() {
        let original = checked(SRC);
        let site = find_binary_site(original.design(), BinOp::And);
        // Grab the lhs ref of the AND.
        let mut ref_site = None;
        for entity in &original.design().entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if let Expr::Binary { op: BinOp::And, lhs, .. } = e {
                        ref_site = Some(lhs.id());
                    }
                });
            }
        }
        let _ = site;
        let mutant = Mutant {
            id: MutantId(2),
            operator: MutationOperator::Vr,
            site: ref_site.unwrap(),
            rewrite: Rewrite::Ref { new: "nosuch".into() },
            description: String::new(),
        };
        assert!(matches!(
            mutant.apply(&original),
            Err(MutationError::Stillborn(_))
        ));
    }

    #[test]
    fn stuck_condition_applies() {
        let original = checked(SRC);
        // Find the if condition (an Eq binary).
        let site = find_binary_site(original.design(), BinOp::Eq);
        let mutant = Mutant {
            id: MutantId(3),
            operator: MutationOperator::Csr,
            site,
            rewrite: Rewrite::StuckCondition { value: true },
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        let printed = musa_hdl::pretty::print_design(mutated.design());
        assert!(printed.contains("if 0b1 then"), "{printed}");
    }

    #[test]
    fn delete_stmt_applies_only_to_assignments_in_seq() {
        let src = "
            entity s is
              port(clk : in bit; d : in bit; q : out bit);
            signal r : bit;
            seq(clk) begin
              r <= d;
            end;
            comb begin q <= r; end;
            end;
        ";
        let original = checked(src);
        let site = original.design().entities[0].processes[0].body[0].id();
        let mutant = Mutant {
            id: MutantId(4),
            operator: MutationOperator::Sdl,
            site,
            rewrite: Rewrite::DeleteStmt,
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        let printed = musa_hdl::pretty::print_design(mutated.design());
        assert!(printed.contains("null;"), "{printed}");
    }

    #[test]
    fn delete_whole_comb_assignment_is_stillborn() {
        // Deleting the only assignment of a comb output violates
        // full-assignment and must be rejected at apply time.
        let original = checked(SRC);
        let site = original.design().entities[0].processes[0].body[1].id();
        let mutant = Mutant {
            id: MutantId(5),
            operator: MutationOperator::Sdl,
            site,
            rewrite: Rewrite::DeleteStmt,
            description: String::new(),
        };
        assert!(matches!(
            mutant.apply(&original),
            Err(MutationError::Stillborn(_))
        ));
    }

    #[test]
    fn insert_and_delete_not() {
        let original = checked(SRC);
        // f <= not (a < b): delete the not.
        let mut not_site = None;
        for entity in &original.design().entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if let Expr::Unary { id, .. } = e {
                        not_site = Some(*id);
                    }
                });
            }
        }
        let mutant = Mutant {
            id: MutantId(6),
            operator: MutationOperator::Uod,
            site: not_site.unwrap(),
            rewrite: Rewrite::DeleteNot,
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        let printed = musa_hdl::pretty::print_design(mutated.design());
        assert!(printed.contains("f <= a < b"), "{printed}");

        // Insert a not around the lt.
        let lt_site = find_binary_site(original.design(), BinOp::Lt);
        let mutant = Mutant {
            id: MutantId(7),
            operator: MutationOperator::Uoi,
            site: lt_site,
            rewrite: Rewrite::InsertNot,
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        // Node ids must remain unique after insertion.
        let reprinted = musa_hdl::pretty::print_design(mutated.design());
        assert!(reprinted.contains("not"), "{reprinted}");
    }

    #[test]
    fn const_decl_rewrite() {
        let original = checked(SRC);
        let site = original.design().entities[0].consts[0].id;
        let mutant = Mutant {
            id: MutantId(8),
            operator: MutationOperator::Cr,
            site,
            rewrite: Rewrite::ConstDecl { value: 6 },
            description: String::new(),
        };
        let mutated = mutant.apply(&original).unwrap();
        assert_eq!(mutated.design().entities[0].consts[0].value, 6);
    }

    #[test]
    fn missing_site_reported() {
        let original = checked(SRC);
        let mutant = Mutant {
            id: MutantId(9),
            operator: MutationOperator::Cr,
            site: NodeId(999_999),
            rewrite: Rewrite::Literal { value: 0 },
            description: String::new(),
        };
        assert!(matches!(
            mutant.apply(&original),
            Err(MutationError::SiteNotFound(_))
        ));
    }

    #[test]
    fn rewrite_mismatch_reported() {
        let original = checked(SRC);
        let site = find_binary_site(original.design(), BinOp::And);
        let mutant = Mutant {
            id: MutantId(10),
            operator: MutationOperator::Uod,
            site,
            rewrite: Rewrite::DeleteNot,
            description: String::new(),
        };
        assert!(matches!(
            mutant.apply(&original),
            Err(MutationError::RewriteMismatch(_))
        ));
    }
}
