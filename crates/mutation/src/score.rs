//! The Mutation Score.
//!
//! Paper §2: `MS(P, TS) = K / (M − E)` where `M` mutants were generated,
//! `K` were killed by the test set and `E` are equivalent.

use crate::equivalence::EquivalenceClass;
use crate::execute::KillResult;
use std::fmt;

/// A computed mutation score with its ingredients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationScore {
    /// Generated mutants (`M`).
    pub generated: usize,
    /// Killed mutants (`K`).
    pub killed: usize,
    /// Equivalent mutants (`E`), proven or presumed.
    pub equivalent: usize,
}

impl MutationScore {
    /// Combines kill results with an equivalence classification.
    ///
    /// Killed-but-classified-equivalent cannot happen when both come from
    /// the same population; a killed mutant observed here overrides a
    /// presumed-equivalent label (the kill is a constructive proof of
    /// non-equivalence).
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn from_results(kills: &KillResult, classes: &[EquivalenceClass]) -> Self {
        assert_eq!(
            kills.first_kill.len(),
            classes.len(),
            "kill results and equivalence classes must describe the same population"
        );
        let generated = classes.len();
        let killed = kills.killed_count();
        let equivalent = kills
            .first_kill
            .iter()
            .zip(classes)
            .filter(|(kill, class)| kill.is_none() && class.is_equivalent())
            .count();
        Self {
            generated,
            killed,
            equivalent,
        }
    }

    /// The score in `[0, 1]`: `K / (M − E)`.
    ///
    /// A population whose non-equivalent part is empty scores 1.0 (there
    /// was nothing to kill).
    pub fn value(&self) -> f64 {
        let denominator = self.generated.saturating_sub(self.equivalent);
        if denominator == 0 {
            1.0
        } else {
            self.killed as f64 / denominator as f64
        }
    }

    /// The score as a percentage, as the paper reports it.
    pub fn percent(&self) -> f64 {
        100.0 * self.value()
    }
}

impl fmt::Display for MutationScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MS = {:.2}% (K={} / (M={} - E={}))",
            self.percent(),
            self.killed,
            self.generated,
            self.equivalent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(first: Vec<Option<usize>>) -> KillResult {
        KillResult { first_kill: first }
    }

    #[test]
    fn paper_formula() {
        // M=10, E=2, K=6 → 6/8 = 75%.
        let kills = kill(vec![
            Some(0),
            Some(1),
            Some(0),
            Some(3),
            Some(2),
            Some(9),
            None,
            None,
            None,
            None,
        ]);
        let classes = vec![
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::Killable,
            EquivalenceClass::ProvenEquivalent,
            EquivalenceClass::PresumedEquivalent,
        ];
        let ms = MutationScore::from_results(&kills, &classes);
        assert_eq!(ms.generated, 10);
        assert_eq!(ms.killed, 6);
        assert_eq!(ms.equivalent, 2);
        assert!((ms.value() - 0.75).abs() < 1e-12);
        assert!((ms.percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn kill_overrides_presumed_equivalence() {
        // A mutant presumed equivalent by a small budget but killed by the
        // actual test set counts as killed, not equivalent.
        let kills = kill(vec![Some(5)]);
        let classes = vec![EquivalenceClass::PresumedEquivalent];
        let ms = MutationScore::from_results(&kills, &classes);
        assert_eq!(ms.killed, 1);
        assert_eq!(ms.equivalent, 0);
        assert!((ms.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_equivalent_scores_one() {
        let kills = kill(vec![None, None]);
        let classes = vec![
            EquivalenceClass::ProvenEquivalent,
            EquivalenceClass::ProvenEquivalent,
        ];
        let ms = MutationScore::from_results(&kills, &classes);
        assert_eq!(ms.value(), 1.0);
    }

    #[test]
    fn zero_kills_scores_zero() {
        let kills = kill(vec![None, None, None]);
        let classes = vec![EquivalenceClass::Killable; 3];
        let ms = MutationScore::from_results(&kills, &classes);
        assert_eq!(ms.value(), 0.0);
    }

    #[test]
    fn display_mentions_all_terms() {
        let kills = kill(vec![Some(0), None]);
        let classes = vec![EquivalenceClass::Killable, EquivalenceClass::Killable];
        let text = MutationScore::from_results(&kills, &classes).to_string();
        assert!(text.contains("K=1"));
        assert!(text.contains("M=2"));
        assert!(text.contains("E=0"));
    }

    #[test]
    #[should_panic(expected = "same population")]
    fn mismatched_lengths_panic() {
        let kills = kill(vec![None]);
        let _ = MutationScore::from_results(&kills, &[]);
    }
}
