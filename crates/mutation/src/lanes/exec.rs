//! The lane executor: SSA tapes lowered to an explicit-destination op
//! stream with superinstruction fusion.
//!
//! Final stage of the compile → optimize → execute pipeline (run at
//! `--opt full`; `--opt off` skips it and interprets the raw tapes).
//! Lowering turns a [`Tape`] into an [`ExecTape`] whose ops carry their
//! destination register and precomputed width masks; it additionally:
//!
//! * **pools constants** — `Const` broadcasts are materialized once per
//!   group simulation (they are loop-invariant across every sweep), so
//!   the per-step loop never touches them again;
//! * **fuses hot pairs** — profile data over the bundled benches shows
//!   the dominant adjacent pairs are `Bin`→`MaskSel` (every expression
//!   mutation folds its rewritten operator through a lane select),
//!   `Load`→`Bin` (fan-out-1 signal reads), `Not`→`Bin` (inverters
//!   feeding a single gate), `Bin`→`Bin` (fan-out-1 gate chains — the
//!   bulk of a gate-level netlist) and `Not`→`Reduce` (reduction of a
//!   complemented operand); each becomes one superinstruction when the
//!   producer has exactly one consumer and is not stored, saving a
//!   512-byte lane-word round trip per step.

use super::tape::{Instr, LaneVm, Reg, Tape, LANES};
use musa_hdl::ast::{BinOp, ReduceOp, ShiftOp};
use musa_hdl::Bits;
use std::collections::BTreeMap;

/// One lowered instruction. `m` fields are precomputed width masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ExecOp {
    /// Read a symbol's lanes from persistent state.
    Load { dst: Reg, sym: u32 },
    /// Broadcast a constant. Never emitted by [`lower_unit`] (pooling
    /// absorbs every `Const`); kept so lowering stays total over
    /// [`Instr`].
    Const { dst: Reg, value: u64 },
    /// Compile-time lane select (the mutation-site primitive).
    MaskSel { dst: Reg, mask: u64, a: Reg, b: Reg },
    /// Runtime per-lane select on a width-1 predicate.
    Sel { dst: Reg, cond: Reg, a: Reg, b: Reg },
    /// Bitwise complement under mask `m`.
    Not { dst: Reg, a: Reg, m: u64 },
    /// A binary operator, exactly as [`Bits`] computes it per lane.
    Bin { dst: Reg, op: BinOp, a: Reg, b: Reg, m: u64 },
    /// OR/AND/XOR reduction of an operand masked by `m`.
    Reduce { dst: Reg, op: ReduceOp, a: Reg, m: u64 },
    /// Constant-amount shift; `live == false` means the amount exceeds
    /// the width and the result is all-zero.
    Shift { dst: Reg, op: ShiftOp, a: Reg, amount: u32, live: bool, m: u64 },
    /// Constant slice: `(x >> lo) & m`.
    Slice { dst: Reg, a: Reg, lo: u32, m: u64 },
    /// Concatenation: `a` high, `b` the `rhs_width`-bit low part.
    Concat { dst: Reg, a: Reg, b: Reg, rhs_width: u32 },
    /// Dynamic single-bit read (out of range reads 0).
    DynGet { dst: Reg, base: Reg, index: Reg, width: u32 },
    /// Dynamic single-bit write (out of range writes are dropped).
    DynSet { dst: Reg, cur: Reg, index: Reg, bit: Reg, width: u32 },
    /// Constant-slice write: `field` is the positioned slice mask.
    WithSlice { dst: Reg, cur: Reg, v: Reg, lo: u32, field: u64 },
    /// Fused `Bin`+`MaskSel`: masked lanes take `op(a, b)`, the rest
    /// read `other`.
    BinMaskSel { dst: Reg, op: BinOp, a: Reg, b: Reg, m: u64, mask: u64, other: Reg },
    /// Fused `Bin`+`MaskSel` with the computed value on the
    /// fall-through arm: masked lanes read `other`.
    BinMaskSelLo { dst: Reg, op: BinOp, a: Reg, b: Reg, m: u64, mask: u64, other: Reg },
    /// Fused `Load`+`Bin`: `op(state[sym], b)`.
    LoadBin { dst: Reg, op: BinOp, sym: u32, b: Reg, m: u64 },
    /// Fused `Bin`+`Load`: `op(a, state[sym])`.
    BinLoad { dst: Reg, op: BinOp, a: Reg, sym: u32, m: u64 },
    /// Fused `Not`+`Reduce` (one masked complement, no intermediate).
    NotReduce { dst: Reg, op: ReduceOp, a: Reg, m: u64 },
    /// Fused `Not`+`Bin`: `op(!a & nm, b)` — an inverter feeding its
    /// only consumer's left operand.
    NotBin { dst: Reg, op: BinOp, a: Reg, nm: u64, b: Reg, m: u64 },
    /// Fused `Bin`+`Not`: `op(a, !b & nm)`.
    BinNot { dst: Reg, op: BinOp, a: Reg, b: Reg, nm: u64, m: u64 },
    /// Fused `Bin`+`Bin` with the inner pair on the left:
    /// `op(op1(a, b), c)` — a fan-out-1 gate feeding the next gate.
    BinBinL { dst: Reg, op1: BinOp, a: Reg, b: Reg, m1: u64, op: BinOp, c: Reg, m: u64 },
    /// Fused `Bin`+`Bin` with the inner pair on the right:
    /// `op(c, op1(a, b))`.
    BinBinR { dst: Reg, op1: BinOp, a: Reg, b: Reg, m1: u64, op: BinOp, c: Reg, m: u64 },
    /// Broadcast scalar register `src` into a lane word: the bridge
    /// from the scalar prefix into the lane stream. Emitted at the head
    /// of a lane tape, once per uniform value divergent ops consume.
    Splat { dst: Reg, src: Reg },
}

impl ExecOp {
    /// The destination register.
    pub(crate) fn dst(&self) -> Reg {
        match *self {
            ExecOp::Load { dst, .. }
            | ExecOp::Const { dst, .. }
            | ExecOp::MaskSel { dst, .. }
            | ExecOp::Sel { dst, .. }
            | ExecOp::Not { dst, .. }
            | ExecOp::Bin { dst, .. }
            | ExecOp::Reduce { dst, .. }
            | ExecOp::Shift { dst, .. }
            | ExecOp::Slice { dst, .. }
            | ExecOp::Concat { dst, .. }
            | ExecOp::DynGet { dst, .. }
            | ExecOp::DynSet { dst, .. }
            | ExecOp::WithSlice { dst, .. }
            | ExecOp::BinMaskSel { dst, .. }
            | ExecOp::BinMaskSelLo { dst, .. }
            | ExecOp::LoadBin { dst, .. }
            | ExecOp::BinLoad { dst, .. }
            | ExecOp::NotReduce { dst, .. }
            | ExecOp::NotBin { dst, .. }
            | ExecOp::BinNot { dst, .. }
            | ExecOp::BinBinL { dst, .. }
            | ExecOp::BinBinR { dst, .. }
            | ExecOp::Splat { dst, .. } => dst,
        }
    }
}

/// A lowered, executable tape.
#[derive(Debug, Default)]
pub(crate) struct ExecTape {
    /// Ops in evaluation order; destinations are strictly increasing.
    pub ops: Vec<ExecOp>,
    /// `(symbol, reg)` write-backs committed after the sweep.
    pub stores: Vec<(u32, Reg)>,
}

/// One sweep's executable form: the uniform scalar prefix plus the
/// lane-divergent stream.
///
/// Values no mutation site can influence — everything upstream of every
/// `MaskSel` in the group — are lane-identical by construction, so they
/// evaluate **once** on scalar `u64`s instead of 64-lane words. Only
/// the divergent remainder pays for lane words; `Splat` ops at the head
/// of `main` broadcast the scalar values the lane ops consume.
#[derive(Debug, Default)]
pub(crate) struct ExecUnit {
    /// Uniform ops, evaluated on the scalar register file.
    pub pre: ExecTape,
    /// Lane-divergent ops (and boundary `Splat`s).
    pub main: ExecTape,
}

/// The lowered unit: both tapes plus the shared constant pool.
#[derive(Debug)]
pub(crate) struct Lowered {
    pub comb: ExecUnit,
    pub edge: ExecUnit,
    /// Constant pool: register `j` holds `consts[j]`, seeded once per VM
    /// into both the lane and the scalar register files.
    pub consts: Vec<u64>,
    /// Lane scratch registers the VM needs (pool + widest lane stream).
    pub scratch: usize,
    /// Scalar scratch registers (pool + widest scalar prefix).
    pub scratch_scalar: usize,
    /// Total ops across all four streams (the post-pipeline instruction
    /// count [`super::LaneStats`] reports as `instrs_after`).
    pub ops_total: usize,
}

/// Per-instruction lane-divergence flags for a tape pair.
///
/// An instruction is *divergent* when its value can differ across
/// lanes: every `MaskSel` (the mutation site itself), anything reading
/// a divergent register, and any `Load` of a symbol that ever holds
/// divergent state. Symbol divergence is a fixpoint across both tapes
/// (a comb store feeding an edge load and back), seeded by initial
/// state whose lanes already differ. Everything else is *uniform* —
/// lane-identical on every sweep — and lowers to the scalar prefix.
fn divergence(comb: &Tape, edge: &Tape, init: &[super::tape::LaneWord]) -> (Vec<bool>, Vec<bool>) {
    let mut div_sym: Vec<bool> = init
        .iter()
        .map(|w| w.iter().any(|&v| v != w[0]))
        .collect();
    let mut dc = vec![false; comb.instrs.len()];
    let mut de = vec![false; edge.instrs.len()];
    loop {
        let mut changed = false;
        for (tape, flags) in [(comb, &mut dc), (edge, &mut de)] {
            for (i, instr) in tape.instrs.iter().enumerate() {
                if flags[i] {
                    continue;
                }
                let d = match *instr {
                    Instr::MaskSel { .. } => true,
                    Instr::Load { sym } => div_sym[sym as usize],
                    _ => {
                        let mut any = false;
                        let mut c = instr.clone();
                        super::opt::for_each_operand(&mut c, |r| any |= flags[*r as usize]);
                        any
                    }
                };
                if d {
                    flags[i] = true;
                    changed = true;
                }
            }
            for &(sym, reg) in &tape.stores {
                if flags[reg as usize] && !div_sym[sym as usize] {
                    div_sym[sym as usize] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (dc, de)
}

/// Lowers an optimized tape pair for execution. `init` seeds the
/// divergence analysis: symbols whose initial lanes already differ
/// (mutated power-on state) taint their loads.
pub(crate) fn lower_unit(comb: &Tape, edge: &Tape, init: &[super::tape::LaneWord]) -> Lowered {
    // Shared pool over both tapes, ordered by first appearance.
    let mut pool: BTreeMap<u64, Reg> = BTreeMap::new();
    let mut consts = Vec::new();
    for tape in [comb, edge] {
        for instr in &tape.instrs {
            if let Instr::Const { value } = *instr {
                pool.entry(value).or_insert_with(|| {
                    consts.push(value);
                    (consts.len() - 1) as Reg
                });
            }
        }
    }
    let first = consts.len() as Reg;
    let (dc, de) = divergence(comb, edge, init);
    let (comb, fused_c) = lower_fused(comb, &pool, first, &dc);
    let (edge, fused_e) = lower_fused(edge, &pool, first, &de);
    let fused = fused_c + fused_e;
    if fused > 0 {
        musa_trace::count("lane_fused_ops", fused as u64);
    }
    let scalar = comb.pre.ops.len() + edge.pre.ops.len();
    if scalar > 0 {
        musa_trace::count("lane_scalar_ops", scalar as u64);
    }
    let widest = |t: &ExecTape| t.ops.last().map(|op| op.dst() + 1);
    let lane_w = widest(&comb.main).max(widest(&edge.main)).unwrap_or(first);
    let scalar_w = widest(&comb.pre).max(widest(&edge.pre)).unwrap_or(first);
    let ops_total =
        comb.pre.ops.len() + comb.main.ops.len() + edge.pre.ops.len() + edge.main.ops.len();
    Lowered {
        comb,
        edge,
        consts,
        scratch: lane_w.max(first) as usize,
        scratch_scalar: scalar_w.max(first) as usize,
        ops_total,
    }
}

/// Lowers one instruction without fusion, mapping operands through `res`.
fn plain_op(instr: &Instr, dst: Reg, res: impl Fn(Reg) -> Reg) -> ExecOp {
    match *instr {
        Instr::Load { sym } => ExecOp::Load { dst, sym },
        Instr::Const { value } => ExecOp::Const { dst, value },
        Instr::MaskSel { mask, a, b } => ExecOp::MaskSel { dst, mask, a: res(a), b: res(b) },
        Instr::Sel { cond, a, b } => {
            ExecOp::Sel { dst, cond: res(cond), a: res(a), b: res(b) }
        }
        Instr::Not { a, width } => ExecOp::Not { dst, a: res(a), m: Bits::mask_of(width) },
        Instr::Bin { op, a, b, width } => {
            ExecOp::Bin { dst, op, a: res(a), b: res(b), m: Bits::mask_of(width) }
        }
        Instr::Reduce { op, a, width } => {
            ExecOp::Reduce { dst, op, a: res(a), m: Bits::mask_of(width) }
        }
        Instr::Shift { op, a, amount, width } => ExecOp::Shift {
            dst,
            op,
            a: res(a),
            amount,
            live: amount < width,
            m: Bits::mask_of(width),
        },
        Instr::Slice { a, hi, lo } => {
            ExecOp::Slice { dst, a: res(a), lo, m: Bits::mask_of(hi - lo + 1) }
        }
        Instr::Concat { a, b, rhs_width } => {
            ExecOp::Concat { dst, a: res(a), b: res(b), rhs_width }
        }
        Instr::DynGet { base, index, width } => {
            ExecOp::DynGet { dst, base: res(base), index: res(index), width }
        }
        Instr::DynSet { cur, index, bit, width } => ExecOp::DynSet {
            dst,
            cur: res(cur),
            index: res(index),
            bit: res(bit),
            width,
        },
        Instr::WithSlice { cur, v, hi, lo } => ExecOp::WithSlice {
            dst,
            cur: res(cur),
            v: res(v),
            lo,
            field: Bits::mask_of(hi - lo + 1) << lo,
        },
    }
}

/// Full lowering: constants resolve into the pool, uniform ops drop to
/// the scalar prefix, fusible producer → consumer pairs in the lane
/// stream collapse into superinstructions, and surviving ops get dense
/// destinations starting at `first` in their respective register file.
/// Returns the fused-pair count.
fn lower_fused(tape: &Tape, pool: &BTreeMap<u64, Reg>, first: Reg, div: &[bool]) -> (ExecUnit, usize) {
    let n = tape.instrs.len();
    // Use counts decide fusibility: a producer folds into its consumer
    // only when that consumer is its *only* reader and it is not stored.
    let mut uses = vec![0u32; n];
    for instr in &tape.instrs {
        let mut counted = instr.clone();
        super::opt::for_each_operand(&mut counted, |r| uses[*r as usize] += 1);
    }
    let mut stored = vec![false; n];
    for &(_, reg) in &tape.stores {
        stored[reg as usize] = true;
    }
    // Fusion concerns the lane stream only: a uniform producer stays a
    // scalar op and reaches its lane consumers through one Splat.
    let fusible = |r: Reg| uses[r as usize] == 1 && !stored[r as usize] && div[r as usize];

    // Plan fusions. `taken[p]` marks producer `p` as embedded in its
    // consumer. Select/reduce fusions are planned first: a Bin claimed
    // by a MaskSel cannot also claim its own Load operand (it is not
    // emitted), while an unclaimed Bin may.
    let mut taken = vec![false; n];
    let mut plan: Vec<Option<Reg>> = vec![None; n];
    for (i, instr) in tape.instrs.iter().enumerate() {
        match *instr {
            Instr::MaskSel { a, b, .. } => {
                if fusible(a) && matches!(tape.instrs[a as usize], Instr::Bin { .. }) {
                    taken[a as usize] = true;
                    plan[i] = Some(a);
                } else if fusible(b) && matches!(tape.instrs[b as usize], Instr::Bin { .. }) {
                    taken[b as usize] = true;
                    plan[i] = Some(b);
                }
            }
            // The width guard: masks must agree for the fused complement.
            Instr::Reduce { a, width, .. }
                if fusible(a)
                    && matches!(tape.instrs[a as usize],
                        Instr::Not { width: w2, .. } if w2 == width) =>
            {
                taken[a as usize] = true;
                plan[i] = Some(a);
            }
            _ => {}
        }
    }
    // Second wave: a Bin that claimed nothing yet embeds a fan-out-1
    // `Bin` operand — the gate-chain shape of a netlist. The producer
    // must not have embedded a producer of its own: a fused op lowers
    // exactly one level, so nested plans are excluded. `Bin` embedding
    // stays fan-out-1 only: a fused inner pair reads one extra operand,
    // so duplicating it into several consumers would add traffic.
    for i in 0..tape.instrs.len() {
        if taken[i] || plan[i].is_some() {
            continue;
        }
        let Instr::Bin { a, b, .. } = tape.instrs[i] else { continue };
        let inner_ok = |r: Reg| {
            fusible(r)
                && !taken[r as usize]
                && plan[r as usize].is_none()
                && matches!(tape.instrs[r as usize], Instr::Bin { .. })
        };
        if inner_ok(a) {
            taken[a as usize] = true;
            plan[i] = Some(a);
        } else if b != a && inner_ok(b) {
            taken[b as usize] = true;
            plan[i] = Some(b);
        }
    }
    // Third wave: fold `Load` and `Not` producers into every remaining
    // Bin consumer — *any* fan-out, not just 1. Re-reading state or
    // recomputing a masked complement inside the consumer costs the
    // same lane-word traffic as reading the producer's register, so a
    // fold is never a loss, and the producer op disappears entirely
    // once every one of its readers folds it.
    let mut folded = vec![0u32; n];
    let mut fold_side: Vec<Option<Reg>> = vec![None; n];
    for i in 0..tape.instrs.len() {
        if taken[i] || plan[i].is_some() || !div[i] {
            continue;
        }
        let Instr::Bin { a, b, .. } = tape.instrs[i] else { continue };
        let can_fold = |r: Reg| {
            div[r as usize]
                && !stored[r as usize]
                && !taken[r as usize]
                && plan[r as usize].is_none()
                && matches!(
                    tape.instrs[r as usize],
                    Instr::Load { .. } | Instr::Not { .. }
                )
        };
        let (fa, fb) = (can_fold(a), b != a && can_fold(b));
        let pick = match (fa, fb) {
            // Prefer the side whose producer can vanish (its only use).
            (true, true) if uses[b as usize] == 1 && uses[a as usize] != 1 => b,
            (true, _) => a,
            (false, true) => b,
            (false, false) => continue,
        };
        folded[pick as usize] += 1;
        fold_side[i] = Some(pick);
    }

    // Emit, in three passes. `map_s[i]`/`map_l[i]` are instruction i's
    // scalar / lane register; pooled constants keep their pool slot in
    // both files, embedded producers never need one.
    let mut map_s: Vec<Option<Reg>> = vec![None; n];
    let mut map_l: Vec<Option<Reg>> = vec![None; n];
    for (i, instr) in tape.instrs.iter().enumerate() {
        if let Instr::Const { value } = *instr {
            let r = pool[&value];
            map_s[i] = Some(r);
            map_l[i] = Some(r);
        }
    }

    // Pass 1: the scalar prefix — every uniform op, lowered plainly
    // (scalar ops are cheap enough that fusion would buy nothing).
    let mut pre_ops = Vec::new();
    let mut next_s = first;
    for (i, instr) in tape.instrs.iter().enumerate() {
        if div[i] || matches!(instr, Instr::Const { .. }) {
            continue;
        }
        let res = |r: Reg| map_s[r as usize].expect("uniform operand lowered before use");
        pre_ops.push(plain_op(instr, next_s, res));
        map_s[i] = Some(next_s);
        next_s += 1;
    }

    // Pass 2: find the uniform values the lane stream actually reads —
    // each needs one Splat at the head of the lane stream. The reads of
    // an emitted lane op are its own operands, with a planned/folded
    // producer expanded to *that* producer's operands (the fused op
    // re-derives the producer inline).
    let mut needs_splat = vec![false; n];
    for (i, instr) in tape.instrs.iter().enumerate() {
        if !div[i] || taken[i] {
            continue;
        }
        let p = plan[i].or(fold_side[i]);
        let mut c = instr.clone();
        super::opt::for_each_operand(&mut c, |r| {
            let mut mark = |r: Reg| {
                if !div[r as usize] && map_l[r as usize].is_none() {
                    needs_splat[r as usize] = true;
                }
            };
            if Some(*r) == p {
                let mut pc = tape.instrs[*r as usize].clone();
                super::opt::for_each_operand(&mut pc, |pr| mark(*pr));
            } else {
                mark(*r);
            }
        });
    }
    let mut ops = Vec::with_capacity(n);
    let mut next = first;
    for (i, splat) in needs_splat.iter().enumerate() {
        if *splat {
            let src = map_s[i].expect("splat source is a lowered uniform op");
            ops.push(ExecOp::Splat { dst: next, src });
            map_l[i] = Some(next);
            next += 1;
        }
    }

    // Pass 3: the divergent lane stream.
    let mut fused = 0;
    for (i, instr) in tape.instrs.iter().enumerate() {
        if !div[i] || taken[i] {
            continue;
        }
        // A Load/Not every reader folded has no consumers left: the
        // fused ops re-derive its value, so it never materializes.
        if matches!(instr, Instr::Load { .. } | Instr::Not { .. })
            && !stored[i]
            && uses[i] > 0
            && folded[i] == uses[i]
        {
            continue;
        }
        let res = |r: Reg| map_l[r as usize].expect("SSA operand lowered before use");
        let dst = next;
        let op = match (instr, plan[i].or(fold_side[i])) {
            (&Instr::MaskSel { mask, a, b }, Some(p)) => {
                fused += 1;
                let Instr::Bin { op, a: ba, b: bb, width } = tape.instrs[p as usize] else {
                    unreachable!("planned MaskSel producer is a Bin");
                };
                let (ba, bb, m) = (res(ba), res(bb), Bits::mask_of(width));
                if p == a {
                    ExecOp::BinMaskSel { dst, op, a: ba, b: bb, m, mask, other: res(b) }
                } else {
                    ExecOp::BinMaskSelLo { dst, op, a: ba, b: bb, m, mask, other: res(a) }
                }
            }
            (&Instr::Reduce { op, width, .. }, Some(p)) => {
                fused += 1;
                let Instr::Not { a: inner, .. } = tape.instrs[p as usize] else {
                    unreachable!("planned Reduce producer is a Not");
                };
                ExecOp::NotReduce { dst, op, a: res(inner), m: Bits::mask_of(width) }
            }
            (&Instr::Bin { op, a, b, width }, Some(p)) => {
                fused += 1;
                let m = Bits::mask_of(width);
                match tape.instrs[p as usize] {
                    Instr::Load { sym } => {
                        if p == a {
                            ExecOp::LoadBin { dst, op, sym, b: res(b), m }
                        } else {
                            ExecOp::BinLoad { dst, op, a: res(a), sym, m }
                        }
                    }
                    Instr::Not { a: na, width: nw } => {
                        let nm = Bits::mask_of(nw);
                        if p == a {
                            ExecOp::NotBin { dst, op, a: res(na), nm, b: res(b), m }
                        } else {
                            ExecOp::BinNot { dst, op, a: res(a), b: res(na), nm, m }
                        }
                    }
                    Instr::Bin { op: op1, a: ia, b: ib, width: w1 } => {
                        let (ia, ib, m1) = (res(ia), res(ib), Bits::mask_of(w1));
                        if p == a {
                            ExecOp::BinBinL { dst, op1, a: ia, b: ib, m1, op, c: res(b), m }
                        } else {
                            ExecOp::BinBinR { dst, op1, a: ia, b: ib, m1, op, c: res(a), m }
                        }
                    }
                    _ => unreachable!("planned Bin producer is a Load, Not or Bin"),
                }
            }
            (instr, _) => plain_op(instr, dst, res),
        };
        ops.push(op);
        map_l[i] = Some(dst);
        next += 1;
    }

    // Stores split by the divergence of their source: uniform stores
    // commit from the scalar file (as a broadcast), divergent ones from
    // the lane file.
    let mut pre_stores = Vec::new();
    let mut stores = Vec::new();
    for &(sym, reg) in &tape.stores {
        if div[reg as usize] {
            stores.push((sym, map_l[reg as usize].expect("stored reg survives lowering")));
        } else {
            pre_stores.push((sym, map_s[reg as usize].expect("stored reg survives lowering")));
        }
    }
    (
        ExecUnit {
            pre: ExecTape { ops: pre_ops, stores: pre_stores },
            main: ExecTape { ops, stores },
        },
        fused,
    )
}

/// Per-lane binary-operator evaluation, identical to the scalar
/// [`Bits`] semantics (and to `LaneVm::run`).
#[inline(always)]
fn bin(op: BinOp, a: u64, b: u64, m: u64) -> u64 {
    match op {
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Nand => !(a & b) & m,
        BinOp::Nor => !(a | b) & m,
        BinOp::Xnor => !(a ^ b) & m,
        BinOp::Add => a.wrapping_add(b) & m,
        BinOp::Sub => a.wrapping_sub(b) & m,
        BinOp::Mul => a.wrapping_mul(b) & m,
        BinOp::Eq => u64::from(a == b),
        BinOp::Ne => u64::from(a != b),
        BinOp::Lt => u64::from(a < b),
        BinOp::Le => u64::from(a <= b),
        BinOp::Gt => u64::from(a > b),
        BinOp::Ge => u64::from(a >= b),
    }
}

#[inline(always)]
fn reduce(op: ReduceOp, x: u64, m: u64) -> u64 {
    match op {
        ReduceOp::Or => u64::from(x != 0),
        ReduceOp::And => u64::from(x == m),
        ReduceOp::Xor => u64::from(x.count_ones() % 2 == 1),
    }
}

/// Lanes evaluated per executor sweep column. A full 64-lane register
/// file for a realistic tape overflows L1 (~150 live registers × 512 B
/// ≈ 75 KB), so the executor sweeps the tape once per 16-lane column:
/// the touched cache lines shrink 4× and stay resident across ops.
/// Columns are disjoint lanes, so per-column store commits cannot be
/// observed across columns and results are bit-identical.
const TILE: usize = 32;

/// A `TILE`-lane view into a lane word, starting at lane `lo`.
#[inline(always)]
fn tile(w: &[u64; LANES], lo: usize) -> &[u64; TILE] {
    w[lo..lo + TILE].try_into().expect("tile within lane word")
}

impl LaneVm {
    /// Seeds the constant-pool registers in both files (once per group
    /// simulation — sweeps never overwrite them, their destinations
    /// start above the pool).
    pub(crate) fn seed_consts(&mut self, consts: &[u64]) {
        for (j, &value) in consts.iter().enumerate() {
            self.regs[j] = [value; LANES];
            self.sregs[j] = value;
        }
    }

    /// Evaluates the uniform scalar prefix: plain `u64` sweeps over the
    /// scalar register file (lane 0 of state is every lane of state for
    /// the symbols this stream touches), then broadcast write-backs.
    pub(crate) fn run_scalar(&mut self, tape: &ExecTape) {
        for op in &tape.ops {
            let s = &self.sregs;
            let v = match *op {
                ExecOp::Load { sym, .. } => self.state[sym as usize][0],
                ExecOp::Const { value, .. } => value,
                ExecOp::Sel { cond, a, b, .. } => {
                    if s[cond as usize] != 0 { s[a as usize] } else { s[b as usize] }
                }
                ExecOp::Not { a, m, .. } => !s[a as usize] & m,
                ExecOp::Bin { op, a, b, m, .. } => bin(op, s[a as usize], s[b as usize], m),
                ExecOp::Reduce { op, a, m, .. } => reduce(op, s[a as usize], m),
                ExecOp::Shift { op, a, amount, live, m, .. } => {
                    if !live {
                        0
                    } else {
                        match op {
                            ShiftOp::Left => (s[a as usize] << amount) & m,
                            ShiftOp::Right => s[a as usize] >> amount,
                        }
                    }
                }
                ExecOp::Slice { a, lo, m, .. } => (s[a as usize] >> lo) & m,
                ExecOp::Concat { a, b, rhs_width, .. } => {
                    (s[a as usize] << rhs_width) | s[b as usize]
                }
                ExecOp::DynGet { base, index, width, .. } => {
                    let ix = s[index as usize];
                    if ix < u64::from(width) { (s[base as usize] >> ix) & 1 } else { 0 }
                }
                ExecOp::DynSet { cur, index, bit, width, .. } => {
                    let (c, ix) = (s[cur as usize], s[index as usize]);
                    if ix < u64::from(width) {
                        (c & !(1 << ix)) | ((s[bit as usize] & 1) << ix)
                    } else {
                        c
                    }
                }
                ExecOp::WithSlice { cur, v, lo, field, .. } => {
                    (s[cur as usize] & !field) | (s[v as usize] << lo)
                }
                // MaskSel is divergent by definition and fused /
                // Splat ops are lane-stream-only: none reach here.
                _ => unreachable!("op never emitted in the scalar prefix"),
            };
            self.sregs[op.dst() as usize] = v;
        }
        for &(sym, reg) in &tape.stores {
            self.state[sym as usize] = [self.sregs[reg as usize]; LANES];
        }
    }

    /// Evaluates a lowered tape: one forward sweep per 16-lane column,
    /// writing each op's destination in place (no lane-word copy), then
    /// that column's write-backs.
    pub(crate) fn run_exec(&mut self, tape: &ExecTape) {
        for t in 0..LANES / TILE {
            self.run_exec_tile(tape, t * TILE);
        }
    }

    /// One column sweep over lanes `lo..lo + TILE`.
    fn run_exec_tile(&mut self, tape: &ExecTape, lo: usize) {
        for op in &tape.ops {
            // Destinations are strictly increasing and operands strictly
            // lower, so splitting the register file at `dst` gives the
            // output slot and the readable prefix without aliasing.
            let (regs, rest) = self.regs.split_at_mut(op.dst() as usize);
            let out: &mut [u64; TILE] =
                (&mut rest[0][lo..lo + TILE]).try_into().expect("tile within lane word");
            match *op {
                ExecOp::Load { sym, .. } => *out = *tile(&self.state[sym as usize], lo),
                ExecOp::Const { value, .. } => *out = [value; TILE],
                ExecOp::Splat { src, .. } => *out = [self.sregs[src as usize]; TILE],
                ExecOp::MaskSel { mask, a, b, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    // Branchless per-lane blend: the select vectorizes
                    // instead of branching on mask bits.
                    let mask = mask >> lo;
                    for l in 0..TILE {
                        let sel = 0u64.wrapping_sub((mask >> l) & 1);
                        out[l] = y[l] ^ ((x[l] ^ y[l]) & sel);
                    }
                }
                ExecOp::Sel { cond, a, b, .. } => {
                    let c = tile(&regs[cond as usize], lo);
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    for l in 0..TILE {
                        let sel = 0u64.wrapping_sub(u64::from(c[l] != 0));
                        out[l] = y[l] ^ ((x[l] ^ y[l]) & sel);
                    }
                }
                ExecOp::Not { a, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    for l in 0..TILE {
                        out[l] = !x[l] & m;
                    }
                }
                ExecOp::Bin { op, a, b, m, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    for l in 0..TILE {
                        out[l] = bin(op, x[l], y[l], m);
                    }
                }
                ExecOp::Reduce { op, a, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    for l in 0..TILE {
                        out[l] = reduce(op, x[l], m);
                    }
                }
                ExecOp::Shift { op, a, amount, live, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    if !live {
                        *out = [0u64; TILE];
                    } else {
                        for l in 0..TILE {
                            out[l] = match op {
                                ShiftOp::Left => (x[l] << amount) & m,
                                ShiftOp::Right => x[l] >> amount,
                            };
                        }
                    }
                }
                ExecOp::Slice { a: src, lo: shift, m, .. } => {
                    let x = tile(&regs[src as usize], lo);
                    for l in 0..TILE {
                        out[l] = (x[l] >> shift) & m;
                    }
                }
                ExecOp::Concat { a, b, rhs_width, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    for l in 0..TILE {
                        out[l] = (x[l] << rhs_width) | y[l];
                    }
                }
                ExecOp::DynGet { base, index, width, .. } => {
                    let (x, ix) = (tile(&regs[base as usize], lo), tile(&regs[index as usize], lo));
                    for l in 0..TILE {
                        out[l] = if ix[l] < u64::from(width) { (x[l] >> ix[l]) & 1 } else { 0 };
                    }
                }
                ExecOp::DynSet { cur, index, bit, width, .. } => {
                    let c = tile(&regs[cur as usize], lo);
                    let ix = tile(&regs[index as usize], lo);
                    let v = tile(&regs[bit as usize], lo);
                    for l in 0..TILE {
                        out[l] = if ix[l] < u64::from(width) {
                            (c[l] & !(1 << ix[l])) | ((v[l] & 1) << ix[l])
                        } else {
                            c[l]
                        };
                    }
                }
                ExecOp::WithSlice { cur, v, lo: shift, field, .. } => {
                    let (c, x) = (tile(&regs[cur as usize], lo), tile(&regs[v as usize], lo));
                    for l in 0..TILE {
                        out[l] = (c[l] & !field) | (x[l] << shift);
                    }
                }
                ExecOp::BinMaskSel { op, a, b, m, mask, other, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    let o = tile(&regs[other as usize], lo);
                    let mask = mask >> lo;
                    for l in 0..TILE {
                        let sel = 0u64.wrapping_sub((mask >> l) & 1);
                        let v = bin(op, x[l], y[l], m);
                        out[l] = o[l] ^ ((v ^ o[l]) & sel);
                    }
                }
                ExecOp::BinMaskSelLo { op, a, b, m, mask, other, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    let o = tile(&regs[other as usize], lo);
                    let mask = mask >> lo;
                    for l in 0..TILE {
                        let sel = 0u64.wrapping_sub((mask >> l) & 1);
                        let v = bin(op, x[l], y[l], m);
                        out[l] = v ^ ((o[l] ^ v) & sel);
                    }
                }
                ExecOp::LoadBin { op, sym, b, m, .. } => {
                    let x = tile(&self.state[sym as usize], lo);
                    let y = tile(&regs[b as usize], lo);
                    for l in 0..TILE {
                        out[l] = bin(op, x[l], y[l], m);
                    }
                }
                ExecOp::BinLoad { op, a, sym, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    let y = tile(&self.state[sym as usize], lo);
                    for l in 0..TILE {
                        out[l] = bin(op, x[l], y[l], m);
                    }
                }
                ExecOp::NotReduce { op, a, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    for l in 0..TILE {
                        out[l] = reduce(op, !x[l] & m, m);
                    }
                }
                ExecOp::NotBin { op, a, nm, b, m, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    for l in 0..TILE {
                        out[l] = bin(op, !x[l] & nm, y[l], m);
                    }
                }
                ExecOp::BinNot { op, a, b, nm, m, .. } => {
                    let (x, y) = (tile(&regs[a as usize], lo), tile(&regs[b as usize], lo));
                    for l in 0..TILE {
                        out[l] = bin(op, x[l], !y[l] & nm, m);
                    }
                }
                ExecOp::BinBinL { op1, a, b, m1, op, c, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    let y = tile(&regs[b as usize], lo);
                    let z = tile(&regs[c as usize], lo);
                    for l in 0..TILE {
                        out[l] = bin(op, bin(op1, x[l], y[l], m1), z[l], m);
                    }
                }
                ExecOp::BinBinR { op1, a, b, m1, op, c, m, .. } => {
                    let x = tile(&regs[a as usize], lo);
                    let y = tile(&regs[b as usize], lo);
                    let z = tile(&regs[c as usize], lo);
                    for l in 0..TILE {
                        out[l] = bin(op, z[l], bin(op1, x[l], y[l], m1), m);
                    }
                }
            }
        }
        // Commit this column's write-backs. Columns are disjoint lanes,
        // so the next column's Loads still read their own pre-sweep
        // lanes — semantics match the whole-word interpreter exactly.
        for &(sym, reg) in &tape.stores {
            self.state[sym as usize][lo..lo + TILE]
                .copy_from_slice(&self.regs[reg as usize][lo..lo + TILE]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::tape::LaneWord;

    /// Differential harness: the lowered tape must match the reference
    /// `Tape::run` interpreter on the same state.
    fn assert_lowering_matches(comb: Tape, init: &[LaneWord]) {
        let mut reference = LaneVm::new(init, comb.instrs.len(), 0);
        reference.run(&comb);
        let lowered = lower_unit(&comb, &Tape::default(), init);
        let mut vm = LaneVm::new(init, lowered.scratch, lowered.scratch_scalar);
        vm.seed_consts(&lowered.consts);
        vm.run_scalar(&lowered.comb.pre);
        vm.run_exec(&lowered.comb.main);
        assert_eq!(vm.state, reference.state);
    }

    fn ramp(seed: u64) -> LaneWord {
        let mut w = [0u64; LANES];
        let mut x = seed | 1;
        for lane in &mut w {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *lane = (x >> 16) & 0xff;
        }
        w
    }

    #[test]
    fn bin_masksel_pairs_fuse_and_match_the_interpreter() {
        // The expression-mutation shape: original Bin, mutated Bin,
        // MaskSel routing the mutant lane.
        let comb = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 8 },
                Instr::Bin { op: BinOp::Or, a: 0, b: 1, width: 8 },
                Instr::MaskSel { mask: 0b100, a: 3, b: 2 },
            ],
            stores: vec![(2, 4)],
        };
        let init = [ramp(1), ramp(2), [0; LANES]];
        let lowered = lower_unit(&comb, &Tape::default(), &init);
        // The mutated Bin fuses into the MaskSel; the original Bin is
        // claimed by the fall-through arm... it has one use too, so the
        // planner takes the `a` side first (the mutated op).
        assert!(
            lowered
                .comb
                .main
                .ops
                .iter()
                .any(|op| matches!(op, ExecOp::BinMaskSel { .. })),
            "{:?}",
            lowered.comb.main.ops
        );
        assert_lowering_matches(comb, &init);
    }

    #[test]
    fn load_bin_and_not_reduce_fuse() {
        let comb = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::Xor, a: 0, b: 1, width: 8 },
                Instr::Not { a: 2, width: 8 },
                Instr::Reduce { op: ReduceOp::And, a: 3, width: 8 },
            ],
            stores: vec![(2, 4)],
        };
        let init = [ramp(3), ramp(4), [0; LANES]];
        let lowered = lower_unit(&comb, &Tape::default(), &init);
        assert!(lowered.comb.main.ops.iter().any(|op| matches!(op, ExecOp::LoadBin { .. })));
        assert!(lowered.comb.main.ops.iter().any(|op| matches!(op, ExecOp::NotReduce { .. })));
        assert_lowering_matches(comb, &init);
    }

    #[test]
    fn multi_use_and_stored_producers_do_not_fuse() {
        // The Bin feeds the MaskSel *and* is stored: it must stay.
        let comb = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::Add, a: 0, b: 1, width: 8 },
                Instr::MaskSel { mask: 0b10, a: 2, b: 0 },
            ],
            stores: vec![(0, 2), (1, 3)],
        };
        let init = [ramp(5), ramp(6)];
        let lowered = lower_unit(&comb, &Tape::default(), &init);
        assert!(
            lowered.comb.main.ops.iter().all(|op| !matches!(
                op,
                ExecOp::BinMaskSel { .. } | ExecOp::BinMaskSelLo { .. }
            )),
            "{:?}",
            lowered.comb.main.ops
        );
        assert_lowering_matches(comb, &init);
    }

    #[test]
    fn constants_pool_across_both_tapes_at_full_opt() {
        let comb = Tape {
            instrs: vec![Instr::Const { value: 7 }, Instr::Not { a: 0, width: 4 }],
            stores: vec![(0, 1)],
        };
        let edge = Tape {
            instrs: vec![Instr::Const { value: 7 }, Instr::Const { value: 1 }],
            stores: vec![(1, 1)],
        };
        let lowered = lower_unit(&comb, &edge, &[[0; LANES]; 2]);
        assert_eq!(lowered.consts, vec![7, 1]);
        let all = lowered
            .comb
            .pre
            .ops
            .iter()
            .chain(&lowered.comb.main.ops)
            .chain(&lowered.edge.pre.ops)
            .chain(&lowered.edge.main.ops);
        assert!(
            all.clone().all(|op| !matches!(op, ExecOp::Const { .. })),
            "no Const op survives pooling"
        );
    }
}
