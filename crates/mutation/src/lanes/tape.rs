//! The lane tape: a flat SSA instruction stream over 64-lane words.
//!
//! Every value in the lane engine is a [`LaneWord`] — one `u64` per
//! lane, where lane 0 is the reference machine and lanes 1..=63 carry
//! mutants. An instruction's destination is its own index in the tape
//! (pure SSA), so evaluation is a single forward sweep with no register
//! allocation. Per-lane divergence introduced by mutants is expressed
//! with [`Instr::MaskSel`] (compile-time lane mask) and control-flow
//! divergence with [`Instr::Sel`] (runtime per-lane predicate); there is
//! no per-lane branching anywhere in the executor.

use musa_hdl::ast::{BinOp, ReduceOp, ShiftOp};
use musa_hdl::Bits;

/// Number of lanes per word array: the reference plus up to 63 mutants.
pub(crate) const LANES: usize = 64;

/// One simulator value across all lanes.
pub(crate) type LaneWord = [u64; LANES];

/// Index of an instruction's result (SSA: instruction `i` defines reg `i`).
pub(crate) type Reg = u32;

/// A lane-tape instruction. The destination register is implicit (the
/// instruction's index); `width` fields carry the result width so the
/// executor can uphold the [`Bits`] masking invariant on raw words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Instr {
    /// Read a symbol's current lanes from persistent state.
    Load { sym: u32 },
    /// Broadcast a constant (already masked) to every lane.
    Const { value: u64 },
    /// Compile-time lane select: lanes in `mask` take `a`, others `b`.
    /// This is the mutation-site primitive.
    MaskSel { mask: u64, a: Reg, b: Reg },
    /// Runtime per-lane select on a width-1 predicate.
    Sel { cond: Reg, a: Reg, b: Reg },
    /// Bitwise complement, masked to `width`.
    Not { a: Reg, width: u32 },
    /// A binary operator, exactly as [`Bits`] computes it per lane.
    Bin { op: BinOp, a: Reg, b: Reg, width: u32 },
    /// OR/AND/XOR reduction of an operand of width `width`.
    Reduce { op: ReduceOp, a: Reg, width: u32 },
    /// Constant-amount shift within `width`.
    Shift { op: ShiftOp, a: Reg, amount: u32, width: u32 },
    /// Constant slice `[hi:lo]`.
    Slice { a: Reg, hi: u32, lo: u32 },
    /// Concatenation: `a` is the high part, `b` the `rhs_width`-bit low.
    Concat { a: Reg, b: Reg, rhs_width: u32 },
    /// Dynamic single-bit read `base[index]` (out of range reads 0).
    DynGet { base: Reg, index: Reg, width: u32 },
    /// Dynamic single-bit write (out of range writes are dropped).
    DynSet { cur: Reg, index: Reg, bit: Reg, width: u32 },
    /// Constant-slice write `cur[hi:lo] <= v`.
    WithSlice { cur: Reg, v: Reg, hi: u32, lo: u32 },
}

/// A compiled tape: the instruction stream plus the write-back list
/// committing results to persistent symbol state after the sweep.
#[derive(Debug, Default)]
pub(crate) struct Tape {
    /// The SSA instruction stream.
    pub instrs: Vec<Instr>,
    /// `(symbol, reg)` pairs stored to state after the sweep; for the
    /// clock-edge tape this is the register commit (non-blocking).
    pub stores: Vec<(u32, Reg)>,
}

/// The lane virtual machine: persistent per-symbol lane state plus a
/// scratch register file sized to the longest tape.
#[derive(Debug)]
pub(crate) struct LaneVm {
    /// Per-symbol lanes, indexed by `SymbolId`.
    pub state: Vec<LaneWord>,
    /// Scratch registers; `super::exec` drives them for lowered tapes.
    pub(crate) regs: Vec<LaneWord>,
    /// Scalar scratch registers for the uniform prefix of lowered
    /// tapes; empty for interpreted (`--opt off`) tapes.
    pub(crate) sregs: Vec<u64>,
}

impl LaneVm {
    /// Creates a VM with the given initial symbol state and scratch
    /// sizes (lane words and scalar registers).
    pub fn new(init: &[LaneWord], scratch: usize, scratch_scalar: usize) -> Self {
        Self {
            state: init.to_vec(),
            regs: vec![[0u64; LANES]; scratch],
            sregs: vec![0u64; scratch_scalar],
        }
    }

    /// Resets the persistent state to `init` (the power-on lanes).
    pub fn reset(&mut self, init: &[LaneWord]) {
        self.state.copy_from_slice(init);
    }

    /// Evaluates a tape: one forward sweep, then the write-back commits.
    ///
    /// This is the *reference interpreter* — the executable definition
    /// of tape semantics, and the engine `--opt off` runs in
    /// production. `--opt full` sweeps go through the lowered
    /// `super::exec` path instead; the optimizer and executor test
    /// suites use this as their differential oracle.
    pub fn run(&mut self, tape: &Tape) {
        for (i, instr) in tape.instrs.iter().enumerate() {
            let mut out = [0u64; LANES];
            match *instr {
                Instr::Load { sym } => out = self.state[sym as usize],
                Instr::Const { value } => out = [value; LANES],
                Instr::MaskSel { mask, a, b } => {
                    let (x, y) = (&self.regs[a as usize], &self.regs[b as usize]);
                    for l in 0..LANES {
                        out[l] = if (mask >> l) & 1 == 1 { x[l] } else { y[l] };
                    }
                }
                Instr::Sel { cond, a, b } => {
                    let c = &self.regs[cond as usize];
                    let (x, y) = (&self.regs[a as usize], &self.regs[b as usize]);
                    for l in 0..LANES {
                        out[l] = if c[l] != 0 { x[l] } else { y[l] };
                    }
                }
                Instr::Not { a, width } => {
                    let m = Bits::mask_of(width);
                    let x = &self.regs[a as usize];
                    for l in 0..LANES {
                        out[l] = !x[l] & m;
                    }
                }
                Instr::Bin { op, a, b, width } => {
                    let m = Bits::mask_of(width);
                    let (x, y) = (&self.regs[a as usize], &self.regs[b as usize]);
                    for l in 0..LANES {
                        let (a, b) = (x[l], y[l]);
                        out[l] = match op {
                            BinOp::And => a & b,
                            BinOp::Or => a | b,
                            BinOp::Xor => a ^ b,
                            BinOp::Nand => !(a & b) & m,
                            BinOp::Nor => !(a | b) & m,
                            BinOp::Xnor => !(a ^ b) & m,
                            BinOp::Add => a.wrapping_add(b) & m,
                            BinOp::Sub => a.wrapping_sub(b) & m,
                            BinOp::Mul => a.wrapping_mul(b) & m,
                            BinOp::Eq => u64::from(a == b),
                            BinOp::Ne => u64::from(a != b),
                            BinOp::Lt => u64::from(a < b),
                            BinOp::Le => u64::from(a <= b),
                            BinOp::Gt => u64::from(a > b),
                            BinOp::Ge => u64::from(a >= b),
                        };
                    }
                }
                Instr::Reduce { op, a, width } => {
                    let m = Bits::mask_of(width);
                    let x = &self.regs[a as usize];
                    for l in 0..LANES {
                        out[l] = match op {
                            ReduceOp::Or => u64::from(x[l] != 0),
                            ReduceOp::And => u64::from(x[l] == m),
                            ReduceOp::Xor => u64::from(x[l].count_ones() % 2 == 1),
                        };
                    }
                }
                Instr::Shift { op, a, amount, width } => {
                    let m = Bits::mask_of(width);
                    let x = &self.regs[a as usize];
                    for l in 0..LANES {
                        out[l] = if amount >= width {
                            0
                        } else {
                            match op {
                                ShiftOp::Left => (x[l] << amount) & m,
                                ShiftOp::Right => x[l] >> amount,
                            }
                        };
                    }
                }
                Instr::Slice { a, hi, lo } => {
                    let m = Bits::mask_of(hi - lo + 1);
                    let x = &self.regs[a as usize];
                    for l in 0..LANES {
                        out[l] = (x[l] >> lo) & m;
                    }
                }
                Instr::Concat { a, b, rhs_width } => {
                    let (x, y) = (&self.regs[a as usize], &self.regs[b as usize]);
                    for l in 0..LANES {
                        out[l] = (x[l] << rhs_width) | y[l];
                    }
                }
                Instr::DynGet { base, index, width } => {
                    let (x, ix) = (&self.regs[base as usize], &self.regs[index as usize]);
                    for l in 0..LANES {
                        out[l] = if ix[l] < u64::from(width) {
                            (x[l] >> ix[l]) & 1
                        } else {
                            0
                        };
                    }
                }
                Instr::DynSet { cur, index, bit, width } => {
                    let c = &self.regs[cur as usize];
                    let ix = &self.regs[index as usize];
                    let v = &self.regs[bit as usize];
                    for l in 0..LANES {
                        out[l] = if ix[l] < u64::from(width) {
                            (c[l] & !(1 << ix[l])) | ((v[l] & 1) << ix[l])
                        } else {
                            c[l]
                        };
                    }
                }
                Instr::WithSlice { cur, v, hi, lo } => {
                    let field = Bits::mask_of(hi - lo + 1) << lo;
                    let (c, x) = (&self.regs[cur as usize], &self.regs[v as usize]);
                    for l in 0..LANES {
                        out[l] = (c[l] & !field) | (x[l] << lo);
                    }
                }
            }
            self.regs[i] = out;
        }
        for &(sym, reg) in &tape.stores {
            self.state[sym as usize] = self.regs[reg as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(instrs: Vec<Instr>, stores: Vec<(u32, Reg)>, init: &[LaneWord]) -> LaneVm {
        let tape = Tape { instrs, stores };
        let mut vm = LaneVm::new(init, tape.instrs.len(), 0);
        vm.run(&tape);
        vm
    }

    #[test]
    fn mask_sel_routes_lanes() {
        let vm = run_one(
            vec![
                Instr::Const { value: 1 },
                Instr::Const { value: 0 },
                Instr::MaskSel { mask: 0b1010, a: 0, b: 1 },
            ],
            vec![(0, 2)],
            &[[9u64; LANES]],
        );
        assert_eq!(vm.state[0][0], 0);
        assert_eq!(vm.state[0][1], 1);
        assert_eq!(vm.state[0][2], 0);
        assert_eq!(vm.state[0][3], 1);
        assert_eq!(vm.state[0][4], 0);
    }

    #[test]
    fn arithmetic_masks_to_width() {
        // 15 + 1 in 4 bits wraps to 0, per lane.
        let vm = run_one(
            vec![
                Instr::Const { value: 15 },
                Instr::Const { value: 1 },
                Instr::Bin { op: BinOp::Add, a: 0, b: 1, width: 4 },
            ],
            vec![(0, 2)],
            &[[0u64; LANES]],
        );
        assert!(vm.state[0].iter().all(|&v| v == 0));
    }

    #[test]
    fn dyn_ops_match_bits_semantics() {
        let mut base = [0u64; LANES];
        let mut index = [0u64; LANES];
        base[0] = 0b1010;
        index[0] = 1;
        base[1] = 0b1010;
        index[1] = 7; // out of range for width 4 -> 0
        let mut vm = LaneVm::new(&[base, index], 3, 0);
        vm.run(&Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::DynGet { base: 0, index: 1, width: 4 },
            ],
            stores: vec![(0, 2)],
        });
        assert_eq!(vm.state[0][0], 1);
        assert_eq!(vm.state[0][1], 0);
    }
}
