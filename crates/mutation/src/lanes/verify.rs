//! Structural verification of compiled lane tapes.
//!
//! [`verify_tape`] checks the invariants the [`super::tape::LaneVm`]
//! executor silently relies on — SSA operand-before-use, symbol indices
//! in range, well-formed slices, and mutation masks that never touch
//! the reference lane — and panics with a precise message when a
//! compile bug violates one. It runs after every group compile under
//! `debug_assertions` — on the raw tapes out of the compiler *and* on
//! the tapes the optimizer pipeline rewrote — so release sweeps pay
//! nothing. [`verify_exec`] applies the matching rules to the lowered
//! executor stream, including the fused superinstructions.

use super::exec::{ExecOp, ExecTape, ExecUnit};
use super::tape::{Instr, Reg, Tape};

/// Panics unless the tape upholds every structural invariant.
///
/// * the destination of instruction `i` is register `i` (pure SSA), so
///   every operand must reference a register `< i`;
/// * `Load`/store symbols must index into the `n_symbols`-entry state;
/// * slices must have `hi >= lo` (the executor computes `hi - lo + 1`);
/// * `MaskSel` masks must select at least one lane and never lane 0 —
///   lane 0 is the reference machine and no mutation may divert it.
pub(crate) fn verify_tape(tape: &Tape, n_symbols: usize) {
    let check_reg = |r: Reg, i: usize, role: &str| {
        assert!(
            (r as usize) < i,
            "tape instr {i} uses {role} register r{r} not defined before it"
        );
    };
    for (i, instr) in tape.instrs.iter().enumerate() {
        match *instr {
            Instr::Load { sym } => {
                assert!(
                    (sym as usize) < n_symbols,
                    "tape instr {i} loads symbol {sym} out of range (state has {n_symbols})"
                );
            }
            Instr::Const { .. } => {}
            Instr::MaskSel { mask, a, b } => {
                check_reg(a, i, "mask-sel a");
                check_reg(b, i, "mask-sel b");
                assert!(mask != 0, "tape instr {i} has an empty mutation mask");
                assert!(
                    mask & 1 == 0,
                    "tape instr {i} mutation mask selects reference lane 0"
                );
            }
            Instr::Sel { cond, a, b } => {
                check_reg(cond, i, "sel cond");
                check_reg(a, i, "sel a");
                check_reg(b, i, "sel b");
            }
            Instr::Not { a, .. } | Instr::Reduce { a, .. } | Instr::Shift { a, .. } => {
                check_reg(a, i, "unary");
            }
            Instr::Bin { a, b, .. } => {
                check_reg(a, i, "bin lhs");
                check_reg(b, i, "bin rhs");
            }
            Instr::Slice { a, hi, lo } => {
                check_reg(a, i, "slice");
                assert!(hi >= lo, "tape instr {i} slices [{hi}:{lo}] with hi < lo");
            }
            Instr::Concat { a, b, .. } => {
                check_reg(a, i, "concat high");
                check_reg(b, i, "concat low");
            }
            Instr::DynGet { base, index, .. } => {
                check_reg(base, i, "dyn-get base");
                check_reg(index, i, "dyn-get index");
            }
            Instr::DynSet {
                cur, index, bit, ..
            } => {
                check_reg(cur, i, "dyn-set cur");
                check_reg(index, i, "dyn-set index");
                check_reg(bit, i, "dyn-set bit");
            }
            Instr::WithSlice { cur, v, hi, lo } => {
                check_reg(cur, i, "with-slice cur");
                check_reg(v, i, "with-slice value");
                assert!(
                    hi >= lo,
                    "tape instr {i} writes slice [{hi}:{lo}] with hi < lo"
                );
            }
        }
    }
    for &(sym, reg) in &tape.stores {
        assert!(
            (sym as usize) < n_symbols,
            "tape stores to symbol {sym} out of range (state has {n_symbols})"
        );
        assert!(
            (reg as usize) < tape.instrs.len(),
            "tape stores from register r{reg} past the end of the stream"
        );
    }
}

/// Panics unless a lowered unit upholds the executor's invariants:
/// both streams pass [`verify_exec`], and the scalar prefix contains
/// no lane-only op (`MaskSel`, `Splat`, or a fused superinstruction —
/// uniform ops lower plainly and mask selects are divergent by
/// definition).
pub(crate) fn verify_unit(unit: &ExecUnit, n_symbols: usize, n_consts: usize, n_scalar: usize) {
    verify_exec(&unit.pre, n_symbols, n_consts, 0);
    for (i, op) in unit.pre.ops.iter().enumerate() {
        assert!(
            !matches!(
                op,
                ExecOp::MaskSel { .. }
                    | ExecOp::Splat { .. }
                    | ExecOp::BinMaskSel { .. }
                    | ExecOp::BinMaskSelLo { .. }
                    | ExecOp::LoadBin { .. }
                    | ExecOp::BinLoad { .. }
                    | ExecOp::NotReduce { .. }
                    | ExecOp::NotBin { .. }
                    | ExecOp::BinNot { .. }
                    | ExecOp::BinBinL { .. }
                    | ExecOp::BinBinR { .. }
            ),
            "scalar-prefix op {i} is lane-only: {op:?}"
        );
    }
    verify_exec(&unit.main, n_symbols, n_consts, n_scalar);
}

/// Panics unless a lowered tape upholds the executor's invariants.
///
/// * destinations are strictly increasing and never overwrite the
///   constant pool (`run_exec` splits the register file at `dst`, so
///   every operand must reference a strictly lower register);
/// * every operand is either a pool register or a prior destination;
/// * `Load`/`LoadBin`/`BinLoad` and store symbols index into state;
/// * `Splat` sources stay inside the `n_scalar`-register scalar file;
/// * every lane-select mask (plain or fused) selects at least one lane
///   and never the reference lane.
pub(crate) fn verify_exec(tape: &ExecTape, n_symbols: usize, n_consts: usize, n_scalar: usize) {
    let mut defined: Vec<bool> = vec![true; n_consts];
    let mut prev: Option<Reg> = None;
    for (i, op) in tape.ops.iter().enumerate() {
        let dst = op.dst();
        assert!(
            (dst as usize) >= n_consts,
            "exec op {i} writes r{dst} inside the {n_consts}-register constant pool"
        );
        if let Some(prev) = prev {
            assert!(dst > prev, "exec op {i} destination r{dst} not above r{prev}");
        }
        prev = Some(dst);
        let check_reg = |r: Reg, role: &str| {
            assert!(r < dst, "exec op {i} reads {role} r{r} at or above its dst r{dst}");
            assert!(
                defined.get(r as usize).copied().unwrap_or(false),
                "exec op {i} reads {role} r{r} that no prior op defines"
            );
        };
        let check_sym = |sym: u32, role: &str| {
            assert!(
                (sym as usize) < n_symbols,
                "exec op {i} {role} symbol {sym} out of range (state has {n_symbols})"
            );
        };
        let check_mask = |mask: u64| {
            assert!(mask != 0, "exec op {i} has an empty mutation mask");
            assert!(mask & 1 == 0, "exec op {i} mutation mask selects reference lane 0");
        };
        match *op {
            ExecOp::Load { sym, .. } => check_sym(sym, "loads"),
            ExecOp::Const { .. } => {}
            ExecOp::MaskSel { mask, a, b, .. } => {
                check_reg(a, "mask-sel a");
                check_reg(b, "mask-sel b");
                check_mask(mask);
            }
            ExecOp::Sel { cond, a, b, .. } => {
                check_reg(cond, "sel cond");
                check_reg(a, "sel a");
                check_reg(b, "sel b");
            }
            ExecOp::Not { a, .. }
            | ExecOp::Reduce { a, .. }
            | ExecOp::Shift { a, .. }
            | ExecOp::Slice { a, .. }
            | ExecOp::NotReduce { a, .. } => check_reg(a, "unary"),
            ExecOp::Bin { a, b, .. } | ExecOp::Concat { a, b, .. } => {
                check_reg(a, "lhs");
                check_reg(b, "rhs");
            }
            ExecOp::DynGet { base, index, .. } => {
                check_reg(base, "dyn-get base");
                check_reg(index, "dyn-get index");
            }
            ExecOp::DynSet { cur, index, bit, .. } => {
                check_reg(cur, "dyn-set cur");
                check_reg(index, "dyn-set index");
                check_reg(bit, "dyn-set bit");
            }
            ExecOp::WithSlice { cur, v, .. } => {
                check_reg(cur, "with-slice cur");
                check_reg(v, "with-slice value");
            }
            ExecOp::BinMaskSel { a, b, other, mask, .. }
            | ExecOp::BinMaskSelLo { a, b, other, mask, .. } => {
                check_reg(a, "fused bin lhs");
                check_reg(b, "fused bin rhs");
                check_reg(other, "fused sel arm");
                check_mask(mask);
            }
            ExecOp::LoadBin { sym, b, .. } => {
                check_sym(sym, "fused-loads");
                check_reg(b, "fused bin rhs");
            }
            ExecOp::BinLoad { a, sym, .. } => {
                check_reg(a, "fused bin lhs");
                check_sym(sym, "fused-loads");
            }
            ExecOp::NotBin { a, b, .. } | ExecOp::BinNot { a, b, .. } => {
                check_reg(a, "fused bin lhs");
                check_reg(b, "fused bin rhs");
            }
            ExecOp::BinBinL { a, b, c, .. } | ExecOp::BinBinR { a, b, c, .. } => {
                check_reg(a, "fused inner lhs");
                check_reg(b, "fused inner rhs");
                check_reg(c, "fused outer operand");
            }
            ExecOp::Splat { src, .. } => {
                assert!(
                    (src as usize) < n_scalar,
                    "exec op {i} splats scalar r{src} outside the {n_scalar}-register scalar file"
                );
            }
        }
        if defined.len() <= dst as usize {
            defined.resize(dst as usize + 1, false);
        }
        defined[dst as usize] = true;
    }
    for &(sym, reg) in &tape.stores {
        assert!(
            (sym as usize) < n_symbols,
            "exec tape stores to symbol {sym} out of range (state has {n_symbols})"
        );
        assert!(
            defined.get(reg as usize).copied().unwrap_or(false),
            "exec tape stores from undefined register r{reg}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::ast::BinOp;

    fn valid_tape() -> Tape {
        Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Const { value: 1 },
                Instr::Bin {
                    op: BinOp::Add,
                    a: 0,
                    b: 1,
                    width: 4,
                },
                Instr::MaskSel { mask: 0b10, a: 1, b: 2 },
            ],
            stores: vec![(0, 3)],
        }
    }

    #[test]
    fn valid_tape_passes() {
        verify_tape(&valid_tape(), 1);
    }

    #[test]
    #[should_panic(expected = "not defined before it")]
    fn forward_operand_reference_panics() {
        let mut tape = valid_tape();
        tape.instrs[2] = Instr::Bin {
            op: BinOp::Add,
            a: 0,
            b: 2, // self-reference: defined *at* index 2, not before
            width: 4,
        };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn load_of_unknown_symbol_panics() {
        let mut tape = valid_tape();
        tape.instrs[0] = Instr::Load { sym: 5 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "reference lane 0")]
    fn mask_touching_lane_zero_panics() {
        let mut tape = valid_tape();
        tape.instrs[3] = Instr::MaskSel { mask: 0b11, a: 1, b: 2 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "empty mutation mask")]
    fn empty_mask_panics() {
        let mut tape = valid_tape();
        tape.instrs[3] = Instr::MaskSel { mask: 0, a: 1, b: 2 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn store_from_missing_register_panics() {
        let mut tape = valid_tape();
        tape.stores = vec![(0, 9)];
        verify_tape(&tape, 1);
    }

    fn valid_exec() -> ExecTape {
        ExecTape {
            ops: vec![
                ExecOp::Load { dst: 1, sym: 0 },
                ExecOp::BinMaskSel { dst: 2, op: BinOp::Or, a: 0, b: 1, m: 0xf, mask: 0b10, other: 1 },
            ],
            stores: vec![(0, 2)],
        }
    }

    #[test]
    fn valid_exec_tape_passes() {
        // One pooled constant at r0, two emitted ops above it.
        verify_exec(&valid_exec(), 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "constant pool")]
    fn exec_dst_inside_the_pool_panics() {
        let mut tape = valid_exec();
        tape.ops[0] = ExecOp::Load { dst: 0, sym: 0 };
        verify_exec(&tape, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "no prior op defines")]
    fn fused_operand_of_undefined_register_panics() {
        let mut tape = valid_exec();
        // r1 is skipped: the fused op reads a hole in the register file.
        tape.ops.remove(0);
        verify_exec(&tape, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "reference lane 0")]
    fn fused_mask_touching_lane_zero_panics() {
        let mut tape = valid_exec();
        tape.ops[1] = ExecOp::BinMaskSel { dst: 2, op: BinOp::Or, a: 0, b: 1, m: 0xf, mask: 0b11, other: 1 };
        verify_exec(&tape, 1, 1, 0);
    }
}
