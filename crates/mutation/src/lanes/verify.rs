//! Structural verification of compiled lane tapes.
//!
//! [`verify_tape`] checks the invariants the [`super::tape::LaneVm`]
//! executor silently relies on — SSA operand-before-use, symbol indices
//! in range, well-formed slices, and mutation masks that never touch
//! the reference lane — and panics with a precise message when a
//! compile bug violates one. It runs after every group compile under
//! `debug_assertions`, so release sweeps pay nothing.

use super::tape::{Instr, Reg, Tape};

/// Panics unless the tape upholds every structural invariant.
///
/// * the destination of instruction `i` is register `i` (pure SSA), so
///   every operand must reference a register `< i`;
/// * `Load`/store symbols must index into the `n_symbols`-entry state;
/// * slices must have `hi >= lo` (the executor computes `hi - lo + 1`);
/// * `MaskSel` masks must select at least one lane and never lane 0 —
///   lane 0 is the reference machine and no mutation may divert it.
pub(crate) fn verify_tape(tape: &Tape, n_symbols: usize) {
    let check_reg = |r: Reg, i: usize, role: &str| {
        assert!(
            (r as usize) < i,
            "tape instr {i} uses {role} register r{r} not defined before it"
        );
    };
    for (i, instr) in tape.instrs.iter().enumerate() {
        match *instr {
            Instr::Load { sym } => {
                assert!(
                    (sym as usize) < n_symbols,
                    "tape instr {i} loads symbol {sym} out of range (state has {n_symbols})"
                );
            }
            Instr::Const { .. } => {}
            Instr::MaskSel { mask, a, b } => {
                check_reg(a, i, "mask-sel a");
                check_reg(b, i, "mask-sel b");
                assert!(mask != 0, "tape instr {i} has an empty mutation mask");
                assert!(
                    mask & 1 == 0,
                    "tape instr {i} mutation mask selects reference lane 0"
                );
            }
            Instr::Sel { cond, a, b } => {
                check_reg(cond, i, "sel cond");
                check_reg(a, i, "sel a");
                check_reg(b, i, "sel b");
            }
            Instr::Not { a, .. } | Instr::Reduce { a, .. } | Instr::Shift { a, .. } => {
                check_reg(a, i, "unary");
            }
            Instr::Bin { a, b, .. } => {
                check_reg(a, i, "bin lhs");
                check_reg(b, i, "bin rhs");
            }
            Instr::Slice { a, hi, lo } => {
                check_reg(a, i, "slice");
                assert!(hi >= lo, "tape instr {i} slices [{hi}:{lo}] with hi < lo");
            }
            Instr::Concat { a, b, .. } => {
                check_reg(a, i, "concat high");
                check_reg(b, i, "concat low");
            }
            Instr::DynGet { base, index, .. } => {
                check_reg(base, i, "dyn-get base");
                check_reg(index, i, "dyn-get index");
            }
            Instr::DynSet {
                cur, index, bit, ..
            } => {
                check_reg(cur, i, "dyn-set cur");
                check_reg(index, i, "dyn-set index");
                check_reg(bit, i, "dyn-set bit");
            }
            Instr::WithSlice { cur, v, hi, lo } => {
                check_reg(cur, i, "with-slice cur");
                check_reg(v, i, "with-slice value");
                assert!(
                    hi >= lo,
                    "tape instr {i} writes slice [{hi}:{lo}] with hi < lo"
                );
            }
        }
    }
    for &(sym, reg) in &tape.stores {
        assert!(
            (sym as usize) < n_symbols,
            "tape stores to symbol {sym} out of range (state has {n_symbols})"
        );
        assert!(
            (reg as usize) < tape.instrs.len(),
            "tape stores from register r{reg} past the end of the stream"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::ast::BinOp;

    fn valid_tape() -> Tape {
        Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Const { value: 1 },
                Instr::Bin {
                    op: BinOp::Add,
                    a: 0,
                    b: 1,
                    width: 4,
                },
                Instr::MaskSel { mask: 0b10, a: 1, b: 2 },
            ],
            stores: vec![(0, 3)],
        }
    }

    #[test]
    fn valid_tape_passes() {
        verify_tape(&valid_tape(), 1);
    }

    #[test]
    #[should_panic(expected = "not defined before it")]
    fn forward_operand_reference_panics() {
        let mut tape = valid_tape();
        tape.instrs[2] = Instr::Bin {
            op: BinOp::Add,
            a: 0,
            b: 2, // self-reference: defined *at* index 2, not before
            width: 4,
        };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn load_of_unknown_symbol_panics() {
        let mut tape = valid_tape();
        tape.instrs[0] = Instr::Load { sym: 5 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "reference lane 0")]
    fn mask_touching_lane_zero_panics() {
        let mut tape = valid_tape();
        tape.instrs[3] = Instr::MaskSel { mask: 0b11, a: 1, b: 2 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "empty mutation mask")]
    fn empty_mask_panics() {
        let mut tape = valid_tape();
        tape.instrs[3] = Instr::MaskSel { mask: 0, a: 1, b: 2 };
        verify_tape(&tape, 1);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn store_from_missing_register_panics() {
        let mut tape = valid_tape();
        tape.stores = vec![(0, 9)];
        verify_tape(&tape, 1);
    }
}
