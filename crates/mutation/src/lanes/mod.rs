//! Bit-parallel behavioral mutant lanes: up to 63 mutants + the
//! reference machine evaluated in **one** simulation pass.
//!
//! This is the behavioral-layer counterpart of `musa_netlist::fsim`'s
//! 63-faults-plus-good-machine word packing. The population is batched
//! into lane groups of at most 63 mutants of the same entity; each
//! group compiles the entity **once** into a flat instruction tape over
//! 64-lane words with every mutation site folded in as a mask-driven
//! lane select, then steps all lanes through reset
//! and the test sequence together. Per-lane first-kill cycles fall out
//! of XOR-ing each output lane against lane 0, so a population of `N`
//! mutants costs `⌈N/63⌉` simulation passes instead of `N` — and lane
//! groups shard across worker threads, so lanes compose multiplicatively
//! with `jobs`.
//!
//! Results are **bit-identical** to the scalar engine
//! ([`crate::execute_mutants_jobs`]) for every lane count and job
//! count. Mutants the tape cannot represent (an unknown site, a rewrite
//! that does not fit its node, a replacement the checker would reject)
//! are executed through the scalar engine lane-by-lane, so even
//! pathological inputs keep exact behavioural parity; populations from
//! [`crate::generate_mutants`] with validation on never need that path.

mod compile;
mod exec;
mod opt;
mod tape;
// The structural tape checker runs (and therefore compiles) only in
// debug builds, mirroring the `debug_assertions` hook in `compile`.
#[cfg(debug_assertions)]
mod verify;

use crate::execute::{reference_transcript, run_one, try_shard, KillResult, OptLevel};
use crate::mutant::{Mutant, MutationError};
use compile::{compile_group, BaseCompile, CompileError, Compiled, Executable};
use musa_hdl::{Bits, CheckedDesign, Simulator};
use tape::{LaneVm, LANES};

/// Maximum number of mutants per simulation pass (lane 0 is the
/// reference machine).
pub const MAX_LANES: usize = LANES - 1;

/// Knobs of the lane engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOptions {
    /// Mutants packed per pass, clamped to `1..=`[`MAX_LANES`]. Lower
    /// values exist for differential testing; 63 is the throughput
    /// setting.
    pub lanes_per_pass: usize,
    /// Worker threads sharding the lane groups (`0` = one per CPU).
    pub jobs: usize,
    /// Tape-optimizer level. [`OptLevel::Full`] (the default) runs the
    /// pass pipeline and the fusing lowering; [`OptLevel::Off`] skips
    /// both and interprets the compiler's raw tapes — the pre-pipeline
    /// engine, kept for differential testing and the `lanes-noopt`
    /// benchmark cells. Bit-identical either way.
    pub opt: OptLevel,
}

impl Default for LaneOptions {
    fn default() -> Self {
        Self { lanes_per_pass: MAX_LANES, jobs: 1, opt: OptLevel::default() }
    }
}

impl LaneOptions {
    /// Options with the given worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Options with the given tape-optimizer level.
    #[must_use]
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    fn lanes(&self) -> usize {
        self.lanes_per_pass.clamp(1, MAX_LANES)
    }
}

/// Execution counters, used by tests and benchmarks to assert the
/// engine's complexity claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Simulation passes executed: `⌈N/lanes⌉` on the happy path, plus
    /// one per scalar-fallback mutant (whether from an uncompilable
    /// rewrite inside a compiled group or a single-mutant cycle split).
    pub passes: usize,
    /// Total simulation steps executed across all passes; early exit
    /// (lane groups stop once every mutant is killed, scalar fallbacks
    /// at their own first kill) makes this less than
    /// `passes × sequence_len`.
    pub steps: usize,
    /// SSA instructions the compiler produced across the executed lane
    /// groups (both tapes, before the optimizer).
    pub instrs_before: usize,
    /// Executor ops after the pass pipeline, constant pooling and
    /// superinstruction fusion — what each step actually evaluates. At
    /// [`OptLevel::Off`] this equals `instrs_before`.
    pub instrs_after: usize,
}

impl LaneStats {
    /// Publishes the totals into the installed tracer's counter
    /// registry (`lane_passes` / `lane_steps`); a no-op when tracing is
    /// off. Called once per execution, after the per-group merge, so
    /// the counters always equal the returned stats exactly.
    fn emit(self) {
        musa_trace::count("lane_passes", self.passes as u64);
        musa_trace::count("lane_steps", self.steps as u64);
    }

    /// Folds one group's counters into the execution totals.
    fn absorb(&mut self, group: LaneStats) {
        self.passes += group.passes;
        self.steps += group.steps;
        self.instrs_before += group.instrs_before;
        self.instrs_after += group.instrs_after;
    }
}

/// [`crate::execute_mutants`] on the lane engine with default options.
///
/// # Errors
///
/// Propagates [`MutationError`] exactly as the scalar engine does.
pub fn execute_mutants_lanes(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
) -> Result<KillResult, MutationError> {
    execute_mutants_lanes_opts(checked, entity, mutants, sequence, &LaneOptions::default())
        .map(|(kills, _)| kills)
}

/// The lane engine with explicit options, returning its [`LaneStats`].
///
/// # Errors
///
/// Propagates [`MutationError`] exactly as the scalar engine does: the
/// lowest-index failing mutant is reported.
pub fn execute_mutants_lanes_opts(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
    options: &LaneOptions,
) -> Result<(KillResult, LaneStats), MutationError> {
    LanePlan::new(checked, entity, mutants, options)?.first_kills(sequence)
}

/// Full kill matrix on the lane engine: `rows[mutant][t]` is `true`
/// when the mutant's outputs differ from the reference at cycle `t`.
/// No early exit — every cycle is graded (the mutation-guided
/// generator's combinational path consumes whole rows).
///
/// # Errors
///
/// Propagates [`MutationError`] exactly as the scalar engine does.
pub fn kill_rows_lanes(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sequence: &[Vec<Bits>],
    options: &LaneOptions,
) -> Result<Vec<Vec<bool>>, MutationError> {
    LanePlan::new(checked, entity, mutants, options)?
        .kill_rows(sequence)
        .map(|(rows, _)| rows)
}

/// A population compiled once and executable against **any number of
/// test sequences** — the compiled-tape cache behind the lane engine.
///
/// [`execute_mutants_lanes`] / [`kill_rows_lanes`] compile the
/// population's lane groups and throw the tapes away after one
/// sequence. Callers that grade the *same* population against many
/// sequences — the mutation-guided generator's candidate pools, custom
/// sweeps — build one `LanePlan` instead and amortise compilation:
///
/// * the group-independent *reference prefix* (read-dependency sets,
///   base evaluation order, power-on lanes) is computed **once per
///   population** and shared by every ≤63-mutant group compile, and
/// * each group's mutant-folded tape is compiled **once per plan** and
///   re-run per sequence (compile-time cycle splitting included), so a
///   pool of `P` candidate sequences costs one compile instead of `P`.
///
/// Results are bit-identical to the one-shot entry points for every
/// sequence, lane count and job count.
#[derive(Debug)]
pub struct LanePlan<'a> {
    checked: &'a CheckedDesign,
    entity: String,
    mutants: &'a [Mutant],
    groups: Vec<PlanGroup>,
    jobs: usize,
}

/// One executable unit of a [`LanePlan`].
///
/// Nearly every group is a `Tape`, so boxing the compiled payload to
/// shrink the rare `ScalarOne` variant would buy nothing but an extra
/// indirection on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum PlanGroup {
    /// A compiled lane group covering `mutants[start..start + len]`.
    Tape {
        compiled: Compiled,
        start: usize,
        len: usize,
    },
    /// A single mutant whose union dependency graph cycles even alone;
    /// the scalar engine reports it (stillborn under re-checking).
    ScalarOne { slot: usize },
}

impl<'a> LanePlan<'a> {
    /// Compiles the population's lane groups (sharded across
    /// `options.jobs` worker threads, merged back by group index).
    ///
    /// # Errors
    ///
    /// Returns [`MutationError::EntityNotFound`] when the design has no
    /// such entity — before touching any mutant, exactly like the
    /// scalar engine's up-front reference transcript does. Per-mutant
    /// failures (unknown sites, stillborn rewrites) surface at
    /// execution time, matching the scalar engine's error behaviour.
    pub fn new(
        checked: &'a CheckedDesign,
        entity: &str,
        mutants: &'a [Mutant],
        options: &LaneOptions,
    ) -> Result<Self, MutationError> {
        let base = match BaseCompile::new(checked, entity) {
            Ok(base) => base,
            Err(CompileError::EntityNotFound) => {
                return Err(MutationError::EntityNotFound(entity.to_string()));
            }
            // A checked design schedules its comb processes
            // acyclically, so a base-graph cycle means the lane
            // scheduler disagrees with the checker. Degrade to the
            // scalar engine per mutant (what the old per-group bisect
            // bottomed out at) instead of misreporting the entity.
            Err(CompileError::Cycle) => {
                return Ok(Self {
                    checked,
                    entity: entity.to_string(),
                    mutants,
                    groups: (0..mutants.len())
                        .map(|slot| PlanGroup::ScalarOne { slot })
                        .collect(),
                    jobs: options.jobs,
                });
            }
        };
        let lanes = options.lanes();
        let ranges: Vec<(usize, usize)> = (0..mutants.len())
            .step_by(lanes.max(1))
            .map(|start| (start, lanes.min(mutants.len() - start)))
            .collect();
        let nested = try_shard(options.jobs, ranges.len(), |i| {
            let _trace = musa_trace::span("lane_compile");
            let compiled = compile_range(checked, entity, mutants, ranges[i], &base, options.opt);
            musa_trace::progress(|| {
                format!("{entity}: lane group {}/{} compiled", i + 1, ranges.len())
            });
            compiled
        })?;
        Ok(Self {
            checked,
            entity: entity.to_string(),
            mutants,
            groups: nested.into_iter().flatten().collect(),
            jobs: options.jobs,
        })
    }

    /// Number of executable groups (compiled tapes plus scalar
    /// fallbacks) in the plan.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// First killing vector per mutant, exactly like
    /// [`execute_mutants_lanes_opts`], re-using the compiled tapes.
    ///
    /// # Errors
    ///
    /// Propagates [`MutationError`] exactly as the scalar engine does:
    /// the lowest-index failing mutant is reported.
    pub fn first_kills(
        &self,
        sequence: &[Vec<Bits>],
    ) -> Result<(KillResult, LaneStats), MutationError> {
        let reference = self.reference_if_needed(sequence)?;
        let per_group = try_shard(self.jobs, self.groups.len(), |i| {
            self.run_first_kill(&self.groups[i], sequence, reference.as_deref())
        })?;
        let mut first_kill = Vec::with_capacity(self.mutants.len());
        let mut stats = LaneStats::default();
        for (kills, group_stats) in per_group {
            first_kill.extend(kills);
            stats.absorb(group_stats);
        }
        // Counter emission happens here, on the calling context, so the
        // totals land once per execution whatever the job count.
        stats.emit();
        Ok((KillResult { first_kill }, stats))
    }

    /// Full kill matrix, exactly like [`kill_rows_lanes`], re-using the
    /// compiled tapes.
    ///
    /// # Errors
    ///
    /// Propagates [`MutationError`] exactly as the scalar engine does.
    pub fn kill_rows(
        &self,
        sequence: &[Vec<Bits>],
    ) -> Result<(Vec<Vec<bool>>, LaneStats), MutationError> {
        let reference = self.reference_if_needed(sequence)?;
        let per_group = try_shard(self.jobs, self.groups.len(), |i| {
            self.run_rows(&self.groups[i], sequence, reference.as_deref())
        })?;
        let mut rows = Vec::with_capacity(self.mutants.len());
        let mut stats = LaneStats::default();
        for (group_rows, group_stats) in per_group {
            rows.extend(group_rows);
            stats.absorb(group_stats);
        }
        stats.emit();
        Ok((rows, stats))
    }

    /// The scalar reference transcript, computed **once per sequence**
    /// and shared by every group that needs a scalar fallback (the old
    /// per-group path recomputed it in each such group).
    fn reference_if_needed(
        &self,
        sequence: &[Vec<Bits>],
    ) -> Result<Option<Vec<Vec<Bits>>>, MutationError> {
        let needed = self.groups.iter().any(|g| match g {
            PlanGroup::Tape { compiled, .. } => !compiled.fallback.is_empty(),
            PlanGroup::ScalarOne { .. } => true,
        });
        if !needed {
            return Ok(None);
        }
        reference_transcript(self.checked, &self.entity, sequence).map(Some)
    }

    fn run_first_kill(
        &self,
        group: &PlanGroup,
        sequence: &[Vec<Bits>],
        reference: Option<&[Vec<Bits>]>,
    ) -> Result<(Vec<Option<usize>>, LaneStats), MutationError> {
        match group {
            PlanGroup::ScalarOne { slot } => {
                let _trace = musa_trace::span("scalar_fallback");
                let reference = reference.expect("scalar groups force a reference");
                let kill =
                    run_one(self.checked, &self.entity, &self.mutants[*slot], sequence, reference)?;
                let steps = kill.map_or(sequence.len(), |t| t + 1);
                Ok((vec![kill], LaneStats { passes: 1, steps, ..LaneStats::default() }))
            }
            PlanGroup::Tape { compiled, start, len } => {
                let mut fallback_mask = 0u64;
                for &slot in &compiled.fallback {
                    fallback_mask |= 1u64 << (slot + 1);
                }
                let mut sim = GroupSim::new(compiled, *len);
                let mut stats = LaneStats {
                    passes: 1,
                    instrs_before: compiled.instrs_before,
                    instrs_after: compiled.instrs_after,
                    ..LaneStats::default()
                };
                let mut first_kill = vec![None; *len];
                let mut alive = sim.used_mask & !fallback_mask;
                {
                    let _trace = musa_trace::span("lane_interpret");
                    sim.reset();
                    for (t, vector) in sequence.iter().enumerate() {
                        if alive == 0 {
                            break; // every mutant in the batch is killed
                        }
                        // Killed lanes drop out of the diff scan entirely.
                        let newly = sim.step(vector, alive);
                        stats.steps += 1;
                        let mut bits = newly;
                        while bits != 0 {
                            let lane = bits.trailing_zeros() as usize;
                            first_kill[lane - 1] = Some(t);
                            bits &= bits - 1;
                        }
                        alive &= !newly;
                    }
                }
                if !compiled.fallback.is_empty() {
                    let _trace = musa_trace::span("scalar_fallback");
                    for &slot in &compiled.fallback {
                        let reference = reference.expect("fallbacks force a reference");
                        let kill = run_one(
                            self.checked,
                            &self.entity,
                            &self.mutants[start + slot],
                            sequence,
                            reference,
                        )?;
                        stats.passes += 1;
                        stats.steps += kill.map_or(sequence.len(), |t| t + 1);
                        first_kill[slot] = kill;
                    }
                }
                Ok((first_kill, stats))
            }
        }
    }

    fn run_rows(
        &self,
        group: &PlanGroup,
        sequence: &[Vec<Bits>],
        reference: Option<&[Vec<Bits>]>,
    ) -> Result<(Vec<Vec<bool>>, LaneStats), MutationError> {
        match group {
            PlanGroup::ScalarOne { slot } => {
                let _trace = musa_trace::span("scalar_fallback");
                let stats =
                    LaneStats { passes: 1, steps: sequence.len(), ..LaneStats::default() };
                let reference = reference.expect("scalar groups force a reference");
                let row =
                    scalar_row(self.checked, &self.entity, &self.mutants[*slot], sequence, reference)?;
                Ok((vec![row], stats))
            }
            PlanGroup::Tape { compiled, start, len } => {
                let mut sim = GroupSim::new(compiled, *len);
                let mut stats = LaneStats {
                    passes: 1,
                    instrs_before: compiled.instrs_before,
                    instrs_after: compiled.instrs_after,
                    ..LaneStats::default()
                };
                let mut rows = vec![vec![false; sequence.len()]; *len];
                {
                    let _trace = musa_trace::span("lane_interpret");
                    sim.reset();
                    for (t, vector) in sequence.iter().enumerate() {
                        let diff = sim.step(vector, sim.used_mask);
                        stats.steps += 1;
                        for (slot, row) in rows.iter_mut().enumerate() {
                            row[t] = diff & (1u64 << (slot + 1)) != 0;
                        }
                    }
                }
                if !compiled.fallback.is_empty() {
                    let _trace = musa_trace::span("scalar_fallback");
                    for &slot in &compiled.fallback {
                        let reference = reference.expect("fallbacks force a reference");
                        rows[slot] = scalar_row(
                            self.checked,
                            &self.entity,
                            &self.mutants[start + slot],
                            sequence,
                            reference,
                        )?;
                        stats.passes += 1;
                        stats.steps += sequence.len();
                    }
                }
                Ok((rows, stats))
            }
        }
    }
}

/// Compiles one contiguous mutant range, bisecting on joint
/// combinational cycles exactly like the old per-run path did: two
/// mutants' added read edges can cycle jointly even though each alone
/// is fine.
fn compile_range(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    (start, len): (usize, usize),
    base: &BaseCompile,
    opt: OptLevel,
) -> Result<Vec<PlanGroup>, MutationError> {
    let refs: Vec<&Mutant> = mutants[start..start + len].iter().collect();
    match compile_group(checked, entity, &refs, base, opt) {
        Ok(compiled) => Ok(vec![PlanGroup::Tape { compiled, start, len }]),
        Err(CompileError::Cycle) if len > 1 => {
            let mid = len / 2;
            let mut left = compile_range(checked, entity, mutants, (start, mid), base, opt)?;
            let right =
                compile_range(checked, entity, mutants, (start + mid, len - mid), base, opt)?;
            left.extend(right);
            Ok(left)
        }
        Err(CompileError::Cycle) => Ok(vec![PlanGroup::ScalarOne { slot: start }]),
        Err(CompileError::EntityNotFound) => {
            Err(MutationError::EntityNotFound(entity.to_string()))
        }
    }
}

/// One compiled lane group stepping through a test sequence.
struct GroupSim<'a> {
    vm: LaneVm,
    compiled: &'a Compiled,
    used_mask: u64,
}

impl<'a> GroupSim<'a> {
    fn new(compiled: &'a Compiled, group_len: usize) -> Self {
        let mut vm = LaneVm::new(&compiled.init, compiled.scratch, compiled.scratch_scalar);
        if let Executable::Lowered { consts, .. } = &compiled.exec {
            // The pool registers sit below every op destination and are
            // loop-invariant, so one seeding serves all sweeps.
            vm.seed_consts(consts);
        }
        let used_mask = if group_len + 1 >= LANES {
            !1u64
        } else {
            ((1u64 << (group_len + 1)) - 1) & !1
        };
        Self { vm, compiled, used_mask }
    }

    /// One combinational settle, on whichever engine the opt level
    /// compiled: the fused executor or the raw-tape interpreter.
    fn settle(&mut self) {
        match &self.compiled.exec {
            Executable::Raw { comb, .. } => self.vm.run(comb),
            Executable::Lowered { comb, .. } => {
                self.vm.run_scalar(&comb.pre);
                self.vm.run_exec(&comb.main);
            }
        }
    }

    /// One clock edge (next-state computation plus register commit).
    fn clock(&mut self) {
        match &self.compiled.exec {
            Executable::Raw { edge, .. } => self.vm.run(edge),
            Executable::Lowered { edge, .. } => {
                self.vm.run_scalar(&edge.pre);
                self.vm.run_exec(&edge.main);
            }
        }
    }

    fn reset(&mut self) {
        self.vm.reset(&self.compiled.init);
        self.settle();
    }

    /// Applies one test vector with the scalar simulator's protocol
    /// (inputs, settle, sample, clock) and returns the mask of lanes in
    /// `scan` whose sampled outputs differ from lane 0.
    ///
    /// `scan` limits the output XOR comparison to the lanes the caller
    /// still cares about: the first-kill path passes its shrinking
    /// alive mask, so long sequences stop scanning dead mutants
    /// mid-sequence; the kill-matrix path passes every used lane.
    fn step(&mut self, inputs: &[Bits], scan: u64) -> u64 {
        assert_eq!(
            inputs.len(),
            self.compiled.data_inputs.len(),
            "expected {} input values",
            self.compiled.data_inputs.len()
        );
        for (&(sym, width), bits) in self.compiled.data_inputs.iter().zip(inputs) {
            assert_eq!(width, bits.width(), "width mismatch on data input");
            self.vm.state[sym.0 as usize] = [bits.raw(); LANES];
        }
        self.settle();
        let mut diff = 0u64;
        let scan = scan & self.used_mask;
        for &sym in &self.compiled.outputs {
            let lanes = &self.vm.state[sym.0 as usize];
            let reference = lanes[0];
            let mut pending = scan & !diff;
            while pending != 0 {
                let l = pending.trailing_zeros() as usize;
                diff |= u64::from(lanes[l] != reference) << l;
                pending &= pending - 1;
            }
        }
        if !self.compiled.combinational {
            self.clock();
            self.settle();
        }
        diff
    }
}

/// Scalar fallback for one row of the kill matrix (the reference
/// transcript is computed once per plan execution and shared).
fn scalar_row(
    checked: &CheckedDesign,
    entity: &str,
    mutant: &Mutant,
    sequence: &[Vec<Bits>],
    reference: &[Vec<Bits>],
) -> Result<Vec<bool>, MutationError> {
    let mutated = mutant.apply(checked)?;
    let mut sim = Simulator::new(&mutated, entity)
        .map_err(|_| MutationError::EntityNotFound(entity.to_string()))?;
    sim.reset();
    Ok(sequence
        .iter()
        .zip(reference)
        .map(|(vector, expected)| sim.step(vector) != *expected)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::{execute_mutants, TestSequence};
    use crate::generate::{generate_mutants, GenerateOptions};
    use crate::mutant::{MutantId, Rewrite};
    use crate::operator::MutationOperator;
    use musa_hdl::parse;

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    fn bit(v: u64) -> Bits {
        Bits::new(1, v)
    }

    const GATE: &str = "
        entity g is
          port(a : in bit; b : in bit; y : out bit);
        comb begin
          y <= a and b;
        end;
        end;
    ";

    const COUNTER: &str = "
        entity t is
          port(clk : in bit; rst : in bit; en : in bit; q : out bits(3));
        signal c : bits(3);
        seq(clk) begin
          if rst = 1 then
            c <= 0;
          elsif en = 1 then
            c <= c + 1;
          end if;
        end;
        comb begin q <= c; end;
        end;
    ";

    fn exhaustive_pairs() -> TestSequence {
        (0..4u64).map(|p| vec![bit(p & 1), bit((p >> 1) & 1)]).collect()
    }

    #[test]
    fn lane_engine_matches_scalar_on_the_gate() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let sequence = exhaustive_pairs();
        let scalar = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        let lanes = execute_mutants_lanes(&d, "g", &mutants, &sequence).unwrap();
        assert_eq!(lanes.first_kill, scalar.first_kill);
    }

    #[test]
    fn lane_engine_matches_scalar_on_a_sequential_counter() {
        let d = checked(COUNTER);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        assert!(mutants.len() > 20, "population {}", mutants.len());
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        let sequence: TestSequence = (0..24)
            .map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                vec![bit((rng >> 60) & 1), bit((rng >> 61) & 1)]
            })
            .collect();
        let scalar = execute_mutants(&d, "t", &mutants, &sequence).unwrap();
        for lanes_per_pass in [1, 2, 63] {
            let opts = LaneOptions { lanes_per_pass, jobs: 1, ..LaneOptions::default() };
            let (lanes, _) =
                execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &opts).unwrap();
            assert_eq!(
                lanes.first_kill, scalar.first_kill,
                "lanes_per_pass={lanes_per_pass}"
            );
        }
    }

    #[test]
    fn population_of_n_takes_ceil_n_over_63_passes() {
        let d = checked(COUNTER);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let n = mutants.len();
        let sequence: TestSequence = vec![vec![bit(0), bit(1)]; 4];
        let opts = LaneOptions::default();
        let (_, stats) =
            execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &opts).unwrap();
        assert_eq!(
            stats.passes,
            n.div_ceil(MAX_LANES),
            "population {n} must take ⌈N/63⌉ passes"
        );
        // And at one mutant per pass the engine degenerates to N passes.
        let opts = LaneOptions { lanes_per_pass: 1, jobs: 1, ..LaneOptions::default() };
        let (_, stats) =
            execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &opts).unwrap();
        assert_eq!(stats.passes, n);
    }

    #[test]
    fn lane_group_early_exits_once_every_mutant_is_killed() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        // The exhaustive four vectors kill all five LOR mutants by t=2;
        // padding the sequence must not cost extra steps.
        let mut sequence = exhaustive_pairs();
        let kill_by = {
            let scalar = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
            scalar.first_kill.iter().map(|k| k.unwrap()).max().unwrap()
        };
        for _ in 0..100 {
            sequence.push(vec![bit(0), bit(0)]);
        }
        let (lanes, stats) = execute_mutants_lanes_opts(
            &d,
            "g",
            &mutants,
            &sequence,
            &LaneOptions::default(),
        )
        .unwrap();
        assert_eq!(lanes.killed_count(), mutants.len());
        assert_eq!(
            stats.steps,
            kill_by + 1,
            "group must stop right after its last first-kill"
        );
    }

    #[test]
    fn two_mutants_on_the_same_site_stay_in_their_lanes() {
        // Mask-select correctness: several rewrites of the SAME binary
        // site must not bleed into each other's lanes (regression guard
        // for the MaskSel chaining order).
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        assert_eq!(mutants.len(), 5, "five same-site alternatives");
        assert!(
            mutants.windows(2).all(|w| w[0].site == w[1].site),
            "all five target one site"
        );
        let sequence = exhaustive_pairs();
        let scalar = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        let lanes = execute_mutants_lanes(&d, "g", &mutants, &sequence).unwrap();
        assert_eq!(lanes.first_kill, scalar.first_kill);
        // And per-kill cycles differ between the alternatives, so a
        // lane-bleed would be visible.
        assert!(scalar.first_kill.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn same_site_uoi_and_lor_mix_is_lane_exact() {
        let d = checked(GATE);
        let mut mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Lor));
        let site = mutants[0].site;
        mutants.push(Mutant {
            id: MutantId(99),
            operator: MutationOperator::Uoi,
            site,
            rewrite: Rewrite::InsertNot,
            description: "UOI on the shared site".into(),
        });
        let sequence = exhaustive_pairs();
        let scalar = execute_mutants(&d, "g", &mutants, &sequence).unwrap();
        let lanes = execute_mutants_lanes(&d, "g", &mutants, &sequence).unwrap();
        assert_eq!(lanes.first_kill, scalar.first_kill);
    }

    #[test]
    fn kill_rows_match_per_cycle_differences() {
        let d = checked(GATE);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let sequence = exhaustive_pairs();
        let rows =
            kill_rows_lanes(&d, "g", &mutants, &sequence, &LaneOptions::default()).unwrap();
        assert_eq!(rows.len(), mutants.len());
        for (mi, row) in rows.iter().enumerate() {
            let reference = reference_transcript(&d, "g", &sequence).unwrap();
            let mutated = mutants[mi].apply(&d).unwrap();
            let mut sim = Simulator::new(&mutated, "g").unwrap();
            for (t, vector) in sequence.iter().enumerate() {
                assert_eq!(
                    row[t],
                    sim.step(vector) != reference[t],
                    "mutant {mi} cycle {t}"
                );
            }
        }
    }

    #[test]
    fn slice_targets_dynamic_indices_and_reductions_match_scalar() {
        // Constructs no bundled benchmark exercises together: slice
        // writes, a dynamically indexed write under a guard, reductions
        // and shifts — with the full operator population (including CR
        // mutants inside the target index expression).
        let d = checked(
            "entity m is
               port(clk : in bit; a : in bits(4); s : in bits(2); y : out bits(8); p : out bit);
             signal r : bits(8);
             signal hot : bits(4);
             seq(clk) begin
               r[7:4] <= a;
               r[3:0] <= r[7:4];
             end;
             comb begin
               hot <= 0;
               if orr(a) = 1 then
                 hot[s] <= 1;
               end if;
             end;
             comb begin
               y <= r xor (hot & (a srl 1));
               p <= xorr(r) xor andr(a);
             end;
             end;",
        );
        let mutants = generate_mutants(&d, "m", &GenerateOptions::default());
        assert!(mutants.len() > 40, "population {}", mutants.len());
        let mut rng = 0xFEEDu64;
        let sequence: TestSequence = (0..20)
            .map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99);
                vec![Bits::new(4, rng >> 50), Bits::new(2, rng >> 40)]
            })
            .collect();
        let scalar = execute_mutants(&d, "m", &mutants, &sequence).unwrap();
        for lanes_per_pass in [1, 63] {
            let opts = LaneOptions { lanes_per_pass, jobs: 1, ..LaneOptions::default() };
            let (lanes, _) =
                execute_mutants_lanes_opts(&d, "m", &mutants, &sequence, &opts).unwrap();
            assert_eq!(
                lanes.first_kill, scalar.first_kill,
                "lanes_per_pass={lanes_per_pass}"
            );
        }
    }

    #[test]
    fn jobs_shard_lane_groups_identically() {
        let d = checked(COUNTER);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let sequence: TestSequence =
            (0..16).map(|i| vec![bit(u64::from(i % 7 == 0)), bit(1)]).collect();
        let serial = execute_mutants_lanes(&d, "t", &mutants, &sequence).unwrap();
        for jobs in [0, 2, 8] {
            let opts = LaneOptions { lanes_per_pass: 4, jobs, ..LaneOptions::default() };
            let (sharded, _) =
                execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &opts).unwrap();
            assert_eq!(sharded.first_kill, serial.first_kill, "jobs={jobs}");
        }
    }

    #[test]
    fn lane_plan_is_reusable_across_sequences() {
        // The compiled-tape cache: one plan graded against several
        // sequences must match a fresh engine call per sequence, for
        // both the first-kill and the kill-matrix path.
        let d = checked(COUNTER);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let plan = LanePlan::new(&d, "t", &mutants, &LaneOptions::default()).unwrap();
        assert_eq!(plan.group_count(), mutants.len().div_ceil(MAX_LANES));
        let mut rng = 0xCAFEu64;
        for round in 0..3 {
            let sequence: TestSequence = (0..10)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(7);
                    vec![bit((rng >> 60) & 1), bit((rng >> 61) & 1)]
                })
                .collect();
            let fresh = execute_mutants_lanes(&d, "t", &mutants, &sequence).unwrap();
            let (cached, _) = plan.first_kills(&sequence).unwrap();
            assert_eq!(cached.first_kill, fresh.first_kill, "round {round}");
            let fresh_rows =
                kill_rows_lanes(&d, "t", &mutants, &sequence, &LaneOptions::default()).unwrap();
            let (cached_rows, _) = plan.kill_rows(&sequence).unwrap();
            assert_eq!(cached_rows, fresh_rows, "round {round} rows");
        }
    }

    #[test]
    fn lane_plan_rejects_unknown_entities_up_front() {
        let d = checked(GATE);
        let err = LanePlan::new(&d, "zz", &[], &LaneOptions::default()).unwrap_err();
        assert!(matches!(err, MutationError::EntityNotFound(_)));
    }

    #[test]
    fn invalid_mutants_fall_back_to_scalar_errors() {
        use musa_hdl::ast::NodeId;
        let d = checked(GATE);
        let bogus = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Cr,
            site: NodeId(999_999),
            rewrite: Rewrite::Literal { value: 0 },
            description: String::new(),
        };
        let err = execute_mutants_lanes(&d, "g", &[bogus], &exhaustive_pairs()).unwrap_err();
        assert!(matches!(err, MutationError::SiteNotFound(_)), "{err}");
    }

    #[test]
    fn stillborn_sdl_mutant_errors_exactly_like_scalar() {
        // Deleting the only driver of a combinational output violates
        // full assignment: the scalar engine rejects the mutant as
        // stillborn at apply time, and the lane engine must report the
        // very same error instead of silently simulating the deletion.
        let d = checked(GATE);
        let site = d.design().entities[0].processes[0].body[0].id();
        let sdl = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Sdl,
            site,
            rewrite: Rewrite::DeleteStmt,
            description: "delete the y driver".into(),
        };
        let sequence = exhaustive_pairs();
        let scalar = execute_mutants(&d, "g", std::slice::from_ref(&sdl), &sequence);
        let lanes = execute_mutants_lanes(&d, "g", std::slice::from_ref(&sdl), &sequence);
        assert!(
            matches!(scalar, Err(MutationError::Stillborn(_))),
            "scalar: {scalar:?}"
        );
        assert_eq!(
            format!("{scalar:?}"),
            format!("{lanes:?}"),
            "engines must agree on the stillborn error"
        );
    }

    #[test]
    fn stillborn_duplicate_case_choice_errors_exactly_like_scalar() {
        let d = checked(
            "entity c is
               port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 0 => y <= 1;
                 when 1 => y <= 0;
                 when others => y <= 0;
               end case;
             end;
             end;",
        );
        // Rewriting choice 0 to 1 collides with the second arm: stillborn.
        let entity = d.design().entities[0].clone();
        let mut arm_site = None;
        musa_hdl::ast::walk_stmts(&entity.processes[0].body, &mut |s| {
            if let musa_hdl::ast::Stmt::Case { arms, .. } = s {
                arm_site = Some(arms[0].id);
            }
        });
        let dup = Mutant {
            id: MutantId(0),
            operator: MutationOperator::Cr,
            site: arm_site.unwrap(),
            rewrite: Rewrite::CaseChoice { index: 0, value: 1 },
            description: "case choice 0 -> 1 (duplicate)".into(),
        };
        let sequence: TestSequence = (0..4u64).map(|v| vec![Bits::new(2, v)]).collect();
        let scalar = execute_mutants(&d, "c", std::slice::from_ref(&dup), &sequence);
        let lanes = execute_mutants_lanes(&d, "c", std::slice::from_ref(&dup), &sequence);
        assert!(
            matches!(scalar, Err(MutationError::Stillborn(_))),
            "scalar: {scalar:?}"
        );
        assert_eq!(format!("{scalar:?}"), format!("{lanes:?}"));
    }

    #[test]
    fn unknown_entity_is_reported_before_any_work() {
        let d = checked(GATE);
        let err = execute_mutants_lanes(&d, "zz", &[], &[]).unwrap_err();
        assert!(matches!(err, MutationError::EntityNotFound(_)));
    }

    #[test]
    fn empty_population_and_empty_sequence_are_harmless() {
        let d = checked(GATE);
        let kills = execute_mutants_lanes(&d, "g", &[], &exhaustive_pairs()).unwrap();
        assert!(kills.first_kill.is_empty());
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let kills = execute_mutants_lanes(&d, "g", &mutants, &[]).unwrap();
        assert_eq!(kills.killed_count(), 0);
    }

    /// The central pipeline contract: for every entity shape the suite
    /// exercises, the optimized engine, the unoptimized engine and the
    /// scalar engine agree bit-for-bit on first kills *and* whole kill
    /// matrices.
    #[test]
    fn optimizer_is_bit_identical_to_unoptimized_and_scalar() {
        let dyn_entity = "entity m is
           port(clk : in bit; a : in bits(4); s : in bits(2); y : out bits(8); p : out bit);
         signal r : bits(8);
         signal hot : bits(4);
         seq(clk) begin
           r[7:4] <= a;
           r[3:0] <= r[7:4];
         end;
         comb begin
           hot <= 0;
           if orr(a) = 1 then
             hot[s] <= 1;
           end if;
         end;
         comb begin
           y <= r xor (hot & (a srl 1));
           p <= xorr(r) xor andr(a);
         end;
         end;";
        let mut rng = 0x0D15_EA5Eu64;
        for (src, entity, widths) in [
            (GATE, "g", vec![1u32, 1]),
            (COUNTER, "t", vec![1, 1]),
            (dyn_entity, "m", vec![4, 2]),
        ] {
            let d = checked(src);
            let mutants = generate_mutants(&d, entity, &GenerateOptions::default());
            let sequence: TestSequence = (0..24)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(13);
                    widths
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| Bits::new(w, rng >> (40 + 4 * i)))
                        .collect()
                })
                .collect();
            let scalar = execute_mutants(&d, entity, &mutants, &sequence).unwrap();
            let full = LaneOptions::default().with_opt(OptLevel::Full);
            let off = LaneOptions::default().with_opt(OptLevel::Off);
            let (opt_kills, _) =
                execute_mutants_lanes_opts(&d, entity, &mutants, &sequence, &full).unwrap();
            let (raw_kills, _) =
                execute_mutants_lanes_opts(&d, entity, &mutants, &sequence, &off).unwrap();
            assert_eq!(opt_kills.first_kill, scalar.first_kill, "{entity}: full vs scalar");
            assert_eq!(raw_kills.first_kill, scalar.first_kill, "{entity}: off vs scalar");
            let opt_rows = kill_rows_lanes(&d, entity, &mutants, &sequence, &full).unwrap();
            let raw_rows = kill_rows_lanes(&d, entity, &mutants, &sequence, &off).unwrap();
            assert_eq!(opt_rows, raw_rows, "{entity}: kill matrices diverge");
        }
    }

    #[test]
    fn optimizer_shrinks_the_executed_stream() {
        let d = checked(COUNTER);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let sequence: TestSequence = vec![vec![bit(0), bit(1)]; 4];
        let full = LaneOptions::default();
        let (_, opt_stats) =
            execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &full).unwrap();
        assert!(
            opt_stats.instrs_after < opt_stats.instrs_before,
            "pipeline must shrink the tape: {opt_stats:?}"
        );
        let off = LaneOptions::default().with_opt(OptLevel::Off);
        let (_, raw_stats) =
            execute_mutants_lanes_opts(&d, "t", &mutants, &sequence, &off).unwrap();
        assert_eq!(
            raw_stats.instrs_after, raw_stats.instrs_before,
            "off is a 1:1 transliteration"
        );
        assert_eq!(raw_stats.instrs_before, opt_stats.instrs_before, "same compiler output");
    }
}
