//! Lane-constant folding.
//!
//! Any instruction whose operands are all compile-time constants is
//! itself a constant on every lane (constants broadcast identically, so
//! per-lane divergence cannot arise from them alone). The pass tracks
//! which registers hold known constants and replaces each fully-known
//! instruction with the [`Instr::Const`] it would compute — using the
//! *same* arithmetic as the executor, so the fold can never disagree
//! with a run. The now-dead operand instructions are left for DCE.

use super::super::tape::{Instr, Reg, Tape};
use super::Pass;
use musa_hdl::ast::{BinOp, ReduceOp, ShiftOp};
use musa_hdl::Bits;

pub(crate) struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "lane_opt_const_fold"
    }

    fn run(&self, tape: &mut Tape) -> usize {
        let mut known: Vec<Option<u64>> = Vec::with_capacity(tape.instrs.len());
        let mut folded = 0;
        for i in 0..tape.instrs.len() {
            let value = eval(&tape.instrs[i], &known);
            if let Some(v) = value {
                if !matches!(tape.instrs[i], Instr::Const { .. }) {
                    tape.instrs[i] = Instr::Const { value: v };
                    folded += 1;
                }
            }
            known.push(value);
        }
        folded
    }
}

/// Evaluates one instruction when every operand is a known constant,
/// mirroring `LaneVm::run` exactly (including width masking and the
/// out-of-range rules of the dynamic ops).
fn eval(instr: &Instr, known: &[Option<u64>]) -> Option<u64> {
    let k = |r: Reg| known[r as usize];
    Some(match *instr {
        Instr::Load { .. } => return None,
        Instr::Const { value } => value,
        // All lanes agree on a constant, so a mask select between two
        // *equal* constants is that constant; differing constants stay
        // lane-divergent and must not fold.
        Instr::MaskSel { a, b, .. } => {
            let (x, y) = (k(a)?, k(b)?);
            if x == y {
                x
            } else {
                return None;
            }
        }
        Instr::Sel { cond, a, b } => {
            if let Some(c) = k(cond) {
                if c != 0 {
                    k(a)?
                } else {
                    k(b)?
                }
            } else {
                let (x, y) = (k(a)?, k(b)?);
                if x == y {
                    x
                } else {
                    return None;
                }
            }
        }
        Instr::Not { a, width } => !k(a)? & Bits::mask_of(width),
        Instr::Bin { op, a, b, width } => {
            let m = Bits::mask_of(width);
            let (a, b) = (k(a)?, k(b)?);
            match op {
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Nand => !(a & b) & m,
                BinOp::Nor => !(a | b) & m,
                BinOp::Xnor => !(a ^ b) & m,
                BinOp::Add => a.wrapping_add(b) & m,
                BinOp::Sub => a.wrapping_sub(b) & m,
                BinOp::Mul => a.wrapping_mul(b) & m,
                BinOp::Eq => u64::from(a == b),
                BinOp::Ne => u64::from(a != b),
                BinOp::Lt => u64::from(a < b),
                BinOp::Le => u64::from(a <= b),
                BinOp::Gt => u64::from(a > b),
                BinOp::Ge => u64::from(a >= b),
            }
        }
        Instr::Reduce { op, a, width } => {
            let m = Bits::mask_of(width);
            let x = k(a)?;
            match op {
                ReduceOp::Or => u64::from(x != 0),
                ReduceOp::And => u64::from(x == m),
                ReduceOp::Xor => u64::from(x.count_ones() % 2 == 1),
            }
        }
        Instr::Shift { op, a, amount, width } => {
            let x = k(a)?;
            if amount >= width {
                0
            } else {
                match op {
                    ShiftOp::Left => (x << amount) & Bits::mask_of(width),
                    ShiftOp::Right => x >> amount,
                }
            }
        }
        Instr::Slice { a, hi, lo } => (k(a)? >> lo) & Bits::mask_of(hi - lo + 1),
        Instr::Concat { a, b, rhs_width } => (k(a)? << rhs_width) | k(b)?,
        Instr::DynGet { base, index, width } => {
            let (x, ix) = (k(base)?, k(index)?);
            if ix < u64::from(width) {
                (x >> ix) & 1
            } else {
                0
            }
        }
        Instr::DynSet { cur, index, bit, width } => {
            let (c, ix, v) = (k(cur)?, k(index)?, k(bit)?);
            if ix < u64::from(width) {
                (c & !(1 << ix)) | ((v & 1) << ix)
            } else {
                c
            }
        }
        Instr::WithSlice { cur, v, hi, lo } => {
            let field = Bits::mask_of(hi - lo + 1) << lo;
            (k(cur)? & !field) | (k(v)? << lo)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_same_behavior;
    use super::*;
    use crate::lanes::tape::LANES;

    fn clone_tape(t: &Tape) -> Tape {
        Tape { instrs: t.instrs.clone(), stores: t.stores.clone() }
    }

    #[test]
    fn const_operands_fold_to_a_const() {
        // (5 + 3) & width 4 = 8; xorr(8) over width 4 = 1.
        let mut tape = Tape {
            instrs: vec![
                Instr::Const { value: 5 },
                Instr::Const { value: 3 },
                Instr::Bin { op: BinOp::Add, a: 0, b: 1, width: 4 },
                Instr::Reduce { op: ReduceOp::Xor, a: 2, width: 4 },
            ],
            stores: vec![(0, 3)],
        };
        let original = clone_tape(&tape);
        let fired = ConstFold.run(&mut tape);
        assert_eq!(fired, 2, "both computed instrs fold");
        assert_eq!(tape.instrs[2], Instr::Const { value: 8 });
        assert_eq!(tape.instrs[3], Instr::Const { value: 1 });
        assert_same_behavior(&original, &tape, &[[0u64; LANES]]);
    }

    #[test]
    fn loads_and_lane_divergent_selects_do_not_fold() {
        // A Load is runtime data; a MaskSel between *different*
        // constants is lane-divergent (the mutation primitive) and must
        // survive untouched.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Const { value: 1 },
                Instr::Const { value: 0 },
                Instr::MaskSel { mask: 0b10, a: 1, b: 2 },
                Instr::Bin { op: BinOp::And, a: 0, b: 3, width: 1 },
            ],
            stores: vec![(0, 4)],
        };
        let original = clone_tape(&tape);
        assert_eq!(ConstFold.run(&mut tape), 0, "nothing must fire");
        assert_eq!(tape.instrs, original.instrs);
    }

    #[test]
    fn equal_arm_masksel_folds() {
        let mut tape = Tape {
            instrs: vec![
                Instr::Const { value: 7 },
                Instr::Const { value: 7 },
                Instr::MaskSel { mask: 0b100, a: 0, b: 1 },
            ],
            stores: vec![(0, 2)],
        };
        assert_eq!(ConstFold.run(&mut tape), 1);
        assert_eq!(tape.instrs[2], Instr::Const { value: 7 });
    }
}
