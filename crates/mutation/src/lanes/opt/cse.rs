//! Common-subexpression elimination over the SSA stream.
//!
//! Every tape instruction is pure within a sweep — even `Load`, because
//! write-backs commit only *after* the sweep, so two loads of one
//! symbol in one tape read the same state. Two structurally identical
//! instructions therefore compute identical lane words, and the later
//! one aliases to the first. Operands resolve through the alias map as
//! the scan advances, so chains of duplicates (common under the
//! per-site `MaskSel` folds, which re-emit operand subtrees) collapse
//! in a single run.

use super::super::tape::{Instr, Reg, Tape};
use super::{apply_aliases, Pass};
use std::collections::HashMap;

pub(crate) struct Cse;

/// A hashable structural key: discriminant plus the (alias-resolved)
/// fields, each packed into a `u64`. The op enums are fieldless, so
/// `as u64` is a stable encoding.
type Key = [u64; 5];

fn key(instr: &Instr) -> Key {
    use Instr::*;
    match *instr {
        Load { sym } => [0, u64::from(sym), 0, 0, 0],
        Const { value } => [1, value, 0, 0, 0],
        MaskSel { mask, a, b } => [2, mask, u64::from(a), u64::from(b), 0],
        Sel { cond, a, b } => [3, u64::from(cond), u64::from(a), u64::from(b), 0],
        Not { a, width } => [4, u64::from(a), u64::from(width), 0, 0],
        Bin { op, a, b, width } => {
            [5, op as u64, u64::from(a), u64::from(b), u64::from(width)]
        }
        Reduce { op, a, width } => [6, op as u64, u64::from(a), u64::from(width), 0],
        Shift { op, a, amount, width } => {
            [7, op as u64, u64::from(a), u64::from(amount), u64::from(width)]
        }
        Slice { a, hi, lo } => [8, u64::from(a), u64::from(hi), u64::from(lo), 0],
        Concat { a, b, rhs_width } => {
            [9, u64::from(a), u64::from(b), u64::from(rhs_width), 0]
        }
        DynGet { base, index, width } => {
            [10, u64::from(base), u64::from(index), u64::from(width), 0]
        }
        DynSet { cur, index, bit, width } => {
            [11, u64::from(cur), u64::from(index), u64::from(bit) | u64::from(width) << 32, 0]
        }
        WithSlice { cur, v, hi, lo } => {
            [12, u64::from(cur), u64::from(v), u64::from(hi) | u64::from(lo) << 32, 0]
        }
    }
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "lane_opt_cse"
    }

    fn run(&self, tape: &mut Tape) -> usize {
        let n = tape.instrs.len();
        let mut alias: Vec<Reg> = (0..n as Reg).collect();
        let mut seen: HashMap<Key, Reg> = HashMap::with_capacity(n);
        let mut fired = 0;
        for i in 0..n {
            let mut instr = tape.instrs[i].clone();
            super::for_each_operand(&mut instr, |r| *r = alias[*r as usize]);
            tape.instrs[i] = instr;
            match seen.entry(key(&tape.instrs[i])) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    alias[i] = *first.get();
                    fired += 1;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i as Reg);
                }
            }
        }
        if fired > 0 {
            apply_aliases(tape, &alias);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_same_behavior, ramp};
    use super::*;
    use musa_hdl::ast::BinOp;

    #[test]
    fn duplicate_expressions_dedupe_transitively() {
        // Two copies of (x and y) feed an xor; after CSE the xor reads
        // one copy twice.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 8 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 8 },
                Instr::Bin { op: BinOp::Xor, a: 2, b: 3, width: 8 },
            ],
            stores: vec![(0, 4)],
        };
        let original = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        assert_eq!(Cse.run(&mut tape), 1);
        assert_eq!(tape.instrs[4], Instr::Bin { op: BinOp::Xor, a: 2, b: 2, width: 8 });
        let init = [ramp(11).map(|v| v & 0xff), ramp(12).map(|v| v & 0xff)];
        assert_same_behavior(&original, &tape, &init);
    }

    #[test]
    fn near_misses_are_kept() {
        // Same operands, different op/width: no sharing.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 8 },
                Instr::Bin { op: BinOp::Or, a: 0, b: 1, width: 8 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 4 },
            ],
            stores: vec![(0, 2), (1, 3), (0, 4)],
        };
        let before = tape.instrs.clone();
        assert_eq!(Cse.run(&mut tape), 0);
        assert_eq!(tape.instrs, before);
    }
}
