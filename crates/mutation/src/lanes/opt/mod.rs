//! The tape optimizer: a pass framework over the SSA lane tape.
//!
//! Sits between the compiler ([`super::compile`]) and the executor
//! ([`super::exec`]) — the middle stage of the lane pipeline. A
//! [`Pass`] is a semantics-preserving tape-to-tape rewrite; the
//! [`PassPipeline`] iterates a fixed catalog to a bounded fixpoint and
//! finishes with dead-code elimination + register compaction:
//!
//! | pass | rewrite |
//! |---|---|
//! | `const_fold` | Const-operand `Bin`/`Not`/`Reduce`/`Shift`/`Slice`/… evaluated at compile time |
//! | `copy_prop` | `Sel`/`MaskSel` with a constant condition, degenerate mask or identical arms collapse to their source |
//! | `select_flatten` | nested selects on one guard (the predicated control-flow chains) short-circuit |
//! | `cse` | structurally identical pure instructions dedupe to the first occurrence |
//! | `dce` | instructions unreachable from the store roots drop; survivors renumber densely |
//!
//! Between pipeline rounds the *unit-level* dead-store pruner removes
//! write-backs no tape loads back and no output diff scan reads —
//! on a purely combinational circuit that alone strips every internal
//! signal commit. Every pass preserves per-lane bit-identity: the
//! optimizer may never change a single observable lane word, which the
//! differential suites (optimized ≡ unoptimized ≡ scalar) pin.
//!
//! Per-pass rewrite counts surface as `musa_trace` counters
//! (`lane_opt_<pass>`), and the pipeline totals
//! (`lane_opt_instrs_before`/`_after`) feed `LaneStats`.

mod const_fold;
mod copy_prop;
mod cse;
mod dce;
mod select_flatten;

use super::tape::{Instr, Reg, Tape};
use musa_hdl::SymbolId;
use std::collections::BTreeSet;

pub(crate) use dce::DeadCode;

/// One semantics-preserving rewrite over a tape. Passes may leave dead
/// instructions behind (the final [`DeadCode`] pass sweeps them); they
/// must keep the stream in SSA form (operands reference lower indices).
pub(crate) trait Pass {
    /// Counter-friendly name (`lane_opt_<name>` in traces).
    fn name(&self) -> &'static str;
    /// Rewrites the tape in place, returning the number of rewrites
    /// applied (0 = fixpoint reached for this pass).
    fn run(&self, tape: &mut Tape) -> usize;
}

/// The standard pass catalog, iterated to a bounded fixpoint per tape
/// with unit-level dead-store pruning between rounds.
pub(crate) struct PassPipeline {
    passes: Vec<Box<dyn Pass>>,
    /// Fixpoint bound: rounds stop early when no pass fires.
    max_rounds: usize,
}

/// Instruction counts around one pipeline run, per tape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OptCounts {
    /// Instructions entering the pipeline (both tapes).
    pub before: usize,
    /// Instructions surviving DCE + compaction (both tapes).
    pub after: usize,
}

impl PassPipeline {
    /// The default catalog in canonical order: folding first (it feeds
    /// the propagators), then propagation and flattening, then CSE over
    /// the cleaned stream.
    pub(crate) fn standard() -> Self {
        Self {
            passes: vec![
                Box::new(const_fold::ConstFold),
                Box::new(copy_prop::CopyProp),
                Box::new(select_flatten::SelectFlatten),
                Box::new(cse::Cse),
            ],
            max_rounds: 4,
        }
    }

    /// Optimizes one compiled unit — the comb/edge tape pair — in
    /// place. The store roots are the symbols some tape loads back plus
    /// the entity outputs (the only state the diff scan reads), so
    /// stores of purely internal settle values drop entirely.
    pub(crate) fn optimize(
        &self,
        comb: &mut Tape,
        edge: &mut Tape,
        outputs: &[SymbolId],
    ) -> OptCounts {
        let _trace = musa_trace::span("lane_opt");
        let counts = OptCounts {
            before: comb.instrs.len() + edge.instrs.len(),
            after: 0,
        };
        // Outer loop: dead-store pruning can strand instructions, and
        // DCE can remove Loads that were keeping stores alive — iterate
        // the unit until neither side budges (bounded for safety).
        for _ in 0..3 {
            let pruned = prune_dead_stores(comb, edge, outputs);
            let mut fired = pruned;
            for tape in [&mut *comb, &mut *edge] {
                for _ in 0..self.max_rounds {
                    let mut round = 0;
                    for pass in &self.passes {
                        let n = pass.run(tape);
                        if n > 0 {
                            musa_trace::count(pass.name(), n as u64);
                        }
                        round += n;
                    }
                    fired += round;
                    if round == 0 {
                        break;
                    }
                }
                let removed = DeadCode.run(tape);
                if removed > 0 {
                    musa_trace::count(DeadCode.name(), removed as u64);
                }
                fired += removed;
            }
            if fired == 0 {
                break;
            }
        }
        let counts = OptCounts {
            before: counts.before,
            after: comb.instrs.len() + edge.instrs.len(),
        };
        musa_trace::count("lane_opt_instrs_before", counts.before as u64);
        musa_trace::count("lane_opt_instrs_after", counts.after as u64);
        counts
    }
}

/// Unit-level dead-store elimination: a `(symbol, reg)` write-back is
/// observable only if some tape `Load`s the symbol on a later sweep or
/// the symbol is a primary output (the group runner's XOR diff scan
/// reads outputs straight from VM state). Everything else — e.g. every
/// internal signal of a purely combinational circuit, recomputed from
/// scratch each settle — is a dead 512-byte copy per step.
///
/// Returns the number of stores removed.
fn prune_dead_stores(comb: &mut Tape, edge: &mut Tape, outputs: &[SymbolId]) -> usize {
    let mut needed: BTreeSet<u32> = outputs.iter().map(|s| s.0).collect();
    for tape in [&*comb, &*edge] {
        for instr in &tape.instrs {
            if let Instr::Load { sym } = instr {
                needed.insert(*sym);
            }
        }
    }
    let mut removed = 0;
    for tape in [&mut *comb, &mut *edge] {
        let before = tape.stores.len();
        tape.stores.retain(|(sym, _)| needed.contains(sym));
        removed += before - tape.stores.len();
    }
    if removed > 0 {
        musa_trace::count("lane_opt_dead_store", removed as u64);
    }
    removed
}

/// Visits every operand register of an instruction mutably — the shared
/// traversal all alias-rewriting passes use.
pub(crate) fn for_each_operand(instr: &mut Instr, mut f: impl FnMut(&mut Reg)) {
    match instr {
        Instr::Load { .. } | Instr::Const { .. } => {}
        Instr::MaskSel { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::Sel { cond, a, b } => {
            f(cond);
            f(a);
            f(b);
        }
        Instr::Not { a, .. }
        | Instr::Reduce { a, .. }
        | Instr::Shift { a, .. }
        | Instr::Slice { a, .. } => f(a),
        Instr::Bin { a, b, .. } | Instr::Concat { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::DynGet { base, index, .. } => {
            f(base);
            f(index);
        }
        Instr::DynSet { cur, index, bit, .. } => {
            f(cur);
            f(index);
            f(bit);
        }
        Instr::WithSlice { cur, v, .. } => {
            f(cur);
            f(v);
        }
    }
}

/// Applies a fully-resolved alias map to every operand and store of the
/// tape. `alias[r] == r` means "keep"; passes build the map so targets
/// are themselves fully resolved (lower indices only), preserving SSA.
pub(crate) fn apply_aliases(tape: &mut Tape, alias: &[Reg]) {
    for instr in &mut tape.instrs {
        for_each_operand(instr, |r| *r = alias[*r as usize]);
    }
    for (_, reg) in &mut tape.stores {
        *reg = alias[*reg as usize];
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for the per-pass unit tests: run a tape on the
    //! reference interpreter and compare observable state.

    use super::super::tape::{LaneVm, LaneWord, Tape, LANES};

    /// Runs `tape` against fresh state and returns the post-commit
    /// symbol state — the only thing the group runner observes.
    pub(crate) fn observable(tape: &Tape, init: &[LaneWord]) -> Vec<LaneWord> {
        let mut vm = LaneVm::new(init, tape.instrs.len(), 0);
        vm.run(tape);
        vm.state
    }

    /// Asserts two tapes are observably identical on the given state.
    pub(crate) fn assert_same_behavior(a: &Tape, b: &Tape, init: &[LaneWord]) {
        assert_eq!(observable(a, init), observable(b, init), "tapes diverge");
    }

    /// A varied non-trivial lane word for differential pass tests.
    pub(crate) fn ramp(seed: u64) -> LaneWord {
        let mut w = [0u64; LANES];
        let mut x = seed | 1;
        for lane in &mut w {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *lane = x >> 16;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::super::tape::{Instr, Tape, LANES};
    use super::testutil::ramp;
    use super::*;
    use musa_hdl::ast::BinOp;

    #[test]
    fn pipeline_shrinks_a_foldable_tape_and_preserves_behavior() {
        // y = (1 and 1) and x  — folds to y = 1 and x, then CSE/DCE
        // compact the survivors.
        let tape = Tape {
            instrs: vec![
                Instr::Const { value: 1 },
                Instr::Const { value: 1 },
                Instr::Bin { op: BinOp::And, a: 0, b: 1, width: 1 },
                Instr::Load { sym: 0 },
                Instr::Bin { op: BinOp::And, a: 2, b: 3, width: 1 },
            ],
            stores: vec![(1, 4)],
        };
        let mut comb = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        let mut edge = Tape::default();
        let counts =
            PassPipeline::standard().optimize(&mut comb, &mut edge, &[SymbolId(1)]);
        assert!(counts.after < counts.before, "{counts:?}");
        let init = [ramp(3) .map(|v| v & 1), [0; LANES]];
        testutil::assert_same_behavior(&tape, &comb, &init);
    }

    #[test]
    fn dead_stores_of_unread_symbols_drop_but_outputs_stay() {
        // Symbol 1 is an internal settle value nobody loads; symbol 2
        // is the output. Only the output store survives.
        let mut comb = Tape {
            instrs: vec![Instr::Load { sym: 0 }, Instr::Not { a: 0, width: 4 }],
            stores: vec![(1, 1), (2, 1)],
        };
        let mut edge = Tape::default();
        let removed = prune_dead_stores(&mut comb, &mut edge, &[SymbolId(2)]);
        assert_eq!(removed, 1);
        assert_eq!(comb.stores, vec![(2, 1)]);
    }

    #[test]
    fn stores_loaded_by_the_other_tape_survive() {
        // The edge tape loads symbol 1 (a register feedback), so the
        // comb store of symbol 1 must stay even though it's no output.
        let mut comb = Tape {
            instrs: vec![Instr::Load { sym: 0 }],
            stores: vec![(1, 0)],
        };
        let mut edge = Tape {
            instrs: vec![Instr::Load { sym: 1 }],
            stores: vec![(3, 0)],
        };
        let removed = prune_dead_stores(&mut comb, &mut edge, &[SymbolId(2)]);
        assert_eq!(removed, 1, "only the unread edge store drops");
        assert_eq!(comb.stores, vec![(1, 0)]);
        assert!(edge.stores.is_empty());
    }
}
