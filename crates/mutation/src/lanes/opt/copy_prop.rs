//! Copy and select propagation.
//!
//! Collapses selects that cannot actually select anything to their
//! source register, rewriting every later use through an alias map:
//!
//! * `Sel` whose condition is a compile-time constant takes the decided
//!   arm (conditions broadcast, so all lanes agree);
//! * `Sel`/`MaskSel` with identical arms is the arm;
//! * `MaskSel` with an empty mask is its `b` arm, with an all-lanes
//!   mask its `a` arm (the compiler never emits these, but upstream
//!   passes can expose them).
//!
//! The dead select bodies are left for DCE; alias targets always point
//! at lower indices, so the stream stays SSA.

use super::super::tape::{Instr, Reg, Tape};
use super::{apply_aliases, Pass};

pub(crate) struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "lane_opt_copy_prop"
    }

    fn run(&self, tape: &mut Tape) -> usize {
        let n = tape.instrs.len();
        let mut alias: Vec<Reg> = (0..n as Reg).collect();
        let mut fired = 0;
        for i in 0..n {
            // Resolve operands through the aliases discovered so far
            // (targets are fully resolved, so one hop suffices).
            let mut instr = tape.instrs[i].clone();
            super::for_each_operand(&mut instr, |r| *r = alias[*r as usize]);
            tape.instrs[i] = instr;
            let target = match tape.instrs[i] {
                Instr::Sel { cond, a, b } => {
                    if a == b {
                        Some(a)
                    } else if let Instr::Const { value } = tape.instrs[cond as usize] {
                        Some(if value != 0 { a } else { b })
                    } else {
                        None
                    }
                }
                Instr::MaskSel { mask, a, b } => {
                    if a == b {
                        Some(a)
                    } else if mask == 0 {
                        Some(b)
                    } else if mask == u64::MAX {
                        Some(a)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(t) = target {
                alias[i] = t;
                fired += 1;
            }
        }
        if fired > 0 {
            apply_aliases(tape, &alias);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_same_behavior, ramp};
    use super::*;
    use musa_hdl::ast::BinOp;

    #[test]
    fn constant_condition_and_identical_arms_collapse() {
        // r3 = Sel(const 1, r0, r1) -> r0;  r4 = MaskSel(m, r0, r0) -> r0.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Const { value: 1 },
                Instr::Sel { cond: 2, a: 0, b: 1 },
                Instr::MaskSel { mask: 0b10, a: 3, b: 3 },
                Instr::Bin { op: BinOp::Xor, a: 4, b: 1, width: 8 },
            ],
            stores: vec![(0, 5)],
        };
        let original = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        assert_eq!(CopyProp.run(&mut tape), 2);
        // The XOR now reads the load directly.
        assert_eq!(tape.instrs[5], Instr::Bin { op: BinOp::Xor, a: 0, b: 1, width: 8 });
        let init = [ramp(1).map(|v| v & 0xff), ramp(2).map(|v| v & 0xff)];
        assert_same_behavior(&original, &tape, &init);
    }

    #[test]
    fn live_selects_do_not_fire() {
        // A runtime condition with distinct arms, and a real mutation
        // mask with distinct arms: both must survive.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Sel { cond: 0, a: 0, b: 1 },
                Instr::MaskSel { mask: 0b10, a: 0, b: 1 },
            ],
            stores: vec![(0, 2), (1, 3)],
        };
        let original = tape.instrs.clone();
        assert_eq!(CopyProp.run(&mut tape), 0);
        assert_eq!(tape.instrs, original);
    }
}
