//! Dead-code elimination and register compaction.
//!
//! Marks live instructions backwards from the store roots (the only
//! observable effect of a sweep is its write-back list — the group
//! runner's output diff scan reads committed state, never scratch
//! registers), drops everything else, and renumbers the survivors
//! densely. Compaction is what shrinks the `LaneVm` scratch file: the
//! VM allocates one 512-byte lane word per instruction, so every
//! removed instruction saves both its evaluation *and* its register.

use super::super::tape::{Reg, Tape};
use super::{for_each_operand, Pass};

pub(crate) struct DeadCode;

impl Pass for DeadCode {
    fn name(&self) -> &'static str {
        "lane_opt_dce"
    }

    fn run(&self, tape: &mut Tape) -> usize {
        let n = tape.instrs.len();
        let mut live = vec![false; n];
        let mut stack: Vec<Reg> = tape.stores.iter().map(|&(_, reg)| reg).collect();
        while let Some(r) = stack.pop() {
            if std::mem::replace(&mut live[r as usize], true) {
                continue;
            }
            for_each_operand(&mut tape.instrs[r as usize], |op| stack.push(*op));
        }
        let dead = live.iter().filter(|&&l| !l).count();
        if dead == 0 {
            return 0;
        }
        // Renumber: survivor i moves to position rank[i].
        let mut rank = vec![0 as Reg; n];
        let mut next = 0 as Reg;
        let mut instrs = Vec::with_capacity(n - dead);
        for (i, instr) in std::mem::take(&mut tape.instrs).into_iter().enumerate() {
            if !live[i] {
                continue;
            }
            rank[i] = next;
            next += 1;
            instrs.push(instr);
        }
        for instr in &mut instrs {
            for_each_operand(instr, |r| *r = rank[*r as usize]);
        }
        tape.instrs = instrs;
        for (_, reg) in &mut tape.stores {
            *reg = rank[*reg as usize];
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::super::super::tape::Instr;
    use super::super::testutil::{assert_same_behavior, ramp};
    use super::*;
    use musa_hdl::ast::BinOp;

    #[test]
    fn unreachable_instrs_drop_and_registers_compact() {
        // r1 and r3 are dead (nothing stores them or feeds a store).
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },                              // live
                Instr::Not { a: 0, width: 4 },                       // dead
                Instr::Const { value: 3 },                           // live
                Instr::Bin { op: BinOp::Add, a: 1, b: 2, width: 4 }, // dead
                Instr::Bin { op: BinOp::Xor, a: 0, b: 2, width: 4 }, // live
            ],
            stores: vec![(0, 4)],
        };
        let original = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        assert_eq!(DeadCode.run(&mut tape), 2);
        assert_eq!(
            tape.instrs,
            vec![
                Instr::Load { sym: 0 },
                Instr::Const { value: 3 },
                Instr::Bin { op: BinOp::Xor, a: 0, b: 1, width: 4 },
            ]
        );
        assert_eq!(tape.stores, vec![(0, 2)]);
        assert_same_behavior(&original, &tape, &[ramp(21).map(|v| v & 0xf)]);
    }

    #[test]
    fn fully_live_tapes_are_untouched() {
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Not { a: 0, width: 4 },
            ],
            stores: vec![(0, 1)],
        };
        let before = tape.instrs.clone();
        assert_eq!(DeadCode.run(&mut tape), 0);
        assert_eq!(tape.instrs, before);
    }
}
