//! Select-chain flattening.
//!
//! The predicated control flow emits chains of selects: consecutive
//! assignments to one symbol under one guard nest same-condition
//! `Sel`s, and several mutants on one site chain `MaskSel`s. Two local
//! rewrites shorten them:
//!
//! * **Same-guard nesting** — `Sel(c, a, Sel(c, x, y))`: when `c`
//!   holds, the inner select is dead; when it doesn't, it yields `y` —
//!   so the outer `b` arm can read `y` directly (symmetrically, an
//!   inner same-condition select in the `a` arm reads `x`). Sound for
//!   *any* runtime condition because both selects test the identical
//!   per-lane word.
//! * **Mask algebra** — `MaskSel(m, a, MaskSel(m2, a2, b2))`: lanes in
//!   `m` never see the inner select, so if `m2 ⊆ m` the `b` arm skips
//!   to `b2`; if the arms agree (`a == a2`) the two merge into one
//!   `MaskSel(m | m2, a, b2)`. On the `a` side, disjoint masks skip to
//!   `b2` and covering masks to `a2`.
//!
//! Rewrites edit operand fields in place; orphaned inner selects fall
//! to DCE.

use super::super::tape::{Instr, Tape};
use super::Pass;

pub(crate) struct SelectFlatten;

impl Pass for SelectFlatten {
    fn name(&self) -> &'static str {
        "lane_opt_select_flatten"
    }

    fn run(&self, tape: &mut Tape) -> usize {
        let mut fired = 0;
        for i in 0..tape.instrs.len() {
            loop {
                let rewritten = match tape.instrs[i] {
                    Instr::Sel { cond, a, b } => {
                        if let Instr::Sel { cond: c2, b: y, .. } = tape.instrs[b as usize] {
                            if c2 == cond && y != b {
                                tape.instrs[i] = Instr::Sel { cond, a, b: y };
                                true
                            } else {
                                false
                            }
                        } else if let Instr::Sel { cond: c2, a: x, .. } =
                            tape.instrs[a as usize]
                        {
                            if c2 == cond && x != a {
                                tape.instrs[i] = Instr::Sel { cond, a: x, b };
                                true
                            } else {
                                false
                            }
                        } else {
                            false
                        }
                    }
                    Instr::MaskSel { mask, a, b } => {
                        if let Instr::MaskSel { mask: m2, a: a2, b: b2 } =
                            tape.instrs[b as usize]
                        {
                            if a2 == a {
                                // Same taken value: one wider select.
                                tape.instrs[i] =
                                    Instr::MaskSel { mask: mask | m2, a, b: b2 };
                                true
                            } else if m2 & !mask == 0 && b2 != b {
                                // Inner mask shadowed entirely by ours.
                                tape.instrs[i] = Instr::MaskSel { mask, a, b: b2 };
                                true
                            } else {
                                false
                            }
                        } else if let Instr::MaskSel { mask: m2, a: a2, b: b2 } =
                            tape.instrs[a as usize]
                        {
                            if m2 & mask == 0 && b2 != a {
                                // Our lanes all fall through the inner select.
                                tape.instrs[i] = Instr::MaskSel { mask, a: b2, b };
                                true
                            } else if !m2 & mask == 0 && a2 != a {
                                // Our lanes all take the inner select.
                                tape.instrs[i] = Instr::MaskSel { mask, a: a2, b };
                                true
                            } else {
                                false
                            }
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if !rewritten {
                    break;
                }
                fired += 1;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_same_behavior, ramp};
    use super::*;
    use crate::lanes::tape::LANES;
    use musa_hdl::ast::BinOp;

    #[test]
    fn same_guard_nested_sel_short_circuits() {
        // Two guarded assignments to one symbol: the second select's
        // fall-through arm is the first select — same guard, so it can
        // skip straight to the original value.
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },          // guard
                Instr::Load { sym: 1 },          // original value
                Instr::Const { value: 1 },       // new1
                Instr::Sel { cond: 0, a: 2, b: 1 },
                Instr::Const { value: 2 },       // new2
                Instr::Sel { cond: 0, a: 4, b: 3 },
            ],
            stores: vec![(1, 5)],
        };
        let original = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        assert_eq!(SelectFlatten.run(&mut tape), 1);
        assert_eq!(tape.instrs[5], Instr::Sel { cond: 0, a: 4, b: 1 });
        let init = [ramp(9).map(|v| v & 1), ramp(4).map(|v| v & 3)];
        assert_same_behavior(&original, &tape, &init);
    }

    #[test]
    fn masksel_chain_with_shared_arm_merges_masks() {
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Const { value: 1 },
                Instr::MaskSel { mask: 0b010, a: 1, b: 0 },
                Instr::MaskSel { mask: 0b100, a: 1, b: 2 },
            ],
            stores: vec![(0, 3)],
        };
        let original = Tape { instrs: tape.instrs.clone(), stores: tape.stores.clone() };
        assert_eq!(SelectFlatten.run(&mut tape), 1);
        assert_eq!(tape.instrs[3], Instr::MaskSel { mask: 0b110, a: 1, b: 0 });
        assert_same_behavior(&original, &tape, &[ramp(5)]);
    }

    #[test]
    fn different_guards_and_overlapping_masks_do_not_fire() {
        let mut tape = Tape {
            instrs: vec![
                Instr::Load { sym: 0 },
                Instr::Load { sym: 1 },
                Instr::Bin { op: BinOp::Eq, a: 0, b: 1, width: 1 },
                Instr::Sel { cond: 0, a: 1, b: 0 },
                Instr::Sel { cond: 2, a: 1, b: 3 }, // different cond: keep
                Instr::Const { value: 3 },
                Instr::MaskSel { mask: 0b010, a: 5, b: 0 },
                Instr::MaskSel { mask: 0b110, a: 0, b: 6 }, // m2 ⊄ shadow? 0b010 ⊆ 0b110 but b2 path fine
            ],
            stores: vec![(0, 4), (1, 7)],
        };
        let before = tape.instrs.clone();
        let fired = SelectFlatten.run(&mut tape);
        // Only the genuinely shadowed inner mask rewrite may fire (the
        // last MaskSel's inner mask 0b010 is covered by 0b110, so its b
        // arm skips to the load); the different-cond Sel must not.
        assert_eq!(tape.instrs[4], before[4], "different guard untouched");
        assert_eq!(fired, 1);
        assert_eq!(tape.instrs[7], Instr::MaskSel { mask: 0b110, a: 0, b: 0 });
        assert_same_behavior(
            &Tape { instrs: before, stores: tape.stores.clone() },
            &tape,
            &[ramp(7).map(|v| v & 1), [3u64; LANES]],
        );
    }
}
