//! Entity → lane-tape compiler.
//!
//! Compiles one checked entity **once per lane group** into two flat
//! tapes — the combinational settle and the clock edge — with every
//! mutation site of the group folded in as a mask-driven lane select
//! ([`Instr::MaskSel`]). Control flow is predicated away: `if`/`case`
//! arms become per-lane guards combined with [`Instr::Sel`], `for`
//! loops are unrolled (bounds are constant), and blocking/non-blocking
//! assignment semantics are reproduced by the same env/overlay
//! discipline the scalar [`musa_hdl::Simulator`] uses, so every lane is
//! bit-identical to a scalar run of the corresponding mutant.
//!
//! Mutants whose rewrite cannot be expressed in the tape (a site the
//! entity does not contain, a rewrite that does not fit its node, or a
//! replacement that the scalar engine would reject as stillborn) are
//! reported in [`Compiled::fallback`]; the group runner executes those
//! through the scalar engine so observable behaviour — including
//! errors — matches the scalar path exactly.

use super::exec::{lower_unit, ExecUnit};
use super::tape::{Instr, LaneWord, Reg, Tape, LANES};
use crate::execute::OptLevel;
use crate::mutant::{Mutant, Rewrite};
use musa_hdl::ast::*;
use musa_hdl::{Bits, CheckedDesign, EntityInfo, SymbolId, SymbolKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The executable payload of a [`Compiled`] group — which engine runs
/// the sweeps is the [`OptLevel`] decision.
#[derive(Debug)]
pub(crate) enum Executable {
    /// `--opt off`: the compiler's raw SSA tapes, run on the
    /// [`super::tape::LaneVm::run`] reference interpreter — the
    /// pre-pipeline engine, kept live as the baseline the
    /// `lanes-noopt` bench cells and the differential suites measure
    /// the optimizer against.
    Raw {
        /// The combinational settle (runs on reset, after inputs, after edge).
        comb: Tape,
        /// The clock edge: next-state computation plus register commit.
        edge: Tape,
    },
    /// `--opt full`: pass-pipeline output lowered to fused executor
    /// tapes with a shared constant pool.
    Lowered {
        /// The combinational settle (runs on reset, after inputs, after edge).
        comb: ExecUnit,
        /// The clock edge: next-state computation plus register commit.
        edge: ExecUnit,
        /// Constant pool shared by both tapes, seeded once per simulation.
        consts: Vec<u64>,
    },
}

/// A group compiled for lane execution — the output of the
/// compile → optimize → execute-lowering pipeline (the last two stages
/// are skipped at [`OptLevel::Off`]).
#[derive(Debug)]
pub(crate) struct Compiled {
    /// The executable tapes, shaped by the [`OptLevel`].
    pub exec: Executable,
    /// Power-on lanes per symbol (constants carry per-lane CR values).
    pub init: Vec<LaneWord>,
    /// Data-input symbols in declaration order, with their widths (the
    /// step protocol asserts them exactly like `Simulator::set_input`).
    pub data_inputs: Vec<(SymbolId, u32)>,
    /// Output symbols in declaration order.
    pub outputs: Vec<SymbolId>,
    /// `true` when the entity has no clocked process.
    pub combinational: bool,
    /// Scratch registers needed (constant pool plus the widest lowered
    /// lane stream at `Full`; the longest raw tape at `Off`).
    pub scratch: usize,
    /// Scalar scratch registers (pool plus the widest scalar prefix at
    /// `Full`; zero at `Off` — the interpreter has no scalar file).
    pub scratch_scalar: usize,
    /// SSA instructions out of the compiler, both tapes.
    pub instrs_before: usize,
    /// Executor ops after the pass pipeline, pooling and fusion
    /// (`instrs_before` again at [`OptLevel::Off`]).
    pub instrs_after: usize,
    /// Group-local indices of mutants the tape cannot represent; the
    /// runner executes these through the scalar engine. Ascending.
    pub fallback: Vec<usize>,
}

/// Why a group could not be compiled at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompileError {
    /// The union of the group's mutated read dependencies has a
    /// combinational cycle; the group must be split.
    Cycle,
    /// The design has no entity with the requested name.
    EntityNotFound,
}

/// The group-independent part of a lane compile — the *reference tape
/// prefix* shared by every ≤63-mutant group of one population.
///
/// Computed once per population (or once per [`crate::LanePlan`]) and
/// handed to every [`compile_group`] call, so per-group compiles no
/// longer re-walk the whole entity: the base read-dependency sets, the
/// base combinational evaluation order and the power-on lane words are
/// reused, and a group only pays for what its own mutants change (`VR`
/// read edges, `CR` constant lanes, the mutated statement tapes).
#[derive(Debug)]
pub(crate) struct BaseCompile {
    /// Per-comb-process read sets over ports and signals (the inputs to
    /// the Kahn scheduling that `VR` rewrites extend per group).
    reads: HashMap<usize, BTreeSet<SymbolId>>,
    /// Topological order of the comb processes under `reads` alone —
    /// valid as-is for any group that adds no read edge.
    order: Vec<usize>,
    /// Power-on lane words before any `CR` constant lane diverges.
    init: Vec<LaneWord>,
}

impl BaseCompile {
    /// Builds the shared prefix for one entity.
    pub(crate) fn new(
        checked: &CheckedDesign,
        entity_name: &str,
    ) -> Result<Self, CompileError> {
        let (entity, info) = checked.entity(entity_name).ok_or(CompileError::EntityNotFound)?;
        let reads = base_reads(entity, info);
        // A checked design schedules its comb processes acyclically, so
        // the base graph (no mutants) always has a topological order.
        let order = kahn_order(entity, info, &reads).ok_or(CompileError::Cycle)?;
        let init = info
            .symbols
            .iter()
            .map(|s| [s.init & Bits::mask_of(s.width); LANES])
            .collect();
        Ok(Self { reads, order, init })
    }
}

/// Mutation sites of one group, keyed the way the compiler meets them.
#[derive(Default)]
struct Sites {
    /// Expression rewrites (LOR/ROR/AOR/VR/CVR/CR-literal/UOI/UOD).
    expr: HashMap<NodeId, Vec<(u32, Rewrite)>>,
    /// SDL lanes per assignment statement.
    stmt_delete: HashMap<NodeId, u64>,
    /// CSR lanes per `if`-arm condition.
    cond_stuck: HashMap<NodeId, Vec<(u32, bool)>>,
    /// CR lanes per case arm: `(lane, choice index, new value)`.
    case_choice: HashMap<NodeId, Vec<(u32, usize, u64)>>,
    /// CR lanes per constant declaration.
    const_decl: HashMap<NodeId, Vec<(u32, u64)>>,
}

impl Sites {
    fn build(checked: &CheckedDesign, entity: &Entity, group: &[&Mutant]) -> Self {
        let mut sites = Sites::default();
        for (slot, mutant) in group.iter().enumerate() {
            let lane = slot as u32 + 1;
            match &mutant.rewrite {
                // An SDL inside a combinational process can violate the
                // checker's full-assignment rule — the scalar engine
                // rejects such a mutant as stillborn at apply time.
                // Compile it in only when it passes the same acceptance
                // test; otherwise the lane stays unapplied and the group
                // runner's scalar fallback reproduces the exact error.
                // (Clocked-process deletions are always legal: registers
                // hold their value.)
                Rewrite::DeleteStmt if sdl_is_tape_safe(checked, entity, mutant) => {
                    *sites.stmt_delete.entry(mutant.site).or_insert(0) |= 1 << lane;
                }
                Rewrite::DeleteStmt => {}
                Rewrite::StuckCondition { value } => {
                    sites.cond_stuck.entry(mutant.site).or_default().push((lane, *value));
                }
                Rewrite::CaseChoice { index, value } => sites
                    .case_choice
                    .entry(mutant.site)
                    .or_default()
                    .push((lane, *index, *value)),
                Rewrite::ConstDecl { value } => sites
                    .const_decl
                    .entry(mutant.site)
                    .or_default()
                    .push((lane, *value)),
                other => sites
                    .expr
                    .entry(mutant.site)
                    .or_default()
                    .push((lane, other.clone())),
            }
        }
        sites
    }
}

/// Whether deleting this statement survives re-checking. Only the
/// full-assignment rule can reject an SDL (no names, widths or drivers
/// change), and it only applies to combinational processes — so clocked
/// deletions pass outright and combinational ones take the scalar
/// engine's own acceptance test (one apply + re-check per group
/// compile; comb-SDL mutants are a small slice of any population).
fn sdl_is_tape_safe(checked: &CheckedDesign, entity: &Entity, mutant: &Mutant) -> bool {
    let in_comb = entity.processes.iter().any(|p| {
        matches!(p.kind, ProcessKind::Comb) && {
            let mut found = false;
            walk_stmts(&p.body, &mut |s| found |= s.id() == mutant.site);
            found
        }
    });
    !in_comb || mutant.apply(checked).is_ok()
}

/// Child-register context handed to the mutation-site folder so `LOR`
/// reuses the already-compiled operands and `UOD` the inner argument.
enum Ctx {
    Plain,
    Not { arg: Reg },
    Binary { a: Reg, b: Reg },
}

pub(crate) fn compile_group(
    checked: &CheckedDesign,
    entity_name: &str,
    group: &[&Mutant],
    base: &BaseCompile,
    opt: OptLevel,
) -> Result<Compiled, CompileError> {
    let (entity, info) = checked.entity(entity_name).ok_or(CompileError::EntityNotFound)?;
    debug_assert!(group.len() < LANES, "at most {} mutants per group", LANES - 1);
    let order = comb_order_union(entity, info, group, base)?;
    let mut compiler = Compiler::new(entity, info, Sites::build(checked, entity, group));
    let init = compiler.build_init(&base.init);
    let mut comb = compiler.compile_comb(&order);
    let mut edge = compiler.compile_edge();
    let fallback: Vec<usize> = (0..group.len())
        .filter(|slot| compiler.applied & (1u64 << (slot + 1)) == 0)
        .collect();
    #[cfg(debug_assertions)]
    {
        super::verify::verify_tape(&comb, init.len());
        super::verify::verify_tape(&edge, init.len());
    }
    let instrs_before = comb.instrs.len() + edge.instrs.len();
    let (exec, scratch, scratch_scalar, instrs_after) = match opt {
        OptLevel::Off => {
            let scratch = comb.instrs.len().max(edge.instrs.len());
            (Executable::Raw { comb, edge }, scratch, 0, instrs_before)
        }
        OptLevel::Full => {
            super::opt::PassPipeline::standard().optimize(&mut comb, &mut edge, &info.outputs);
            // Re-check the rewritten tapes: every pass must leave the
            // same structural invariants the compiler established.
            #[cfg(debug_assertions)]
            {
                super::verify::verify_tape(&comb, init.len());
                super::verify::verify_tape(&edge, init.len());
            }
            let lowered = lower_unit(&comb, &edge, &init);
            #[cfg(debug_assertions)]
            {
                for unit in [&lowered.comb, &lowered.edge] {
                    super::verify::verify_unit(
                        unit,
                        init.len(),
                        lowered.consts.len(),
                        lowered.scratch_scalar,
                    );
                }
            }
            let exec = Executable::Lowered {
                comb: lowered.comb,
                edge: lowered.edge,
                consts: lowered.consts,
            };
            (exec, lowered.scratch, lowered.scratch_scalar, lowered.ops_total)
        }
    };
    Ok(Compiled {
        exec,
        init,
        data_inputs: info
            .data_inputs
            .iter()
            .map(|&sym| (sym, info.symbol(sym).width))
            .collect(),
        outputs: info.outputs.clone(),
        combinational: info.is_combinational(),
        scratch,
        scratch_scalar,
        instrs_before,
        instrs_after,
        fallback,
    })
}

/// Evaluation order for the combinational processes under the **union**
/// of the original read dependencies and every `VR` rewrite in the
/// group. A topological order of the union graph is simultaneously
/// valid for every lane (each lane's graph is a subgraph), so one order
/// serves the reference and all mutants; the settled values are the
/// unique fixpoint and cannot depend on tie-breaking.
fn comb_order_union(
    entity: &Entity,
    info: &EntityInfo,
    group: &[&Mutant],
    base: &BaseCompile,
) -> Result<Vec<usize>, CompileError> {
    // VR rewrites add one read edge each (inside the process that holds
    // the site); replacements by process variables never cross processes.
    let mut added: Vec<(usize, SymbolId)> = Vec::new();
    for mutant in group {
        let Rewrite::Ref { new } = &mutant.rewrite else { continue };
        let Some(sym) = info.symbol_by_name(new) else { continue };
        if !matches!(
            info.symbol(sym).kind,
            SymbolKind::PortIn { .. } | SymbolKind::PortOut | SymbolKind::Signal
        ) {
            continue;
        }
        for &i in base.reads.keys() {
            if base.reads[&i].contains(&sym) {
                continue; // edge already in the base graph
            }
            let mut found = false;
            walk_exprs(&entity.processes[i].body, &mut |e| found |= e.id() == mutant.site);
            if found {
                added.push((i, sym));
            }
        }
    }
    // No group edge beyond the base graph: the cached base order is the
    // union order.
    if added.is_empty() {
        return Ok(base.order.clone());
    }
    let mut reads = base.reads.clone();
    for (i, sym) in added {
        reads.entry(i).or_default().insert(sym);
    }
    kahn_order(entity, info, &reads).ok_or(CompileError::Cycle)
}

/// Per-comb-process read sets over ports and signals.
fn base_reads(entity: &Entity, info: &EntityInfo) -> HashMap<usize, BTreeSet<SymbolId>> {
    let mut reads: HashMap<usize, BTreeSet<SymbolId>> = HashMap::new();
    for (i, process) in entity.processes.iter().enumerate() {
        if !matches!(process.kind, ProcessKind::Comb) {
            continue;
        }
        let set = reads.entry(i).or_default();
        walk_exprs(&process.body, &mut |e| {
            if let Expr::Ref { id, .. } = e {
                if let Some(&sym) = info.resolved.get(id) {
                    if matches!(
                        info.symbol(sym).kind,
                        SymbolKind::PortIn { .. } | SymbolKind::PortOut | SymbolKind::Signal
                    ) {
                        set.insert(sym);
                    }
                }
            }
        });
    }
    reads
}

/// Kahn's algorithm over the comb processes, mirroring the checker's
/// scheduler. `None` when the graph cycles.
fn kahn_order(
    entity: &Entity,
    info: &EntityInfo,
    reads: &HashMap<usize, BTreeSet<SymbolId>>,
) -> Option<Vec<usize>> {
    let comb: Vec<usize> = entity
        .processes
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p.kind, ProcessKind::Comb))
        .map(|(i, _)| i)
        .collect();
    let mut dependents: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut in_degree: HashMap<usize, usize> = comb.iter().map(|&i| (i, 0)).collect();
    for &reader in &comb {
        for &sym in &reads[&reader] {
            if let Some(&writer) = info.drivers.get(&sym) {
                if writer != reader
                    && matches!(entity.processes[writer].kind, ProcessKind::Comb)
                {
                    dependents.entry(writer).or_default().push(reader);
                    *in_degree.get_mut(&reader).expect("reader registered") += 1;
                }
            }
        }
    }
    let mut ready: Vec<usize> = comb.iter().copied().filter(|i| in_degree[i] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(comb.len());
    while let Some(next) = ready.pop() {
        order.push(next);
        if let Some(deps) = dependents.get(&next) {
            for &d in deps {
                let deg = in_degree.get_mut(&d).expect("dependent registered");
                *deg -= 1;
                if *deg == 0 {
                    ready.push(d);
                }
            }
        }
    }
    (order.len() == comb.len()).then_some(order)
}

struct Compiler<'a> {
    entity: &'a Entity,
    info: &'a EntityInfo,
    sites: Sites,
    /// Lanes whose rewrite landed somewhere in the compiled entity.
    applied: u64,
    // ---- per-tape build state -------------------------------------------
    instrs: Vec<Instr>,
    stores: Vec<(u32, Reg)>,
    /// Committed values (wires in the comb tape; vars and loop indices).
    env: BTreeMap<SymbolId, Reg>,
    /// Staged writes of the clocked process being compiled.
    overlay: Option<BTreeMap<SymbolId, Reg>>,
    loads: BTreeMap<SymbolId, Reg>,
    consts: BTreeMap<u64, Reg>,
    current_process: usize,
    var_syms: HashMap<(usize, String), SymbolId>,
}

impl<'a> Compiler<'a> {
    fn new(entity: &'a Entity, info: &'a EntityInfo, sites: Sites) -> Self {
        let mut var_syms = HashMap::new();
        for (i, sym) in info.symbols.iter().enumerate() {
            if let SymbolKind::Var { process } = sym.kind {
                var_syms.insert((process, sym.name.clone()), SymbolId(i as u32));
            }
        }
        Self {
            entity,
            info,
            sites,
            applied: 0,
            instrs: Vec::new(),
            stores: Vec::new(),
            env: BTreeMap::new(),
            overlay: None,
            loads: BTreeMap::new(),
            consts: BTreeMap::new(),
            current_process: 0,
            var_syms,
        }
    }

    /// Power-on lanes: every symbol broadcasts its declared init value
    /// (cached in the shared [`BaseCompile`]); CR mutants of constant
    /// declarations diverge their lane here.
    fn build_init(&mut self, base: &[LaneWord]) -> Vec<LaneWord> {
        let mut init: Vec<LaneWord> = base.to_vec();
        for cst in &self.entity.consts {
            let Some(list) = self.sites.const_decl.get(&cst.id) else { continue };
            let Some(sym) = self.info.symbol_by_name(&cst.name.name) else { continue };
            let width = self.info.symbol(sym).width;
            for &(lane, value) in list {
                if width == 64 || value < (1u64 << width) {
                    init[sym.0 as usize][lane as usize] = value;
                    self.applied |= 1 << lane;
                }
            }
        }
        init
    }

    fn begin_tape(&mut self) {
        self.instrs.clear();
        self.stores.clear();
        self.env.clear();
        self.overlay = None;
        self.loads.clear();
        self.consts.clear();
    }

    fn take_tape(&mut self) -> Tape {
        Tape {
            instrs: std::mem::take(&mut self.instrs),
            stores: std::mem::take(&mut self.stores),
        }
    }

    fn compile_comb(&mut self, order: &[usize]) -> Tape {
        self.begin_tape();
        for &pidx in order {
            self.compile_process(pidx);
        }
        let env = std::mem::take(&mut self.env);
        for (sym, reg) in env {
            if matches!(
                self.info.symbol(sym).kind,
                SymbolKind::Signal | SymbolKind::PortOut
            ) {
                self.stores.push((sym.0, reg));
            }
        }
        self.take_tape()
    }

    fn compile_edge(&mut self) -> Tape {
        self.begin_tape();
        for pidx in self.info.seq_processes.clone() {
            self.overlay = Some(BTreeMap::new());
            self.compile_process(pidx);
            let overlay = self.overlay.take().expect("overlay set above");
            for (sym, reg) in overlay {
                self.stores.push((sym.0, reg));
            }
        }
        self.take_tape()
    }

    fn compile_process(&mut self, pidx: usize) {
        self.current_process = pidx;
        let process = &self.entity.processes[pidx];
        // Variables restart from their declared init each activation.
        for var in &process.vars {
            let sym = self.var_syms[&(pidx, var.name.name.clone())];
            let width = self.info.symbol(sym).width;
            let reg = self.konst(var.init & Bits::mask_of(width));
            self.env.insert(sym, reg);
        }
        self.stmts(&process.body, None);
    }

    // ---- emission helpers ----------------------------------------------

    fn emit(&mut self, instr: Instr) -> Reg {
        self.instrs.push(instr);
        (self.instrs.len() - 1) as Reg
    }

    fn konst(&mut self, value: u64) -> Reg {
        if let Some(&r) = self.consts.get(&value) {
            return r;
        }
        let r = self.emit(Instr::Const { value });
        self.consts.insert(value, r);
        r
    }

    fn and1(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit(Instr::Bin { op: BinOp::And, a, b, width: 1 })
    }

    fn or1(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit(Instr::Bin { op: BinOp::Or, a, b, width: 1 })
    }

    fn not1(&mut self, a: Reg) -> Reg {
        self.emit(Instr::Not { a, width: 1 })
    }

    fn width_of(&self, id: NodeId) -> u32 {
        self.info.widths[&id]
    }

    /// Reads a symbol with the scalar simulator's visibility rules:
    /// the clocked process's own staged writes first, then values
    /// committed earlier in this tape, then persistent state.
    fn read(&mut self, sym: SymbolId) -> Reg {
        if let Some(overlay) = &self.overlay {
            if matches!(
                self.info.symbol(sym).kind,
                SymbolKind::Signal | SymbolKind::PortOut
            ) {
                if let Some(&r) = overlay.get(&sym) {
                    return r;
                }
            }
        }
        if let Some(&r) = self.env.get(&sym) {
            return r;
        }
        if let Some(&r) = self.loads.get(&sym) {
            return r;
        }
        let r = self.emit(Instr::Load { sym: sym.0 });
        self.loads.insert(sym, r);
        r
    }

    fn write(&mut self, sym: SymbolId, reg: Reg) {
        let staged = matches!(
            self.info.symbol(sym).kind,
            SymbolKind::Signal | SymbolKind::PortOut
        );
        if staged {
            if let Some(overlay) = &mut self.overlay {
                overlay.insert(sym, reg);
                return;
            }
        }
        self.env.insert(sym, reg);
    }

    // ---- statements -----------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt], guard: Option<Reg>) {
        for stmt in stmts {
            self.stmt(stmt, guard);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, guard: Option<Reg>) {
        match stmt {
            Stmt::Assign { id, target, value, .. } => {
                let sym = self.info.resolved[&target.id];
                let width = self.info.symbol(sym).width;
                let new = match &target.sel {
                    None => self.expr(value),
                    Some(Select::Index(index)) => {
                        let ix = self.expr(index);
                        let bit = self.expr(value);
                        let cur = self.read(sym);
                        self.emit(Instr::DynSet { cur, index: ix, bit, width })
                    }
                    Some(Select::Slice { hi, lo }) => {
                        let v = self.expr(value);
                        let cur = self.read(sym);
                        self.emit(Instr::WithSlice { cur, v, hi: *hi, lo: *lo })
                    }
                };
                let committed = match guard {
                    None => new,
                    Some(g) => {
                        let cur = self.read(sym);
                        self.emit(Instr::Sel { cond: g, a: new, b: cur })
                    }
                };
                let stored = if let Some(&mask) = self.sites.stmt_delete.get(id) {
                    // SDL: deleted lanes keep the pre-statement value.
                    self.applied |= mask;
                    let cur = self.read(sym);
                    self.emit(Instr::MaskSel { mask, a: cur, b: committed })
                } else {
                    committed
                };
                self.write(sym, stored);
            }
            Stmt::If { arms, else_body, .. } => {
                let mut taken: Option<Reg> = None;
                for (cond, body) in arms {
                    let mut c = self.expr(cond);
                    // CSR can never be stillborn: the full-assignment
                    // analysis intersects the arms regardless of what the
                    // condition computes, and the replacement literal is
                    // width-1 like every condition — so compiling the
                    // stuck value in always preserves re-check parity.
                    if let Some(list) = self.sites.cond_stuck.get(&cond.id()).cloned() {
                        for (lane, value) in list {
                            let k = self.konst(u64::from(value));
                            c = self.emit(Instr::MaskSel { mask: 1 << lane, a: k, b: c });
                            self.applied |= 1 << lane;
                        }
                    }
                    let mut g = c;
                    if let Some(t) = taken {
                        let nt = self.not1(t);
                        g = self.and1(g, nt);
                    }
                    if let Some(outer) = guard {
                        g = self.and1(g, outer);
                    }
                    self.stmts(body, Some(g));
                    taken = Some(match taken {
                        None => c,
                        Some(t) => self.or1(t, c),
                    });
                }
                if let Some(body) = else_body {
                    let t = taken.expect("if has at least one arm");
                    let mut g = self.not1(t);
                    if let Some(outer) = guard {
                        g = self.and1(g, outer);
                    }
                    self.stmts(body, Some(g));
                }
            }
            Stmt::Case { subject, arms, default, .. } => {
                let subj = self.expr(subject);
                let sw = self.width_of(subject.id());
                // Re-check parity for CR on case choices: a replacement
                // that does not fit the subject width, or that collides
                // with any *other* choice of this statement, is stillborn
                // under the scalar engine — leave those lanes unapplied
                // so the scalar fallback reproduces the exact error.
                let all_choices: Vec<&[u64]> =
                    arms.iter().map(|arm| arm.choices.as_slice()).collect();
                let choice_ok = |arm_idx: usize, idx: usize, value: u64| -> bool {
                    let fits = sw == 64 || value < (1u64 << sw);
                    fits && !all_choices.iter().enumerate().any(|(ai, choices)| {
                        choices
                            .iter()
                            .enumerate()
                            .any(|(ci, &c)| c == value && !(ai == arm_idx && ci == idx))
                    })
                };
                let mut taken: Option<Reg> = None;
                for (arm_idx, arm) in arms.iter().enumerate() {
                    let choice_sites = self.sites.case_choice.get(&arm.id).cloned();
                    let mut matched: Option<Reg> = None;
                    for (index, &choice) in arm.choices.iter().enumerate() {
                        let mut k = self.konst(choice & Bits::mask_of(sw));
                        if let Some(list) = &choice_sites {
                            for &(lane, idx, value) in list {
                                if idx == index && choice_ok(arm_idx, idx, value) {
                                    let kv = self.konst(value);
                                    k = self.emit(Instr::MaskSel {
                                        mask: 1 << lane,
                                        a: kv,
                                        b: k,
                                    });
                                    self.applied |= 1 << lane;
                                }
                            }
                        }
                        let eq = self.emit(Instr::Bin { op: BinOp::Eq, a: subj, b: k, width: 1 });
                        matched = Some(match matched {
                            None => eq,
                            Some(m) => self.or1(m, eq),
                        });
                    }
                    let c = matched.expect("case arm has at least one choice");
                    let mut g = c;
                    if let Some(t) = taken {
                        let nt = self.not1(t);
                        g = self.and1(g, nt);
                    }
                    if let Some(outer) = guard {
                        g = self.and1(g, outer);
                    }
                    self.stmts(&arm.body, Some(g));
                    taken = Some(match taken {
                        None => c,
                        Some(t) => self.or1(t, c),
                    });
                }
                if let Some(body) = default {
                    let g = match (taken, guard) {
                        (Some(t), Some(outer)) => {
                            let nt = self.not1(t);
                            Some(self.and1(nt, outer))
                        }
                        (Some(t), None) => Some(self.not1(t)),
                        (None, outer) => outer,
                    };
                    self.stmts(body, g);
                }
            }
            Stmt::For { var, lo, hi, body, .. } => {
                let loop_sym = self.loop_symbol(body, &var.name);
                for i in *lo..=*hi {
                    if let Some(sym) = loop_sym {
                        let width = self.info.symbol(sym).width;
                        let reg = self.konst(i & Bits::mask_of(width));
                        self.env.insert(sym, reg);
                    }
                    self.stmts(body, guard);
                }
            }
            Stmt::Null { .. } => {}
        }
    }

    /// The loop index's symbol, found exactly as the scalar simulator
    /// finds it: through a resolved body reference.
    fn loop_symbol(&self, body: &[Stmt], name: &str) -> Option<SymbolId> {
        let mut found = None;
        walk_exprs(body, &mut |e| {
            if found.is_some() {
                return;
            }
            if let Expr::Ref { id, name: n } = e {
                if n.name == name {
                    if let Some(&sym) = self.info.resolved.get(id) {
                        if matches!(self.info.symbol(sym).kind, SymbolKind::LoopVar) {
                            found = Some(sym);
                        }
                    }
                }
            }
        });
        found
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Literal { id, value, .. } => {
                let w = self.width_of(*id);
                let orig = self.konst(value & Bits::mask_of(w));
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Ref { id, .. } => {
                let sym = self.info.resolved[id];
                let orig = self.read(sym);
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Index { base, index, .. } => {
                let b = self.expr(base);
                let ix = self.expr(index);
                let width = self.width_of(base.id());
                let orig = self.emit(Instr::DynGet { base: b, index: ix, width });
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Slice { base, hi, lo, .. } => {
                let a = self.expr(base);
                let orig = self.emit(Instr::Slice { a, hi: *hi, lo: *lo });
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Unary { id, op: UnaryOp::Not, arg } => {
                let a = self.expr(arg);
                let width = self.width_of(*id);
                let orig = self.emit(Instr::Not { a, width });
                self.expr_sites(e, orig, Ctx::Not { arg: a })
            }
            Expr::Binary { id, op, lhs, rhs } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let width = self.width_of(*id);
                let orig = self.emit(Instr::Bin { op: *op, a, b, width });
                self.expr_sites(e, orig, Ctx::Binary { a, b })
            }
            Expr::Reduce { op, arg, .. } => {
                let a = self.expr(arg);
                let width = self.width_of(arg.id());
                let orig = self.emit(Instr::Reduce { op: *op, a, width });
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Concat { lhs, rhs, .. } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let rhs_width = self.width_of(rhs.id());
                let orig = self.emit(Instr::Concat { a, b, rhs_width });
                self.expr_sites(e, orig, Ctx::Plain)
            }
            Expr::Shift { id, op, arg, amount } => {
                let a = self.expr(arg);
                let width = self.width_of(*id);
                let orig = self.emit(Instr::Shift { op: *op, a, amount: *amount, width });
                self.expr_sites(e, orig, Ctx::Plain)
            }
        }
    }

    /// Folds every rewrite addressing this node into a chain of
    /// mask-driven lane selects over the original value. Rewrites that
    /// do not fit the node (or would be stillborn) stay unapplied; the
    /// group runner routes those lanes through the scalar engine.
    fn expr_sites(&mut self, e: &Expr, orig: Reg, ctx: Ctx) -> Reg {
        let Some(list) = self.sites.expr.get(&e.id()).cloned() else {
            return orig;
        };
        let w = self.width_of(e.id());
        let mut acc = orig;
        for (lane, rewrite) in list {
            let mutated = match (&rewrite, &ctx) {
                (Rewrite::BinOp { new }, Ctx::Binary { a, b }) => {
                    Some(self.emit(Instr::Bin { op: *new, a: *a, b: *b, width: w }))
                }
                (Rewrite::InsertNot, _) => Some(self.emit(Instr::Not { a: orig, width: w })),
                (Rewrite::DeleteNot, Ctx::Not { arg }) => Some(*arg),
                (Rewrite::Ref { new }, _) if matches!(e, Expr::Ref { .. }) => {
                    self.resolve_replacement(new, w).map(|sym| self.read(sym))
                }
                (Rewrite::RefToConst { value, width }, _) if matches!(e, Expr::Ref { .. }) => {
                    if *width == w && (w == 64 || *value < (1u64 << w)) {
                        Some(self.konst(*value))
                    } else {
                        None
                    }
                }
                (Rewrite::Literal { value }, _) if matches!(e, Expr::Literal { .. }) => {
                    if w == 64 || *value < (1u64 << w) {
                        Some(self.konst(*value))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(m) = mutated {
                acc = self.emit(Instr::MaskSel { mask: 1 << lane, a: m, b: acc });
                self.applied |= 1 << lane;
            }
        }
        acc
    }

    /// Resolves a `VR` replacement name the way re-checking would:
    /// variables of the current process shadow top-level names. Returns
    /// `None` — leaving the lane to the scalar engine — when the name
    /// is unknown, the width differs, or the replacement would make a
    /// combinational process read a signal it drives (stillborn).
    fn resolve_replacement(&mut self, name: &str, width: u32) -> Option<SymbolId> {
        let sym = self
            .var_syms
            .get(&(self.current_process, name.to_string()))
            .copied()
            .or_else(|| self.info.symbol_by_name(name))?;
        let symbol = self.info.symbol(sym);
        if symbol.width != width {
            return None;
        }
        if matches!(symbol.kind, SymbolKind::PortIn { clock: true }) {
            return None; // clocks cannot be read as data
        }
        let comb_self_read = self.overlay.is_none()
            && self.info.drivers.get(&sym) == Some(&self.current_process)
            && matches!(
                self.entity.processes[self.current_process].kind,
                ProcessKind::Comb
            );
        if comb_self_read {
            return None;
        }
        Some(sym)
    }
}
