//! # musa-mutation — high-level mutation analysis for MiniHDL designs
//!
//! The mutation-testing engine the DATE'05 paper builds on: ten
//! VHDL-style mutation operators ([`MutationOperator`]), deterministic
//! mutant enumeration ([`generate_mutants`]), mutant application and
//! differential execution ([`execute_mutants`]), a budgeted
//! equivalent-mutant policy ([`classify_mutants`]) and the paper's
//! Mutation Score `MS = K/(M−E)` ([`MutationScore`]).
//!
//! Two execution engines grade populations with bit-identical results
//! (select one with [`Engine`] / [`execute_mutants_engine`]): the
//! scalar engine simulates one mutant per pass, while the bit-parallel
//! [`lanes`] engine packs up to 63 mutants plus the reference machine
//! into each pass — `⌈N/63⌉` simulation passes for a population of
//! `N`, composing multiplicatively with thread sharding.
//!
//! # Example: measuring a test set's mutation score
//!
//! ```
//! use musa_hdl::{parse, Bits, CheckedDesign};
//! use musa_mutation::{
//!     classify_mutants, execute_mutants, generate_mutants, EquivalencePolicy,
//!     GenerateOptions, MutationScore,
//! };
//!
//! let checked = CheckedDesign::new(parse(
//!     "entity g is port(a : in bit; b : in bit; y : out bit);
//!        comb begin y <= a and b; end;
//!      end;",
//! )?)?;
//! let mutants = generate_mutants(&checked, "g", &GenerateOptions::default());
//!
//! // The exhaustive 2-input test set.
//! let tests: Vec<Vec<Bits>> = (0..4u64)
//!     .map(|p| vec![Bits::new(1, p & 1), Bits::new(1, p >> 1)])
//!     .collect();
//!
//! let kills = execute_mutants(&checked, "g", &mutants, &tests)?;
//! let classes = classify_mutants(&checked, "g", &mutants, &EquivalencePolicy::default())?;
//! let ms = MutationScore::from_results(&kills, &classes);
//! assert!((ms.value() - 1.0).abs() < 1e-12, "exhaustive tests kill everything: {ms}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equivalence;
mod execute;
mod generate;
pub mod lanes;
mod mutant;
mod operator;
mod score;

pub use equivalence::{classify_mutants, survivor_class, EquivalenceClass, EquivalencePolicy};
pub use execute::{
    execute_mutants, execute_mutants_engine, execute_mutants_engine_opt, execute_mutants_jobs,
    reference_transcript, run_one, Engine, KillResult, OptLevel, TestSequence,
};
pub use lanes::{
    execute_mutants_lanes, execute_mutants_lanes_opts, kill_rows_lanes, LaneOptions,
    LanePlan, LaneStats, MAX_LANES,
};
pub use generate::{count_by_operator, generate_mutants, GenerateOptions};
pub use mutant::{Mutant, MutantId, MutationError, Rewrite};
pub use operator::MutationOperator;
pub use score::MutationScore;
