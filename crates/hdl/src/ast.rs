//! Abstract syntax tree for MiniHDL.
//!
//! Every node carries a stable [`NodeId`] assigned by the parser. The
//! mutation engine addresses mutation sites by `NodeId`, so ids must be
//! preserved by any AST transformation that does not intend to change the
//! site map (mutant application rewrites nodes *in place*, reusing ids).

use crate::span::Span;
use std::fmt;

/// Stable identity of an AST node within one [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Location in the source.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesized nodes).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            span: Span::dummy(),
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A complete MiniHDL compilation unit: one or more entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// The entities in declaration order.
    pub entities: Vec<Entity>,
    /// One past the largest [`NodeId`] in the tree (fresh-id watermark).
    pub next_node_id: u32,
}

impl Design {
    /// Finds an entity by name.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.name.name == name)
    }

    /// Total number of statements across all entities (a size metric).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { arms, else_body, .. } => {
                        1 + arms.iter().map(|(_, b)| count(b)).sum::<usize>()
                            + else_body.as_ref().map_or(0, |b| count(b))
                    }
                    Stmt::Case { arms, default, .. } => {
                        1 + arms.iter().map(|a| count(&a.body)).sum::<usize>()
                            + default.as_ref().map_or(0, |b| count(b))
                    }
                    Stmt::For { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.entities
            .iter()
            .flat_map(|e| &e.processes)
            .map(|p| count(&p.body))
            .sum()
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven by the environment.
    In,
    /// Driven by the entity.
    Out,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::In => write!(f, "in"),
            PortDir::Out => write!(f, "out"),
        }
    }
}

/// A port declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Node identity.
    pub id: NodeId,
    /// Port name.
    pub name: Ident,
    /// Direction.
    pub dir: PortDir,
    /// Width in bits.
    pub width: u32,
}

/// A named compile-time constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDecl {
    /// Node identity.
    pub id: NodeId,
    /// Constant name.
    pub name: Ident,
    /// Width in bits.
    pub width: u32,
    /// Value (masked to `width`).
    pub value: u64,
}

/// An internal signal declaration.
///
/// A signal driven by a clocked process is a register and `init` is its
/// power-on value; a signal driven by a combinational process is a wire
/// and `init` is ignored after the first evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Node identity.
    pub id: NodeId,
    /// Signal name.
    pub name: Ident,
    /// Width in bits.
    pub width: u32,
    /// Initial / reset value.
    pub init: u64,
}

/// A process-local variable.
///
/// Variables are re-initialized to `init` at the start of every process
/// activation (the synthesizable idiom), then follow blocking-assignment
/// semantics within the activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Node identity.
    pub id: NodeId,
    /// Variable name.
    pub name: Ident,
    /// Width in bits.
    pub width: u32,
    /// Value at the start of each activation.
    pub init: u64,
}

/// Process kind: combinational or clocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessKind {
    /// Evaluated whenever any read signal changes (cycle-based: every
    /// evaluation phase, in dependency order).
    Comb,
    /// Evaluated on the rising edge of the named clock port.
    Seq {
        /// The width-1 input port acting as the clock.
        clock: Ident,
    },
}

/// A process: the unit of behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    /// Node identity.
    pub id: NodeId,
    /// Combinational or clocked.
    pub kind: ProcessKind,
    /// Local variables.
    pub vars: Vec<VarDecl>,
    /// Statement list executed per activation.
    pub body: Vec<Stmt>,
}

/// An entity: ports, declarations and processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Node identity.
    pub id: NodeId,
    /// Entity name.
    pub name: Ident,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Named constants.
    pub consts: Vec<ConstDecl>,
    /// Internal signals.
    pub signals: Vec<SignalDecl>,
    /// Processes.
    pub processes: Vec<Process>,
}

/// The selected part of an assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Select {
    /// `x[i]` — a single dynamically or statically indexed bit.
    Index(Expr),
    /// `x[hi:lo]` — a constant slice.
    Slice {
        /// High (inclusive) bit index.
        hi: u32,
        /// Low (inclusive) bit index.
        lo: u32,
    },
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Node identity.
    pub id: NodeId,
    /// The assigned signal, output port or variable.
    pub base: Ident,
    /// Optional bit/slice selection.
    pub sel: Option<Select>,
}

/// One alternative of a `case` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// Node identity.
    pub id: NodeId,
    /// The literal choices matched by this arm.
    pub choices: Vec<u64>,
    /// Statements executed when a choice matches.
    pub body: Vec<Stmt>,
}

/// Which assignment operator was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignKind {
    /// `<=` — drives a signal or output port.
    Signal,
    /// `:=` — updates a process-local variable.
    Var,
}

impl AssignKind {
    /// The surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignKind::Signal => "<=",
            AssignKind::Var => ":=",
        }
    }
}

/// A sequential statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target <= expr;` (signals/ports) or `target := expr;` (variables).
    Assign {
        /// Node identity.
        id: NodeId,
        /// Which operator was written.
        kind: AssignKind,
        /// Left-hand side.
        target: Target,
        /// Right-hand side.
        value: Expr,
    },
    /// `if c then … elsif c2 then … else … end if;`
    If {
        /// Node identity.
        id: NodeId,
        /// `(condition, body)` pairs: the `if` arm then each `elsif`.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// Optional `else` body.
        else_body: Option<Vec<Stmt>>,
    },
    /// `case e is when … end case;`
    Case {
        /// Node identity.
        id: NodeId,
        /// The scrutinee.
        subject: Expr,
        /// Alternatives with literal choices.
        arms: Vec<CaseArm>,
        /// `when others =>` body.
        default: Option<Vec<Stmt>>,
    },
    /// `for i in lo .. hi loop … end loop;` (inclusive, constant bounds).
    For {
        /// Node identity.
        id: NodeId,
        /// Loop variable (read-only inside the body).
        var: Ident,
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `null;` — no operation.
    Null {
        /// Node identity.
        id: NodeId,
    },
}

impl Stmt {
    /// The statement's node id.
    pub fn id(&self) -> NodeId {
        match self {
            Stmt::Assign { id, .. }
            | Stmt::If { id, .. }
            | Stmt::Case { id, .. }
            | Stmt::For { id, .. }
            | Stmt::Null { id } => *id,
        }
    }

    /// The smallest source span covering this statement (leaf-span
    /// merge, like [`Expr::span`]; dummy leaves are ignored).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { target, value, .. } => {
                let sel = match &target.sel {
                    Some(Select::Index(ix)) => ix.span(),
                    _ => Span::dummy(),
                };
                join_spans(target.base.span, join_spans(sel, value.span()))
            }
            Stmt::If { arms, else_body, .. } => {
                let mut span = Span::dummy();
                for (cond, body) in arms {
                    span = join_spans(span, join_spans(cond.span(), body_span(body)));
                }
                if let Some(body) = else_body {
                    span = join_spans(span, body_span(body));
                }
                span
            }
            Stmt::Case { subject, arms, default, .. } => {
                let mut span = subject.span();
                for arm in arms {
                    span = join_spans(span, body_span(&arm.body));
                }
                if let Some(body) = default {
                    span = join_spans(span, body_span(body));
                }
                span
            }
            Stmt::For { var, body, .. } => join_spans(var.span, body_span(body)),
            Stmt::Null { .. } => Span::dummy(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND (`and`).
    And,
    /// Bitwise OR (`or`).
    Or,
    /// Bitwise XOR (`xor`).
    Xor,
    /// Bitwise NAND (`nand`).
    Nand,
    /// Bitwise NOR (`nor`).
    Nor,
    /// Bitwise XNOR (`xnor`).
    Xnor,
    /// Modular addition (`+`).
    Add,
    /// Modular subtraction (`-`).
    Sub,
    /// Modular multiplication (`*`).
    Mul,
    /// Equality (`=`), produces 1 bit.
    Eq,
    /// Inequality (`/=`), produces 1 bit.
    Ne,
    /// Unsigned less-than (`<`), produces 1 bit.
    Lt,
    /// Unsigned less-or-equal (`<=`), produces 1 bit.
    Le,
    /// Unsigned greater-than (`>`), produces 1 bit.
    Gt,
    /// Unsigned greater-or-equal (`>=`), produces 1 bit.
    Ge,
}

impl BinOp {
    /// `true` for `and/or/xor/nand/nor/xnor`.
    pub fn is_logical(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Nand | BinOp::Nor | BinOp::Xnor
        )
    }

    /// `true` for `+ - *`.
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }

    /// `true` for the six comparisons.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Nand => "nand",
            BinOp::Nor => "nor",
            BinOp::Xnor => "xnor",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement (`not`).
    Not,
}

/// Reduction operators (builtin functions producing 1 bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `orr(e)` — OR-reduction.
    Or,
    /// `andr(e)` — AND-reduction.
    And,
    /// `xorr(e)` — XOR-reduction (parity).
    Xor,
}

impl ReduceOp {
    /// The builtin function name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Or => "orr",
            ReduceOp::And => "andr",
            ReduceOp::Xor => "xorr",
        }
    }
}

/// Constant shift direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// `sll` — shift left logical.
    Left,
    /// `srl` — shift right logical.
    Right,
}

impl ShiftOp {
    /// The surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ShiftOp::Left => "sll",
            ShiftOp::Right => "srl",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal. `width` is `Some` for binary/hex literals
    /// (width = digits written) and `None` for decimal literals, whose
    /// width is inferred from context.
    Literal {
        /// Node identity.
        id: NodeId,
        /// The value.
        value: u64,
        /// Explicit width, if the literal notation fixes one.
        width: Option<u32>,
        /// Source span.
        span: Span,
    },
    /// A reference to a port, signal, constant, variable or loop index.
    Ref {
        /// Node identity.
        id: NodeId,
        /// The referenced name.
        name: Ident,
    },
    /// `base[index]` — single-bit extraction (index may be dynamic).
    Index {
        /// Node identity.
        id: NodeId,
        /// The indexed vector.
        base: Box<Expr>,
        /// The bit index.
        index: Box<Expr>,
    },
    /// `base[hi:lo]` — constant slice extraction.
    Slice {
        /// Node identity.
        id: NodeId,
        /// The sliced vector.
        base: Box<Expr>,
        /// High (inclusive) bit index.
        hi: u32,
        /// Low (inclusive) bit index.
        lo: u32,
    },
    /// A unary operation.
    Unary {
        /// Node identity.
        id: NodeId,
        /// The operator.
        op: UnaryOp,
        /// The operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Node identity.
        id: NodeId,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A reduction (`orr`/`andr`/`xorr`).
    Reduce {
        /// Node identity.
        id: NodeId,
        /// The reduction operator.
        op: ReduceOp,
        /// The reduced vector.
        arg: Box<Expr>,
    },
    /// `lhs & rhs` — concatenation (lhs = high bits).
    Concat {
        /// Node identity.
        id: NodeId,
        /// High part.
        lhs: Box<Expr>,
        /// Low part.
        rhs: Box<Expr>,
    },
    /// `arg sll k` / `arg srl k` — shift by a constant.
    Shift {
        /// Node identity.
        id: NodeId,
        /// Direction.
        op: ShiftOp,
        /// The shifted vector.
        arg: Box<Expr>,
        /// Shift amount.
        amount: u32,
    },
}

/// Merges two spans, ignoring dummy (synthesized) spans so that one
/// synthetic leaf cannot drag a real location down to byte 0.
fn join_spans(a: Span, b: Span) -> Span {
    if a == Span::dummy() {
        b
    } else if b == Span::dummy() {
        a
    } else {
        a.merge(b)
    }
}

/// The smallest span covering every real leaf span in a statement list.
fn body_span(stmts: &[Stmt]) -> Span {
    stmts
        .iter()
        .fold(Span::dummy(), |acc, s| join_spans(acc, s.span()))
}

impl Expr {
    /// The expression's node id.
    pub fn id(&self) -> NodeId {
        match self {
            Expr::Literal { id, .. }
            | Expr::Ref { id, .. }
            | Expr::Index { id, .. }
            | Expr::Slice { id, .. }
            | Expr::Unary { id, .. }
            | Expr::Binary { id, .. }
            | Expr::Reduce { id, .. }
            | Expr::Concat { id, .. }
            | Expr::Shift { id, .. } => *id,
        }
    }

    /// The smallest source span covering this expression.
    ///
    /// Spans are recorded on the leaves (identifiers and literals); the
    /// span of an interior node is the merge of its leaves' spans, with
    /// dummy (synthesized) leaves ignored. An expression built entirely
    /// from synthesized nodes reports [`Span::dummy`].
    pub fn span(&self) -> Span {
        match self {
            Expr::Literal { span, .. } => *span,
            Expr::Ref { name, .. } => name.span,
            Expr::Index { base, index, .. } => join_spans(base.span(), index.span()),
            Expr::Slice { base, .. } => base.span(),
            Expr::Unary { arg, .. } | Expr::Reduce { arg, .. } | Expr::Shift { arg, .. } => {
                arg.span()
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Concat { lhs, rhs, .. } => {
                join_spans(lhs.span(), rhs.span())
            }
        }
    }

    /// Visits this expression and all sub-expressions, outermost first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal { .. } | Expr::Ref { .. } => {}
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Slice { base, .. } => base.walk(f),
            Expr::Unary { arg, .. } | Expr::Reduce { arg, .. } | Expr::Shift { arg, .. } => {
                arg.walk(f)
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Concat { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
        }
    }
}

/// Walks every statement in a body, outermost first, including nested
/// bodies of `if`/`case`/`for`.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in stmts {
        f(stmt);
        match stmt {
            Stmt::If { arms, else_body, .. } => {
                for (_, body) in arms {
                    walk_stmts(body, f);
                }
                if let Some(body) = else_body {
                    walk_stmts(body, f);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    walk_stmts(&arm.body, f);
                }
                if let Some(body) = default {
                    walk_stmts(body, f);
                }
            }
            Stmt::For { body, .. } => walk_stmts(body, f),
            Stmt::Assign { .. } | Stmt::Null { .. } => {}
        }
    }
}

/// Walks every expression appearing in a statement body (conditions,
/// scrutinees, assignment values, target indices), outermost first.
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    walk_stmts(stmts, &mut |stmt| match stmt {
        Stmt::Assign { target, value, .. } => {
            if let Some(Select::Index(ix)) = &target.sel {
                ix.walk(f);
            }
            value.walk(f);
        }
        Stmt::If { arms, .. } => {
            for (cond, _) in arms {
                cond.walk(f);
            }
        }
        Stmt::Case { subject, .. } => subject.walk(f),
        Stmt::For { .. } | Stmt::Null { .. } => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(id: u32, v: u64) -> Expr {
        Expr::Literal {
            id: NodeId(id),
            value: v,
            width: None,
            span: Span::dummy(),
        }
    }

    #[test]
    fn expr_walk_visits_all() {
        let e = Expr::Binary {
            id: NodeId(0),
            op: BinOp::Add,
            lhs: Box::new(lit(1, 1)),
            rhs: Box::new(Expr::Unary {
                id: NodeId(2),
                op: UnaryOp::Not,
                arg: Box::new(lit(3, 2)),
            }),
        };
        let mut ids = Vec::new();
        e.walk(&mut |x| ids.push(x.id().0));
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stmt_walk_recurses() {
        let body = vec![Stmt::If {
            id: NodeId(0),
            arms: vec![(
                lit(1, 1),
                vec![Stmt::Null { id: NodeId(2) }, Stmt::Null { id: NodeId(3) }],
            )],
            else_body: Some(vec![Stmt::Null { id: NodeId(4) }]),
        }];
        let mut ids = Vec::new();
        walk_stmts(&body, &mut |s| ids.push(s.id().0));
        assert_eq!(ids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn expr_span_merges_real_leaves_and_ignores_dummies() {
        let real = Expr::Literal {
            id: NodeId(1),
            value: 3,
            width: None,
            span: Span::new(10, 12),
        };
        let synth = Expr::Ref {
            id: NodeId(2),
            name: Ident::synthetic("x"),
        };
        let e = Expr::Binary {
            id: NodeId(0),
            op: BinOp::Add,
            lhs: Box::new(real),
            rhs: Box::new(synth),
        };
        assert_eq!(e.span(), Span::new(10, 12));
        let all_synth = Expr::Ref {
            id: NodeId(3),
            name: Ident::synthetic("y"),
        };
        assert_eq!(all_synth.span(), Span::dummy());
    }

    #[test]
    fn stmt_span_covers_target_and_value() {
        let s = Stmt::Assign {
            id: NodeId(0),
            kind: AssignKind::Signal,
            target: Target {
                id: NodeId(1),
                base: Ident { name: "q".into(), span: Span::new(4, 5) },
                sel: None,
            },
            value: Expr::Literal {
                id: NodeId(2),
                value: 1,
                width: None,
                span: Span::new(9, 10),
            },
        };
        assert_eq!(s.span(), Span::new(4, 10));
        assert_eq!(Stmt::Null { id: NodeId(3) }.span(), Span::dummy());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::And.is_arith());
        assert!(BinOp::Add.is_arith());
        assert!(BinOp::Lt.is_relational());
        assert!(!BinOp::Xor.is_relational());
    }

    #[test]
    fn statement_count_counts_nested() {
        let design = Design {
            entities: vec![Entity {
                id: NodeId(100),
                name: Ident::synthetic("e"),
                ports: vec![],
                consts: vec![],
                signals: vec![],
                processes: vec![Process {
                    id: NodeId(101),
                    kind: ProcessKind::Comb,
                    vars: vec![],
                    body: vec![Stmt::If {
                        id: NodeId(0),
                        arms: vec![(lit(1, 1), vec![Stmt::Null { id: NodeId(2) }])],
                        else_body: None,
                    }],
                }],
            }],
            next_node_id: 200,
        };
        assert_eq!(design.statement_count(), 2);
        assert!(design.entity("e").is_some());
        assert!(design.entity("missing").is_none());
    }
}
