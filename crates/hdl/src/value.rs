//! Bit-vector values.
//!
//! MiniHDL manipulates unsigned bit-vectors of 1 to 64 bits. [`Bits`] is
//! the single runtime value type shared by the behavioral simulator, the
//! mutation engine and the test generators.

use std::fmt;

/// Maximum supported bit-vector width.
pub const MAX_WIDTH: u32 = 64;

/// An unsigned bit-vector of known width (1..=64 bits).
///
/// All arithmetic is modular in the vector width; all logic operations are
/// bitwise. Operations between two `Bits` require equal widths — mixing
/// widths is a programming error and panics, because the HDL checker
/// guarantees width correctness before any value is computed.
///
/// # Examples
///
/// ```
/// use musa_hdl::Bits;
///
/// let a = Bits::new(4, 0b1010);
/// let b = Bits::new(4, 0b0110);
/// assert_eq!(a.and(b).raw(), 0b0010);
/// assert_eq!(a.add(b).raw(), 0b0000); // 10 + 6 = 16 ≡ 0 (mod 16)
/// assert_eq!(a.bit(3), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bits {
    width: u32,
    raw: u64,
}

// The inherent `not`/`add`/`sub`/`mul`/`shl`/`shr` names are
// deliberate: they sit next to `nand`/`xnor`/`cmp_eq` as the uniform
// width-checked HDL operation set, and operator sugar would hide the
// panic-on-width-mismatch contract at call sites.
#[allow(clippy::should_implement_trait)]
impl Bits {
    /// Creates a bit-vector, masking `raw` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    pub fn new(width: u32, raw: u64) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width must be in 1..={MAX_WIDTH}, got {width}"
        );
        Self {
            width,
            raw: raw & Self::mask(width),
        }
    }

    /// The all-zero vector of the given width.
    pub fn zero(width: u32) -> Self {
        Self::new(width, 0)
    }

    /// The all-ones vector of the given width.
    pub fn ones(width: u32) -> Self {
        Self::new(width, u64::MAX)
    }

    /// A single bit: width 1, value 0 or 1.
    pub fn bit_value(b: bool) -> Self {
        Self::new(1, b as u64)
    }

    /// The low-`width` mask.
    fn mask(width: u32) -> u64 {
        Self::mask_of(width)
    }

    /// The mask selecting the low `width` bits of a raw word — the
    /// invariant every [`Bits`] value is kept under. Exposed for engines
    /// that operate on raw `u64` words outside [`Bits`] (the lane-parallel
    /// mutant simulator packs 64 machines per word array and needs the
    /// same masking discipline).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    pub fn mask_of(width: u32) -> u64 {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width must be in 1..={MAX_WIDTH}, got {width}"
        );
        if width == MAX_WIDTH {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw unsigned value (always `< 2^width`).
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// `true` when every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }

    /// `true` for the width-1 vector holding 1.
    ///
    /// # Panics
    ///
    /// Panics if the width is not 1 — asking a multi-bit vector for its
    /// truth value is always a bug upstream.
    pub fn as_bool(&self) -> bool {
        assert_eq!(self.width, 1, "as_bool on width-{} vector", self.width);
        self.raw != 0
    }

    /// The value of bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn bit(&self, index: u32) -> bool {
        assert!(index < self.width, "bit {index} out of width {}", self.width);
        (self.raw >> index) & 1 == 1
    }

    /// Returns a copy with bit `index` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn with_bit(&self, index: u32, value: bool) -> Self {
        assert!(index < self.width, "bit {index} out of width {}", self.width);
        let raw = if value {
            self.raw | (1 << index)
        } else {
            self.raw & !(1 << index)
        };
        Self::new(self.width, raw)
    }

    /// Extracts the inclusive slice `[hi:lo]` as a `(hi-lo+1)`-bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice [{hi}:{lo}] has hi < lo");
        assert!(hi < self.width, "slice [{hi}:{lo}] out of width {}", self.width);
        Self::new(hi - lo + 1, self.raw >> lo)
    }

    /// Returns a copy with the inclusive slice `[hi:lo]` replaced by `v`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range slices or when `v.width() != hi - lo + 1`.
    pub fn with_slice(&self, hi: u32, lo: u32, v: Bits) -> Self {
        assert!(hi >= lo && hi < self.width, "slice [{hi}:{lo}] out of range");
        assert_eq!(v.width(), hi - lo + 1, "slice width mismatch");
        let field = Self::mask(hi - lo + 1) << lo;
        Self::new(self.width, (self.raw & !field) | (v.raw << lo))
    }

    fn binary(self, rhs: Self, f: impl FnOnce(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch: {} vs {}",
            self.width, rhs.width
        );
        Self::new(self.width, f(self.raw, rhs.raw))
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a & b)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a | b)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a ^ b)
    }

    /// Bitwise NAND. Panics on width mismatch.
    pub fn nand(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| !(a & b))
    }

    /// Bitwise NOR. Panics on width mismatch.
    pub fn nor(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| !(a | b))
    }

    /// Bitwise XNOR. Panics on width mismatch.
    pub fn xnor(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| !(a ^ b))
    }

    /// Bitwise complement.
    pub fn not(self) -> Self {
        Self::new(self.width, !self.raw)
    }

    /// Modular addition. Panics on width mismatch.
    pub fn add(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a.wrapping_add(b))
    }

    /// Modular subtraction. Panics on width mismatch.
    pub fn sub(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a.wrapping_sub(b))
    }

    /// Modular multiplication. Panics on width mismatch.
    pub fn mul(self, rhs: Self) -> Self {
        self.binary(rhs, |a, b| a.wrapping_mul(b))
    }

    /// Logical shift left by a constant amount (bits shifted out are lost).
    pub fn shl(self, amount: u32) -> Self {
        if amount >= self.width {
            Self::zero(self.width)
        } else {
            Self::new(self.width, self.raw << amount)
        }
    }

    /// Logical shift right by a constant amount.
    pub fn shr(self, amount: u32) -> Self {
        if amount >= self.width {
            Self::zero(self.width)
        } else {
            Self::new(self.width, self.raw >> amount)
        }
    }

    /// Concatenation: `self` becomes the high part, `rhs` the low part.
    ///
    /// # Panics
    ///
    /// Panics when the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(self, rhs: Self) -> Self {
        let width = self.width + rhs.width;
        assert!(width <= MAX_WIDTH, "concat width {width} exceeds {MAX_WIDTH}");
        Self::new(width, (self.raw << rhs.width) | rhs.raw)
    }

    /// OR-reduction: 1 iff any bit is set.
    pub fn reduce_or(self) -> Self {
        Self::bit_value(self.raw != 0)
    }

    /// AND-reduction: 1 iff all bits are set.
    pub fn reduce_and(self) -> Self {
        Self::bit_value(self.raw == Self::mask(self.width))
    }

    /// XOR-reduction (parity): 1 iff an odd number of bits are set.
    pub fn reduce_xor(self) -> Self {
        Self::bit_value(self.raw.count_ones() % 2 == 1)
    }

    /// Unsigned comparison producing a single bit.
    pub fn cmp_eq(self, rhs: Self) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch in comparison");
        Self::bit_value(self.raw == rhs.raw)
    }

    /// Unsigned `<` comparison producing a single bit.
    pub fn cmp_lt(self, rhs: Self) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch in comparison");
        Self::bit_value(self.raw < rhs.raw)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.raw)
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.raw, width = self.width as usize)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_of_matches_construction() {
        assert_eq!(Bits::mask_of(1), 1);
        assert_eq!(Bits::mask_of(4), 0xF);
        assert_eq!(Bits::mask_of(63), u64::MAX >> 1);
        assert_eq!(Bits::mask_of(64), u64::MAX);
        for w in 1..=64u32 {
            assert_eq!(Bits::ones(w).raw(), Bits::mask_of(w));
        }
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn mask_of_zero_panics() {
        let _ = Bits::mask_of(0);
    }

    #[test]
    fn construction_masks() {
        assert_eq!(Bits::new(4, 0xFF).raw(), 0xF);
        assert_eq!(Bits::new(64, u64::MAX).raw(), u64::MAX);
        assert_eq!(Bits::zero(8).raw(), 0);
        assert_eq!(Bits::ones(3).raw(), 0b111);
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn zero_width_panics() {
        let _ = Bits::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn overwide_panics() {
        let _ = Bits::new(65, 0);
    }

    #[test]
    fn logic_ops() {
        let a = Bits::new(4, 0b1100);
        let b = Bits::new(4, 0b1010);
        assert_eq!(a.and(b).raw(), 0b1000);
        assert_eq!(a.or(b).raw(), 0b1110);
        assert_eq!(a.xor(b).raw(), 0b0110);
        assert_eq!(a.nand(b).raw(), 0b0111);
        assert_eq!(a.nor(b).raw(), 0b0001);
        assert_eq!(a.xnor(b).raw(), 0b1001);
        assert_eq!(a.not().raw(), 0b0011);
    }

    #[test]
    fn arithmetic_is_modular() {
        let a = Bits::new(4, 15);
        let b = Bits::new(4, 1);
        assert_eq!(a.add(b).raw(), 0);
        assert_eq!(b.sub(a).raw(), 2); // 1 - 15 ≡ 2 (mod 16)
        assert_eq!(a.mul(a).raw(), 1); // 225 mod 16
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_panics() {
        let _ = Bits::new(4, 1).add(Bits::new(5, 1));
    }

    #[test]
    fn shifts() {
        let a = Bits::new(4, 0b0110);
        assert_eq!(a.shl(1).raw(), 0b1100);
        assert_eq!(a.shl(4).raw(), 0);
        assert_eq!(a.shr(2).raw(), 0b0001);
        assert_eq!(a.shr(9).raw(), 0);
    }

    #[test]
    fn concat_and_slice() {
        let hi = Bits::new(3, 0b101);
        let lo = Bits::new(2, 0b01);
        let c = hi.concat(lo);
        assert_eq!(c.width(), 5);
        assert_eq!(c.raw(), 0b10101);
        assert_eq!(c.slice(4, 2), hi);
        assert_eq!(c.slice(1, 0), lo);
        assert_eq!(c.slice(2, 2).raw(), 1);
    }

    #[test]
    fn with_slice_and_with_bit() {
        let v = Bits::new(8, 0);
        let v = v.with_slice(5, 2, Bits::new(4, 0b1111));
        assert_eq!(v.raw(), 0b0011_1100);
        let v = v.with_bit(7, true).with_bit(2, false);
        assert_eq!(v.raw(), 0b1011_1000);
    }

    #[test]
    fn reductions() {
        assert_eq!(Bits::new(4, 0b0000).reduce_or().raw(), 0);
        assert_eq!(Bits::new(4, 0b0100).reduce_or().raw(), 1);
        assert_eq!(Bits::new(4, 0b1111).reduce_and().raw(), 1);
        assert_eq!(Bits::new(4, 0b1101).reduce_and().raw(), 0);
        assert_eq!(Bits::new(4, 0b1101).reduce_xor().raw(), 1);
        assert_eq!(Bits::new(4, 0b1100).reduce_xor().raw(), 0);
    }

    #[test]
    fn comparisons() {
        let a = Bits::new(6, 17);
        let b = Bits::new(6, 23);
        assert!(a.cmp_lt(b).as_bool());
        assert!(!b.cmp_lt(a).as_bool());
        assert!(!a.cmp_eq(b).as_bool());
        assert!(a.cmp_eq(a).as_bool());
    }

    #[test]
    fn display_formats() {
        let v = Bits::new(4, 0b1010);
        assert_eq!(v.to_string(), "4'd10");
        assert_eq!(format!("{v:b}"), "1010");
        assert_eq!(format!("{v:x}"), "a");
    }

    #[test]
    fn bit_access() {
        let v = Bits::new(3, 0b101);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(2));
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        let _ = Bits::new(3, 0).bit(3);
    }

    #[test]
    #[should_panic(expected = "as_bool")]
    fn as_bool_multibit_panics() {
        let _ = Bits::new(2, 1).as_bool();
    }
}
