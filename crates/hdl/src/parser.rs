//! Recursive-descent parser for MiniHDL.
//!
//! # Grammar (EBNF-ish)
//!
//! ```text
//! design   := entity*
//! entity   := "entity" NAME "is" "port" "(" ports ")" ";"
//!             (signal | constant)* process* "end" [NAME] ";"
//! ports    := port (";" port)*
//! port     := NAME ("," NAME)* ":" ("in" | "out") type
//! type     := "bit" | "bits" "(" INT ")"
//! signal   := "signal" NAME ":" type [":=" INT] ";"
//! constant := "constant" NAME ":" type ":=" INT ";"
//! process  := ("comb" | "seq" "(" NAME ")") var* "begin" stmt* "end" ";"
//! var      := "var" NAME ":" type [":=" INT] ";"
//! stmt     := NAME [select] ("<=" | ":=") expr ";"
//!           | "if" expr "then" stmt* ("elsif" expr "then" stmt*)*
//!             ["else" stmt*] "end" "if" ";"
//!           | "case" expr "is" arm* ["when" "others" "=>" stmt*]
//!             "end" "case" ";"
//!           | "for" NAME "in" INT ".." INT "loop" stmt* "end" "loop" ";"
//!           | "null" ";"
//! arm      := "when" INT ("|" INT)* "=>" stmt*
//! select   := "[" expr "]" | "[" INT ":" INT "]"
//! ```
//!
//! Expression precedence, loosest first: logical (`and or xor nand nor
//! xnor`, left-associative), relational (`= /= < <= > >=`,
//! non-associative), additive (`+ - &`, left), multiplicative (`*`, left),
//! shifts (`sll`/`srl` by an integer), unary `not`, then atoms (literals,
//! names, `orr/andr/xorr(e)`, parenthesised expressions) with postfix
//! indexing `e[i]` and slicing `e[hi:lo]`.

use crate::ast::*;
use crate::error::{HdlError, Result};
use crate::lexer::{lex, Tok, Token};
use crate::span::Span;

/// Reserved words that cannot be used as names.
pub const KEYWORDS: &[&str] = &[
    "entity", "is", "port", "in", "out", "bit", "bits", "signal", "constant", "var", "comb",
    "seq", "begin", "end", "if", "then", "elsif", "else", "case", "when", "others", "for",
    "loop", "null", "and", "or", "xor", "nand", "nor", "xnor", "not", "sll", "srl", "orr",
    "andr", "xorr",
];

/// Returns `true` when `name` is a reserved word.
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parses a complete MiniHDL design from source text.
///
/// # Errors
///
/// Returns a lex- or parse-phase [`HdlError`] pointing at the offending
/// token.
///
/// # Examples
///
/// ```
/// let src = "
///     entity inv is
///       port(a : in bit; y : out bit);
///       comb begin
///         y <= not a;
///       end;
///     end;
/// ";
/// let design = musa_hdl::parse(src)?;
/// assert_eq!(design.entities.len(), 1);
/// assert_eq!(design.entities[0].name.name, "inv");
/// # Ok::<(), musa_hdl::HdlError>(())
/// ```
pub fn parse(source: &str) -> Result<Design> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    parser.design()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<Token> {
        if self.peek().tok == tok {
            Ok(self.bump())
        } else {
            Err(HdlError::parse(
                format!("expected {tok}, found {}", self.peek().tok),
                self.peek().span,
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token> {
        if self.peek_kw(kw) {
            Ok(self.bump())
        } else {
            Err(HdlError::parse(
                format!("expected `{kw}`, found {}", self.peek().tok),
                self.peek().span,
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<Ident> {
        match &self.peek().tok {
            Tok::Ident(s) if !is_keyword(s) => {
                let t = self.bump();
                if let Tok::Ident(s) = t.tok {
                    Ok(Ident { name: s, span: t.span })
                } else {
                    unreachable!()
                }
            }
            Tok::Ident(s) => Err(HdlError::parse(
                format!("`{s}` is a reserved word"),
                self.peek().span,
            )),
            other => Err(HdlError::parse(
                format!("expected a name, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn int(&mut self) -> Result<(u64, Span)> {
        match self.peek().tok {
            Tok::Int(v, _) => {
                let t = self.bump();
                Ok((v, t.span))
            }
            _ => Err(HdlError::parse(
                format!("expected an integer, found {}", self.peek().tok),
                self.peek().span,
            )),
        }
    }

    fn small_int(&mut self, what: &str) -> Result<u32> {
        let (v, span) = self.int()?;
        u32::try_from(v)
            .ok()
            .filter(|&v| v <= 64)
            .ok_or_else(|| HdlError::parse(format!("{what} {v} out of range (0..=64)"), span))
    }

    // ---- declarations -------------------------------------------------

    fn design(&mut self) -> Result<Design> {
        let mut entities = Vec::new();
        while !matches!(self.peek().tok, Tok::Eof) {
            entities.push(self.entity()?);
        }
        if entities.is_empty() {
            return Err(HdlError::parse("empty design", self.peek().span));
        }
        Ok(Design {
            entities,
            next_node_id: self.next_id,
        })
    }

    fn ty(&mut self) -> Result<u32> {
        if self.eat_kw("bit") {
            Ok(1)
        } else if self.eat_kw("bits") {
            self.expect(Tok::LParen)?;
            let w = self.small_int("width")?;
            if w == 0 {
                return Err(HdlError::parse("width must be at least 1", self.peek().span));
            }
            self.expect(Tok::RParen)?;
            Ok(w)
        } else {
            Err(HdlError::parse(
                format!("expected a type (`bit` or `bits(N)`), found {}", self.peek().tok),
                self.peek().span,
            ))
        }
    }

    fn entity(&mut self) -> Result<Entity> {
        let id = self.fresh();
        self.expect_kw("entity")?;
        let name = self.name()?;
        self.expect_kw("is")?;
        self.expect_kw("port")?;
        self.expect(Tok::LParen)?;
        let mut ports = Vec::new();
        loop {
            let mut group = vec![self.name()?];
            while self.peek().tok == Tok::Comma {
                self.bump();
                group.push(self.name()?);
            }
            self.expect(Tok::Colon)?;
            let dir = if self.eat_kw("in") {
                PortDir::In
            } else if self.eat_kw("out") {
                PortDir::Out
            } else {
                return Err(HdlError::parse(
                    format!("expected `in` or `out`, found {}", self.peek().tok),
                    self.peek().span,
                ));
            };
            let width = self.ty()?;
            for pname in group {
                ports.push(Port {
                    id: self.fresh(),
                    name: pname,
                    dir,
                    width,
                });
            }
            if self.peek().tok == Tok::Semi {
                self.bump();
                if self.peek().tok == Tok::RParen {
                    break;
                }
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;

        let mut consts = Vec::new();
        let mut signals = Vec::new();
        loop {
            if self.eat_kw("signal") {
                let sname = self.name()?;
                self.expect(Tok::Colon)?;
                let width = self.ty()?;
                let init = if self.peek().tok == Tok::ColonEq {
                    self.bump();
                    self.int()?.0
                } else {
                    0
                };
                self.expect(Tok::Semi)?;
                signals.push(SignalDecl {
                    id: self.fresh(),
                    name: sname,
                    width,
                    init,
                });
            } else if self.eat_kw("constant") {
                let cname = self.name()?;
                self.expect(Tok::Colon)?;
                let width = self.ty()?;
                self.expect(Tok::ColonEq)?;
                let value = self.int()?.0;
                self.expect(Tok::Semi)?;
                consts.push(ConstDecl {
                    id: self.fresh(),
                    name: cname,
                    width,
                    value,
                });
            } else {
                break;
            }
        }

        let mut processes = Vec::new();
        while self.peek_kw("comb") || self.peek_kw("seq") {
            processes.push(self.process()?);
        }

        self.expect_kw("end")?;
        // Optional trailing entity name.
        if let Tok::Ident(s) = &self.peek().tok {
            if !is_keyword(s) {
                let trailing = self.bump();
                if let Tok::Ident(s) = &trailing.tok {
                    if *s != name.name {
                        return Err(HdlError::parse(
                            format!("trailing name `{s}` does not match entity `{}`", name.name),
                            trailing.span,
                        ));
                    }
                }
            }
        }
        self.expect(Tok::Semi)?;

        Ok(Entity {
            id,
            name,
            ports,
            consts,
            signals,
            processes,
        })
    }

    fn process(&mut self) -> Result<Process> {
        let id = self.fresh();
        let kind = if self.eat_kw("comb") {
            ProcessKind::Comb
        } else {
            self.expect_kw("seq")?;
            self.expect(Tok::LParen)?;
            let clock = self.name()?;
            self.expect(Tok::RParen)?;
            ProcessKind::Seq { clock }
        };
        let mut vars = Vec::new();
        while self.eat_kw("var") {
            let vname = self.name()?;
            self.expect(Tok::Colon)?;
            let width = self.ty()?;
            let init = if self.peek().tok == Tok::ColonEq {
                self.bump();
                self.int()?.0
            } else {
                0
            };
            self.expect(Tok::Semi)?;
            vars.push(VarDecl {
                id: self.fresh(),
                name: vname,
                width,
                init,
            });
        }
        self.expect_kw("begin")?;
        let body = self.stmt_list()?;
        self.expect_kw("end")?;
        self.expect(Tok::Semi)?;
        Ok(Process { id, kind, vars, body })
    }

    // ---- statements ---------------------------------------------------

    fn stmt_list(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.peek_kw("end")
                || self.peek_kw("elsif")
                || self.peek_kw("else")
                || self.peek_kw("when")
                || matches!(self.peek().tok, Tok::Eof)
            {
                return Ok(stmts);
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.peek_kw("if") {
            return self.if_stmt();
        }
        if self.peek_kw("case") {
            return self.case_stmt();
        }
        if self.peek_kw("for") {
            return self.for_stmt();
        }
        if self.peek_kw("null") {
            let id = self.fresh();
            self.bump();
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Null { id });
        }
        // Assignment.
        let id = self.fresh();
        let target = self.target()?;
        let kind = match self.peek().tok {
            Tok::LessEq => {
                self.bump();
                AssignKind::Signal
            }
            Tok::ColonEq => {
                self.bump();
                AssignKind::Var
            }
            _ => {
                return Err(HdlError::parse(
                    format!("expected `<=` or `:=`, found {}", self.peek().tok),
                    self.peek().span,
                ));
            }
        };
        let value = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::Assign {
            id,
            kind,
            target,
            value,
        })
    }

    fn target(&mut self) -> Result<Target> {
        let id = self.fresh();
        let base = self.name()?;
        let sel = if self.peek().tok == Tok::LBracket {
            self.bump();
            // `[INT : INT]` is a slice; anything else is an index expression.
            let checkpoint = self.pos;
            let checkpoint_id = self.next_id;
            if let Tok::Int(hi, _) = self.peek().tok {
                self.bump();
                if self.peek().tok == Tok::Colon {
                    self.bump();
                    let lo = self.small_int("slice bound")?;
                    self.expect(Tok::RBracket)?;
                    let hi = u32::try_from(hi).map_err(|_| {
                        HdlError::parse("slice bound out of range", self.peek().span)
                    })?;
                    return Ok(Target {
                        id,
                        base,
                        sel: Some(Select::Slice { hi, lo }),
                    });
                }
                self.pos = checkpoint;
                self.next_id = checkpoint_id;
            }
            let index = self.expr()?;
            self.expect(Tok::RBracket)?;
            Some(Select::Index(index))
        } else {
            None
        };
        Ok(Target { id, base, sel })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh();
        self.expect_kw("if")?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect_kw("then")?;
        let body = self.stmt_list()?;
        arms.push((cond, body));
        let mut else_body = None;
        loop {
            if self.eat_kw("elsif") {
                let cond = self.expr()?;
                self.expect_kw("then")?;
                let body = self.stmt_list()?;
                arms.push((cond, body));
            } else if self.eat_kw("else") {
                else_body = Some(self.stmt_list()?);
                break;
            } else {
                break;
            }
        }
        self.expect_kw("end")?;
        self.expect_kw("if")?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::If { id, arms, else_body })
    }

    fn case_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh();
        self.expect_kw("case")?;
        let subject = self.expr()?;
        self.expect_kw("is")?;
        let mut arms = Vec::new();
        let mut default = None;
        while self.peek_kw("when") {
            self.bump();
            if self.eat_kw("others") {
                self.expect(Tok::FatArrow)?;
                default = Some(self.stmt_list()?);
                break;
            }
            let arm_id = self.fresh();
            let mut choices = vec![self.int()?.0];
            while self.peek().tok == Tok::Pipe {
                self.bump();
                choices.push(self.int()?.0);
            }
            self.expect(Tok::FatArrow)?;
            let body = self.stmt_list()?;
            arms.push(CaseArm {
                id: arm_id,
                choices,
                body,
            });
        }
        self.expect_kw("end")?;
        self.expect_kw("case")?;
        self.expect(Tok::Semi)?;
        if arms.is_empty() && default.is_none() {
            return Err(HdlError::parse("case statement has no alternatives", self.peek().span));
        }
        Ok(Stmt::Case {
            id,
            subject,
            arms,
            default,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh();
        self.expect_kw("for")?;
        let var = self.name()?;
        self.expect_kw("in")?;
        let (lo, lo_span) = self.int()?;
        self.expect(Tok::DotDot)?;
        let (hi, _) = self.int()?;
        if lo > hi {
            return Err(HdlError::parse(
                format!("empty loop range {lo}..{hi}"),
                lo_span,
            ));
        }
        self.expect_kw("loop")?;
        let body = self.stmt_list()?;
        self.expect_kw("end")?;
        self.expect_kw("loop")?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::For {
            id,
            var,
            lo,
            hi,
            body,
        })
    }

    // ---- expressions --------------------------------------------------

    /// Entry point: logical level (loosest).
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Ident(s) => match s.as_str() {
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    "xor" => BinOp::Xor,
                    "nand" => BinOp::Nand,
                    "nor" => BinOp::Nor,
                    "xnor" => BinOp::Xnor,
                    _ => return Ok(lhs),
                },
                _ => return Ok(lhs),
            };
            let id = self.fresh();
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = Expr::Binary {
                id,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn rel_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::Eq => BinOp::Eq,
            Tok::SlashEq => BinOp::Ne,
            Tok::Less => BinOp::Lt,
            Tok::LessEq => BinOp::Le,
            Tok::Greater => BinOp::Gt,
            Tok::GreaterEq => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let id = self.fresh();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            id,
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            match self.peek().tok {
                Tok::Plus => {
                    let id = self.fresh();
                    self.bump();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Binary {
                        id,
                        op: BinOp::Add,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Tok::Minus => {
                    let id = self.fresh();
                    self.bump();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Binary {
                        id,
                        op: BinOp::Sub,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Tok::Amp => {
                    let id = self.fresh();
                    self.bump();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Concat {
                        id,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.shift_expr()?;
        while self.peek().tok == Tok::Star {
            let id = self.fresh();
            self.bump();
            let rhs = self.shift_expr()?;
            lhs = Expr::Binary {
                id,
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr> {
        let mut arg = self.unary_expr()?;
        loop {
            let op = if self.peek_kw("sll") {
                ShiftOp::Left
            } else if self.peek_kw("srl") {
                ShiftOp::Right
            } else {
                return Ok(arg);
            };
            let id = self.fresh();
            self.bump();
            let amount = self.small_int("shift amount")?;
            arg = Expr::Shift {
                id,
                op,
                arg: Box::new(arg),
                amount,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.peek_kw("not") {
            let id = self.fresh();
            self.bump();
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                id,
                op: UnaryOp::Not,
                arg: Box::new(arg),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        while self.peek().tok == Tok::LBracket {
            let id = self.fresh();
            self.bump();
            let checkpoint = self.pos;
            let checkpoint_id = self.next_id;
            if let Tok::Int(hi, _) = self.peek().tok {
                self.bump();
                if self.peek().tok == Tok::Colon {
                    self.bump();
                    let lo = self.small_int("slice bound")?;
                    self.expect(Tok::RBracket)?;
                    let hi = u32::try_from(hi).map_err(|_| {
                        HdlError::parse("slice bound out of range", self.peek().span)
                    })?;
                    e = Expr::Slice {
                        id,
                        base: Box::new(e),
                        hi,
                        lo,
                    };
                    continue;
                }
                self.pos = checkpoint;
                self.next_id = checkpoint_id;
            }
            let index = self.expr()?;
            self.expect(Tok::RBracket)?;
            e = Expr::Index {
                id,
                base: Box::new(e),
                index: Box::new(index),
            };
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr> {
        match &self.peek().tok {
            Tok::Int(..) => {
                let id = self.fresh();
                let t = self.bump();
                if let Tok::Int(value, width) = t.tok {
                    Ok(Expr::Literal {
                        id,
                        value,
                        width,
                        span: t.span,
                    })
                } else {
                    unreachable!()
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) => {
                let reduce = match s.as_str() {
                    "orr" => Some(ReduceOp::Or),
                    "andr" => Some(ReduceOp::And),
                    "xorr" => Some(ReduceOp::Xor),
                    _ => None,
                };
                if let Some(op) = reduce {
                    let id = self.fresh();
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let arg = self.expr()?;
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Reduce {
                        id,
                        op,
                        arg: Box::new(arg),
                    });
                }
                let id = self.fresh();
                let name = self.name()?;
                Ok(Expr::Ref { id, name })
            }
            other => Err(HdlError::parse(
                format!("expected an expression, found {other}"),
                self.peek().span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        entity counter is
          port(clk : in bit; rst : in bit; en : in bit; q : out bits(4));
          signal count : bits(4) := 0;
          seq(clk) begin
            if rst = 1 then
              count <= 0;
            elsif en = 1 then
              count <= count + 1;
            end if;
          end;
          comb begin
            q <= count;
          end;
        end counter;
    ";

    #[test]
    fn parses_counter() {
        let design = parse(COUNTER).unwrap();
        let e = design.entity("counter").unwrap();
        assert_eq!(e.ports.len(), 4);
        assert_eq!(e.signals.len(), 1);
        assert_eq!(e.processes.len(), 2);
        assert!(matches!(e.processes[0].kind, ProcessKind::Seq { .. }));
        assert!(matches!(e.processes[1].kind, ProcessKind::Comb));
    }

    #[test]
    fn grouped_ports_expand() {
        let design = parse(
            "entity g is port(a, b, c : in bit; y : out bit);
             comb begin y <= a and b and c; end;
             end;",
        )
        .unwrap();
        let e = &design.entities[0];
        assert_eq!(e.ports.len(), 4);
        assert_eq!(e.ports[0].name.name, "a");
        assert_eq!(e.ports[2].name.name, "c");
        assert!(e.ports.iter().take(3).all(|p| p.dir == PortDir::In));
    }

    #[test]
    fn case_with_choices_and_others() {
        let design = parse(
            "entity c is port(s : in bits(2); y : out bit);
             comb begin
               case s is
                 when 0 | 3 => y <= 1;
                 when others => y <= 0;
               end case;
             end;
             end;",
        )
        .unwrap();
        let e = &design.entities[0];
        match &e.processes[0].body[0] {
            Stmt::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].choices, vec![0, 3]);
                assert!(default.is_some());
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_and_indexing() {
        let design = parse(
            "entity f is port(a : in bits(8); y : out bits(8));
             comb begin
               for i in 0 .. 7 loop
                 y[i] <= not a[i];
               end loop;
             end;
             end;",
        )
        .unwrap();
        let e = &design.entities[0];
        assert!(matches!(e.processes[0].body[0], Stmt::For { lo: 0, hi: 7, .. }));
    }

    #[test]
    fn slice_targets_and_exprs() {
        let design = parse(
            "entity s is port(a : in bits(8); y : out bits(8));
             comb begin
               y[7:4] <= a[3:0];
               y[3:0] <= a[7:4];
             end;
             end;",
        )
        .unwrap();
        let e = &design.entities[0];
        match &e.processes[0].body[0] {
            Stmt::Assign { target, value, .. } => {
                assert!(matches!(target.sel, Some(Select::Slice { hi: 7, lo: 4 })));
                assert!(matches!(value, Expr::Slice { hi: 3, lo: 0, .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn precedence_logical_loosest() {
        let design = parse(
            "entity p is port(a, b, c : in bit; y : out bit);
             comb begin y <= a and b = c; end;
             end;",
        )
        .unwrap();
        // Must parse as a and (b = c).
        match &design.entities[0].processes[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary { op: BinOp::And, rhs, .. } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Eq, .. }));
                }
                other => panic!("expected and at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence_mul_tighter_than_add() {
        let design = parse(
            "entity p is port(a, b, c : in bits(4); y : out bits(4));
             comb begin y <= a + b * c; end;
             end;",
        )
        .unwrap();
        match &design.entities[0].processes[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary { op: BinOp::Add, rhs, .. } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected + at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn reductions_parse() {
        let design = parse(
            "entity r is port(a : in bits(8); y : out bit);
             comb begin y <= xorr(a) or orr(a and a) or andr(a); end;
             end;",
        )
        .unwrap();
        assert_eq!(design.entities.len(), 1);
    }

    #[test]
    fn shifts_parse() {
        let design = parse(
            "entity sh is port(a : in bits(8); y : out bits(8));
             comb begin y <= (a sll 2) or (a srl 1); end;
             end;",
        )
        .unwrap();
        assert_eq!(design.entities.len(), 1);
    }

    #[test]
    fn variables_parse() {
        let design = parse(
            "entity v is port(a : in bits(4); y : out bits(4));
             comb
               var t : bits(4) := 0;
             begin
               t := a + 1;
               y <= t;
             end;
             end;",
        )
        .unwrap();
        assert_eq!(design.entities[0].processes[0].vars.len(), 1);
    }

    #[test]
    fn node_ids_are_unique() {
        let design = parse(COUNTER).unwrap();
        let mut ids = Vec::new();
        for e in &design.entities {
            for p in &e.processes {
                walk_stmts(&p.body, &mut |s| ids.push(s.id()));
                walk_exprs(&p.body, &mut |x| ids.push(x.id()));
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate node ids");
        assert!(ids.iter().all(|id| id.0 < design.next_node_id));
    }

    #[test]
    fn rejects_keyword_names() {
        assert!(parse("entity end is port(a : in bit); end;").is_err());
        assert!(parse("entity e is port(signal : in bit); end;").is_err());
    }

    #[test]
    fn rejects_mismatched_trailing_name() {
        let err = parse(
            "entity foo is port(a : in bit; y : out bit);
             comb begin y <= a; end;
             end bar;",
        )
        .unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn rejects_empty_design_and_empty_case() {
        assert!(parse("").is_err());
        assert!(parse(
            "entity e is port(a : in bit; y : out bit);
             comb begin case a is end case; end;
             end;"
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_loop_range() {
        assert!(parse(
            "entity e is port(a : in bits(4); y : out bits(4));
             comb begin
               for i in 5 .. 2 loop y[i] <= a[i]; end loop;
             end;
             end;"
        )
        .is_err());
    }

    #[test]
    fn error_renders_position() {
        let src = "entity e is\n  port(a : in bogus);\nend;";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("parse error at 2:"), "{rendered}");
    }
}
