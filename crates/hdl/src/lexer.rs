//! Tokeniser for MiniHDL source text.

use crate::error::{HdlError, Result};
use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// An integer literal. The second field is the explicit width implied
    /// by the notation (`Some` for binary/hex, `None` for decimal).
    Int(u64, Option<u32>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `<=` — assignment in statement position, less-or-equal in
    /// expressions.
    LessEq,
    /// `:=`
    ColonEq,
    /// `=`
    Eq,
    /// `/=`
    SlashEq,
    /// `<`
    Less,
    /// `>`
    Greater,
    /// `>=`
    GreaterEq,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `=>`
    FatArrow,
    /// `..`
    DotDot,
    /// `|`
    Pipe,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v, _) => write!(f, "integer {v}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LessEq => write!(f, "`<=`"),
            Tok::ColonEq => write!(f, "`:=`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::SlashEq => write!(f, "`/=`"),
            Tok::Less => write!(f, "`<`"),
            Tok::Greater => write!(f, "`>`"),
            Tok::GreaterEq => write!(f, "`>=`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::FatArrow => write!(f, "`=>`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

/// Tokenises `source`, ending with a single [`Tok::Eof`] token.
///
/// Comments run from `--` to the end of the line. Identifiers are
/// `[A-Za-z_][A-Za-z0-9_]*` and are case-sensitive.
///
/// # Errors
///
/// Returns a lex-phase [`HdlError`] on unknown characters, malformed
/// numeric literals, or literals exceeding 64 bits.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < bytes.len() {
        let b = bytes[i];
        let lo = i as u32;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    span: Span::new(lo, i as u32),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                let (value, width) = if b == b'0'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] == b'b' || bytes[i + 1] == b'x')
                {
                    let radix_char = bytes[i + 1];
                    i += 2;
                    let digits_start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let digits: String =
                        source[digits_start..i].chars().filter(|&c| c != '_').collect();
                    if digits.is_empty() {
                        return Err(HdlError::lex(
                            "numeric literal has no digits",
                            Span::new(lo, i as u32),
                        ));
                    }
                    let (radix, bits_per_digit) = if radix_char == b'b' { (2, 1) } else { (16, 4) };
                    let width = digits.len() as u32 * bits_per_digit;
                    if width > 64 {
                        return Err(HdlError::lex(
                            format!("literal width {width} exceeds 64 bits"),
                            Span::new(lo, i as u32),
                        ));
                    }
                    let value = u64::from_str_radix(&digits, radix).map_err(|_| {
                        HdlError::lex(
                            format!("invalid base-{radix} literal"),
                            Span::new(lo, i as u32),
                        )
                    })?;
                    (value, Some(width))
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    let digits: String =
                        source[start..i].chars().filter(|&c| c != '_').collect();
                    let value = digits.parse::<u64>().map_err(|_| {
                        HdlError::lex("decimal literal overflows 64 bits", Span::new(lo, i as u32))
                    })?;
                    (value, None)
                };
                tokens.push(Token {
                    tok: Tok::Int(value, width),
                    span: Span::new(lo, i as u32),
                });
            }
            b'(' => {
                tokens.push(Token { tok: Tok::LParen, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b')' => {
                tokens.push(Token { tok: Tok::RParen, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'[' => {
                tokens.push(Token { tok: Tok::LBracket, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b']' => {
                tokens.push(Token { tok: Tok::RBracket, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b';' => {
                tokens.push(Token { tok: Tok::Semi, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b',' => {
                tokens.push(Token { tok: Tok::Comma, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'&' => {
                tokens.push(Token { tok: Tok::Amp, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'+' => {
                tokens.push(Token { tok: Tok::Plus, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'-' => {
                tokens.push(Token { tok: Tok::Minus, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'*' => {
                tokens.push(Token { tok: Tok::Star, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b'|' => {
                tokens.push(Token { tok: Tok::Pipe, span: Span::new(lo, lo + 1) });
                i += 1;
            }
            b':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::ColonEq, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    tokens.push(Token { tok: Tok::Colon, span: Span::new(lo, lo + 1) });
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::LessEq, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    tokens.push(Token { tok: Tok::Less, span: Span::new(lo, lo + 1) });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::GreaterEq, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    tokens.push(Token { tok: Tok::Greater, span: Span::new(lo, lo + 1) });
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token { tok: Tok::FatArrow, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    tokens.push(Token { tok: Tok::Eq, span: Span::new(lo, lo + 1) });
                    i += 1;
                }
            }
            b'/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::SlashEq, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    return Err(HdlError::lex("unexpected `/`", Span::new(lo, lo + 1)));
                }
            }
            b'.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    tokens.push(Token { tok: Tok::DotDot, span: Span::new(lo, lo + 2) });
                    i += 2;
                } else {
                    return Err(HdlError::lex("unexpected `.`", Span::new(lo, lo + 1)));
                }
            }
            other => {
                return Err(HdlError::lex(
                    format!("unexpected character `{}`", other as char),
                    Span::new(lo, lo + 1),
                ));
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::new(bytes.len() as u32, bytes.len() as u32),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn identifiers_and_punctuation() {
        assert_eq!(
            toks("entity foo is ( ) ;"),
            vec![
                Tok::Ident("entity".into()),
                Tok::Ident("foo".into()),
                Tok::Ident("is".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn decimal_literals_have_no_width() {
        assert_eq!(toks("42"), vec![Tok::Int(42, None), Tok::Eof]);
        assert_eq!(toks("1_000"), vec![Tok::Int(1000, None), Tok::Eof]);
    }

    #[test]
    fn binary_literals_fix_width() {
        assert_eq!(toks("0b0101"), vec![Tok::Int(5, Some(4)), Tok::Eof]);
        assert_eq!(toks("0b1"), vec![Tok::Int(1, Some(1)), Tok::Eof]);
        assert_eq!(toks("0b1010_1010"), vec![Tok::Int(0xAA, Some(8)), Tok::Eof]);
    }

    #[test]
    fn hex_literals_fix_width() {
        assert_eq!(toks("0xFF"), vec![Tok::Int(255, Some(8)), Tok::Eof]);
        assert_eq!(toks("0x0"), vec![Tok::Int(0, Some(4)), Tok::Eof]);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= := /= >= => .."),
            vec![
                Tok::LessEq,
                Tok::ColonEq,
                Tok::SlashEq,
                Tok::GreaterEq,
                Tok::FatArrow,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- whole line comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn comment_vs_minus() {
        assert_eq!(
            toks("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_on_unknown_char() {
        assert!(lex("a ? b").is_err());
        assert!(lex("a . b").is_err());
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn errors_on_bad_literals() {
        assert!(lex("0b").is_err());
        assert!(lex("0bxyz").is_err());
        assert!(lex("0x1_0000_0000_0000_0000_0").is_err()); // > 64 bits
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn spans_are_tracked() {
        let tokens = lex("ab cd").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
    }
}
