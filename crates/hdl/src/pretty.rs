//! Round-trippable pretty printer for MiniHDL.
//!
//! [`print_design`] emits source text that parses back to a structurally
//! identical AST (up to node ids and spans). The mutation engine uses it
//! to dump mutants for inspection, and the parser test-suite uses it for
//! round-trip property tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Prints a whole design as parseable MiniHDL source.
pub fn print_design(design: &Design) -> String {
    let mut out = String::new();
    for entity in &design.entities {
        print_entity(entity, &mut out);
        out.push('\n');
    }
    out
}

fn print_type(width: u32, out: &mut String) {
    if width == 1 {
        out.push_str("bit");
    } else {
        let _ = write!(out, "bits({width})");
    }
}

fn print_entity(entity: &Entity, out: &mut String) {
    let _ = writeln!(out, "entity {} is", entity.name.name);
    out.push_str("  port(");
    for (i, port) in entity.ports.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        let _ = write!(out, "{} : {} ", port.name.name, port.dir);
        print_type(port.width, out);
    }
    out.push_str(");\n");
    for cst in &entity.consts {
        let _ = write!(out, "  constant {} : ", cst.name.name);
        print_type(cst.width, out);
        let _ = writeln!(out, " := {};", cst.value);
    }
    for sig in &entity.signals {
        let _ = write!(out, "  signal {} : ", sig.name.name);
        print_type(sig.width, out);
        let _ = writeln!(out, " := {};", sig.init);
    }
    for process in &entity.processes {
        print_process(process, out);
    }
    let _ = writeln!(out, "end {};", entity.name.name);
}

fn print_process(process: &Process, out: &mut String) {
    match &process.kind {
        ProcessKind::Comb => out.push_str("  comb\n"),
        ProcessKind::Seq { clock } => {
            let _ = writeln!(out, "  seq({})", clock.name);
        }
    }
    for var in &process.vars {
        let _ = write!(out, "    var {} : ", var.name.name);
        print_type(var.width, out);
        let _ = writeln!(out, " := {};", var.init);
    }
    out.push_str("  begin\n");
    print_stmts(&process.body, 2, out);
    out.push_str("  end;\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..=level {
        out.push_str("  ");
    }
}

fn print_stmts(stmts: &[Stmt], level: usize, out: &mut String) {
    for stmt in stmts {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Assign {
            kind,
            target,
            value,
            ..
        } => {
            out.push_str(&target.base.name);
            match &target.sel {
                None => {}
                Some(Select::Index(ix)) => {
                    out.push('[');
                    print_expr(ix, out);
                    out.push(']');
                }
                Some(Select::Slice { hi, lo }) => {
                    let _ = write!(out, "[{hi}:{lo}]");
                }
            }
            let _ = write!(out, " {} ", kind.symbol());
            print_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::If {
            arms, else_body, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                if i == 0 {
                    out.push_str("if ");
                } else {
                    indent(level, out);
                    out.push_str("elsif ");
                }
                print_expr(cond, out);
                out.push_str(" then\n");
                print_stmts(body, level + 1, out);
            }
            if let Some(body) = else_body {
                indent(level, out);
                out.push_str("else\n");
                print_stmts(body, level + 1, out);
            }
            indent(level, out);
            out.push_str("end if;\n");
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            out.push_str("case ");
            print_expr(subject, out);
            out.push_str(" is\n");
            for arm in arms {
                indent(level + 1, out);
                out.push_str("when ");
                for (i, choice) in arm.choices.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" | ");
                    }
                    let _ = write!(out, "{choice}");
                }
                out.push_str(" =>\n");
                print_stmts(&arm.body, level + 2, out);
            }
            if let Some(body) = default {
                indent(level + 1, out);
                out.push_str("when others =>\n");
                print_stmts(body, level + 2, out);
            }
            indent(level, out);
            out.push_str("end case;\n");
        }
        Stmt::For {
            var, lo, hi, body, ..
        } => {
            let _ = writeln!(out, "for {} in {lo} .. {hi} loop", var.name);
            print_stmts(body, level + 1, out);
            indent(level, out);
            out.push_str("end loop;\n");
        }
        Stmt::Null { .. } => out.push_str("null;\n"),
    }
}

/// Prints an expression (fully parenthesised where nesting occurs).
pub fn print_expr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Literal { value, width, .. } => match width {
            Some(w) => {
                let _ = write!(out, "0b{:0width$b}", value, width = *w as usize);
            }
            None => {
                let _ = write!(out, "{value}");
            }
        },
        Expr::Ref { name, .. } => out.push_str(&name.name),
        Expr::Index { base, index, .. } => {
            print_atom(base, out);
            out.push('[');
            print_expr(index, out);
            out.push(']');
        }
        Expr::Slice { base, hi, lo, .. } => {
            print_atom(base, out);
            let _ = write!(out, "[{hi}:{lo}]");
        }
        Expr::Unary { op, arg, .. } => {
            match op {
                UnaryOp::Not => out.push_str("not "),
            }
            print_atom(arg, out);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            print_atom(lhs, out);
            let _ = write!(out, " {} ", op.symbol());
            print_atom(rhs, out);
        }
        Expr::Reduce { op, arg, .. } => {
            out.push_str(op.name());
            out.push('(');
            print_expr(arg, out);
            out.push(')');
        }
        Expr::Concat { lhs, rhs, .. } => {
            print_atom(lhs, out);
            out.push_str(" & ");
            print_atom(rhs, out);
        }
        Expr::Shift { op, arg, amount, .. } => {
            print_atom(arg, out);
            let _ = write!(out, " {} {amount}", op.symbol());
        }
    }
}

/// Prints a sub-expression, parenthesising anything non-atomic.
fn print_atom(expr: &Expr, out: &mut String) {
    let atomic = matches!(
        expr,
        Expr::Literal { .. }
            | Expr::Ref { .. }
            | Expr::Index { .. }
            | Expr::Slice { .. }
            | Expr::Reduce { .. }
    );
    if atomic {
        print_expr(expr, out);
    } else {
        out.push('(');
        print_expr(expr, out);
        out.push(')');
    }
}

/// Renders just one expression to a fresh string (mutation reporting).
pub fn expr_to_string(expr: &Expr) -> String {
    let mut s = String::new();
    print_expr(expr, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let d1 = parse(src).unwrap();
        let p1 = print_design(&d1);
        let d2 = parse(&p1).unwrap_or_else(|e| panic!("re-parse failed: {}\n{p1}", e.render(&p1)));
        let p2 = print_design(&d2);
        assert_eq!(p1, p2, "pretty printing is not a fixpoint");
    }

    #[test]
    fn roundtrip_counter() {
        roundtrip(
            "entity counter is
               port(clk : in bit; rst : in bit; q : out bits(4));
             signal c : bits(4) := 3;
             seq(clk) begin
               if rst = 1 then c <= 0; else c <= c + 1; end if;
             end;
             comb begin q <= c; end;
             end counter;",
        );
    }

    #[test]
    fn roundtrip_case_for_slice() {
        roundtrip(
            "entity m is
               port(a : in bits(8); s : in bits(2); y : out bits(8); z : out bit);
             constant K : bits(8) := 129;
             comb
               var t : bits(8) := 0;
             begin
               case s is
                 when 0 | 2 =>
                   t := a and K;
                 when 1 =>
                   t := (a sll 2) or (a srl 3);
                 when others =>
                   for i in 0 .. 7 loop
                     t[i] := a[7 - i];
                   end loop;
               end case;
               y <= t;
               z <= xorr(a) or (a[3:0] = 0b1010);
             end;
             end;",
        );
    }

    #[test]
    fn literal_notation_preserved() {
        let d = parse(
            "entity e is port(a : in bits(4); y : out bits(4));
             comb begin y <= a xor 0b1010; end;
             end;",
        )
        .unwrap();
        let printed = print_design(&d);
        assert!(printed.contains("0b1010"), "{printed}");
    }

    #[test]
    fn expr_to_string_simple() {
        let d = parse(
            "entity e is port(a : in bit; b : in bit; y : out bit);
             comb begin y <= a and not b; end;
             end;",
        )
        .unwrap();
        if let Stmt::Assign { value, .. } = &d.entities[0].processes[0].body[0] {
            assert_eq!(expr_to_string(value), "a and (not b)");
        } else {
            panic!("expected assign");
        }
    }
}
