//! # musa-hdl — the *MiniHDL* behavioral hardware description language
//!
//! MiniHDL is a small, synthesizable, VHDL-flavoured behavioral language:
//! entities with typed ports, internal signals and constants, and
//! combinational (`comb`) or clocked (`seq(clk)`) processes built from
//! assignments, `if`/`case`/`for` statements and bit-vector expressions
//! (≤ 64 bits).
//!
//! It exists so that the `musa` workspace can mutate and simulate
//! *high-level* circuit descriptions, exactly as the DATE'05 paper mutates
//! VHDL — see the workspace `DESIGN.md` for the substitution rationale.
//!
//! The crate provides the full front-end plus a cycle-based simulator:
//!
//! * [`parse`] — text → [`ast::Design`];
//! * [`CheckedDesign`] — semantic analysis (names, widths, single-driver,
//!   clock discipline, combinational-loop and latch-freedom checks);
//! * [`Simulator`] — two-phase cycle simulation of a checked design;
//! * [`pretty::print_design`] — round-trippable pretty printing;
//! * [`Bits`] — the 1..=64-bit unsigned vector value type.
//!
//! # Example
//!
//! ```
//! use musa_hdl::{parse, Bits, CheckedDesign, Simulator};
//!
//! let design = parse(
//!     "entity majority is
//!        port(a : in bit; b : in bit; c : in bit; y : out bit);
//!        comb begin
//!          y <= (a and b) or (a and c) or (b and c);
//!        end;
//!      end;",
//! )?;
//! let checked = CheckedDesign::new(design)?;
//! let mut sim = Simulator::new(&checked, "majority")?;
//! let one = Bits::new(1, 1);
//! let zero = Bits::new(1, 0);
//! assert_eq!(sim.step(&[one, one, zero])[0].raw(), 1);
//! assert_eq!(sim.step(&[one, zero, zero])[0].raw(), 0);
//! # Ok::<(), musa_hdl::HdlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sim;
mod span;
mod value;

pub use check::{CheckedDesign, DriveClass, EntityInfo, Symbol, SymbolId, SymbolKind};
pub use error::{HdlError, Phase, Result};
pub use parser::parse;
pub use sim::Simulator;
pub use span::Span;
pub use value::{Bits, MAX_WIDTH};
